//! Validation-confidentiality benchmarks: attested channel, encrypted
//! predicate delivery, audited 1-bit verdicts (supports E7).
use criterion::{criterion_group, criterion_main, Criterion};
use glimmer_core::host::{GlimmerClient, GlimmerDescriptor};
use glimmer_core::protocol::PrivateData;
use glimmer_core::validation::BotDetectorSpec;
use glimmer_crypto::dh::DhGroup;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::SigningKey;
use glimmer_services::botdetect::BotDetectionService;
use glimmer_workloads::botsignals::BotSignalWorkload;
use sgx_sim::{AttestationService, PlatformConfig};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_confidential(c: &mut Criterion) {
    let mut group = c.benchmark_group("confidential");
    let mut rng = Drbg::from_seed([11u8; 32]);
    let service_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let vk = service_key.verifying_key().to_bytes();
    let descriptor = GlimmerDescriptor::bot_detection_default(vk, u64::MAX / 2);
    let approved = descriptor.measurement();
    let mut service = BotDetectionService::new(
        BotDetectorSpec::example(),
        service_key,
        approved,
        rng.fork("svc"),
    );
    let mut avs = AttestationService::new([12u8; 32]);
    let mut client = GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
    client.provision_platform(&mut avs);

    let offer = client.start_channel().unwrap();
    let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
    client.complete_channel(&accept).unwrap();
    let encrypted = service.encrypted_detector(&session);
    client.install_encrypted_predicate(&encrypted).unwrap();

    group.bench_function("encrypted_predicate_delivery", |b| {
        b.iter(|| {
            let e = service.encrypted_detector(&session);
            client.install_encrypted_predicate(&e).unwrap();
        })
    });

    let workload = BotSignalWorkload::generate(8, 0.5, [13u8; 32]);
    group.bench_function("confidential_check_one_bit", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = &workload.sessions[i % workload.sessions.len()];
            i += 1;
            let challenge = service.issue_challenge(&mut session);
            let frame = client
                .confidential_check(
                    challenge,
                    PrivateData::BotSignals {
                        signals: s.signals.clone(),
                    },
                )
                .unwrap();
            service.accept_verdict(&mut session, &frame).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_confidential
}
criterion_main!(benches);
