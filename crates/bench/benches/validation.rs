//! Validation-predicate micro-benchmarks (supports E6).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glimmer_core::protocol::{Contribution, ContributionPayload, PrivateData};
use glimmer_core::validation::PredicateSpec;
use glimmer_federated::trainer::train_local_model;
use glimmer_workloads::keyboard::{KeyboardWorkload, KeyboardWorkloadConfig};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation");
    let workload = KeyboardWorkload::generate(
        &KeyboardWorkloadConfig {
            users: 4,
            vocab_size: 60,
            sentences_per_user: 20,
            schema_words: 24,
            ..KeyboardWorkloadConfig::default()
        },
        [2u8; 32],
    );
    let user = &workload.users[0];
    let (model, _) = train_local_model(&workload.schema, &user.sentences).unwrap();
    let contribution = Contribution {
        app_id: "nextwordpredictive.com".to_string(),
        client_id: 0,
        round: 0,
        payload: ContributionPayload::ModelUpdate {
            weights: model.weights.clone(),
        },
    };
    let private = PrivateData::KeyboardLog {
        sentences: user.sentences.clone(),
    };
    let specs = [
        ("range", PredicateSpec::RangeCheck { min: 0.0, max: 1.0 }),
        ("plausibility", PredicateSpec::Plausibility),
        (
            "corroborate",
            PredicateSpec::KeyboardCorroboration {
                tolerance: 0.05,
                min_support: 0.8,
            },
        ),
        ("retrain", PredicateSpec::RetrainCheck { tolerance: 1e-9 }),
    ];
    for (name, spec) in specs {
        let predicate = spec.instantiate();
        group.bench_with_input(BenchmarkId::new("predicate", name), &name, |b, _| {
            b.iter(|| predicate.validate(&contribution, &private))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_predicates
}
criterion_main!(benches);
