//! Gateway serving benches: batched-pool vs. per-device endorsement
//! throughput at 1/8/64 concurrent sessions, plus drain throughput vs.
//! shard count.
//!
//! `pooled_batched/N` measures steady-state serving: N established sessions
//! each submit one encrypted contribution and the gateway drains them in
//! batched ECALLs. `per_device/N` measures the Section 4.2 baseline where
//! every device gets a freshly built, provisioned enclave host for its
//! single contribution — the cost the pool amortizes away.
//! `shard_scaling/S` serves an identical 8-slot workload with S worker
//! shards; on a multicore host the drain wall-clock drops as S grows (the
//! deterministic counterpart is E12's critical-path cycle metric).
//! `gateway_batched/*` compares admission paths over identical steady-state
//! traffic: per-request `submit`, bulk `submit_batch` in chunks, and
//! per-session `submit_many` — the batched paths pay the admission atomics
//! and the shard-queue command once per group (E13 is the deterministic
//! counterpart).
//! `gateway_ingest/*` covers the replay path: chunked scenario-file loading
//! at 1 vs 4 readers, and end-to-end replay through a live gateway on the
//! per-record vs batched-per-shard admission paths (E17 is the
//! deterministic counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glimmer_bench::{ingest, IngestConfig, IngestMode, Pacing, ReplayHarness};
use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::{IotDeviceSession, RemoteGlimmerHost};
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::frontend::{AsyncGateway, SessionExecutor};
use glimmer_gateway::net::GatewayClient;
use glimmer_gateway::{Gateway, GatewayConfig, NetConfig, TenantConfig};
use sgx_sim::{AttestationService, PlatformConfig};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

const APP: &str = "iot-telemetry.example";
const DIM: usize = 8;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn contribution(client_id: u64) -> Contribution {
    Contribution {
        app_id: APP.to_string(),
        client_id,
        round: 0,
        payload: ContributionPayload::IotReadings {
            samples: vec![0.4; DIM],
        },
    }
}

fn bench_serving(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway");
    for &sessions in &[1usize, 8, 64] {
        let clients: Vec<u64> = (0..sessions as u64).collect();
        let masks = BlindingService::new([13u8; 32]).zero_sum_masks(0, &clients, DIM);
        group.throughput(Throughput::Elements(sessions as u64));

        // Steady state: pool built and sessions established outside the loop.
        {
            let mut rng = Drbg::from_seed([21u8; 32]);
            let mut avs = AttestationService::new([22u8; 32]);
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            let gateway = Gateway::new(
                GatewayConfig {
                    slots_per_tenant: (sessions / 16).max(1),
                    shards: 1,
                    max_batch: 256,
                    max_queue_depth: 4096,
                    placement_session_weight: 4,
                    platform_config: PlatformConfig::default(),
                    ..GatewayConfig::default()
                },
                vec![TenantConfig::new(
                    APP,
                    GlimmerDescriptor::iot_default(Vec::new()),
                    material.secret_bytes(),
                )],
                &mut avs,
                &mut rng,
            )
            .unwrap();
            let approved = gateway.measurement(APP).unwrap();
            let mut established = Vec::with_capacity(sessions);
            for client in &clients {
                let (sid, offer) = gateway.open_session(APP).unwrap();
                let (accept, device) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                gateway.install_mask(sid, &masks[*client as usize]).unwrap();
                established.push((sid, *client, device));
            }
            group.bench_with_input(
                BenchmarkId::new("pooled_batched", sessions),
                &sessions,
                |b, _| {
                    b.iter(|| {
                        for (sid, client, device) in &mut established {
                            let request =
                                device.encrypt_request(contribution(*client), PrivateData::None);
                            gateway.submit(*sid, request).unwrap();
                        }
                        // Decrypt every reply at the device, matching the
                        // per-device baseline's client-side work.
                        let mut endorsed = 0usize;
                        for response in gateway.drain_all().unwrap() {
                            // Fail loudly rather than silently timing an
                            // error path (e.g. an exhausted nonce window).
                            let BatchOutcome::Reply { ciphertext, .. } = &response.outcome else {
                                panic!("bench item failed: {:?}", response.outcome);
                            };
                            let (_, _, device) = established
                                .iter()
                                .find(|(sid, _, _)| *sid == response.session_id)
                                .unwrap();
                            device.decrypt_response(ciphertext).unwrap();
                            endorsed += 1;
                        }
                        endorsed
                    })
                },
            );
        }

        // Baseline: every contribution pays a fresh enclave host.
        {
            let mut rng = Drbg::from_seed([23u8; 32]);
            let mut avs = AttestationService::new([22u8; 32]);
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            group.bench_with_input(
                BenchmarkId::new("per_device", sessions),
                &sessions,
                |b, _| {
                    b.iter(|| {
                        let mut endorsed = 0usize;
                        for client in &clients {
                            let mut host = RemoteGlimmerHost::new(
                                GlimmerDescriptor::iot_default(Vec::new()),
                                PlatformConfig::default(),
                                &mut rng,
                                &mut avs,
                            )
                            .unwrap();
                            host.client_mut()
                                .install_service_key(&material.secret_bytes())
                                .unwrap();
                            host.client_mut()
                                .install_mask(&masks[*client as usize])
                                .unwrap();
                            let approved = host.measurement();
                            let offer = host.attestation_offer().unwrap();
                            let (accept, mut device) =
                                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng)
                                    .unwrap();
                            host.accept_device(&accept).unwrap();
                            let request =
                                device.encrypt_request(contribution(*client), PrivateData::None);
                            let reply = host.relay(&request).unwrap();
                            if device.decrypt_response(&reply).is_ok() {
                                endorsed += 1;
                            }
                        }
                        endorsed
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_shards");
    const SLOTS: usize = 8;
    const SESSIONS: usize = 16;
    for &shards in &[1usize, 2, 4] {
        let clients: Vec<u64> = (0..SESSIONS as u64).collect();
        let masks = BlindingService::new([14u8; 32]).zero_sum_masks(0, &clients, DIM);
        group.throughput(Throughput::Elements(SESSIONS as u64));
        let mut rng = Drbg::from_seed([24u8; 32]);
        let mut avs = AttestationService::new([25u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: SLOTS,
                shards,
                max_batch: 256,
                max_queue_depth: 4096,
                placement_session_weight: 4,
                platform_config: PlatformConfig::default(),
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();
        let approved = gateway.measurement(APP).unwrap();
        let mut established = Vec::with_capacity(SESSIONS);
        for client in &clients {
            let (sid, offer) = gateway.open_session(APP).unwrap();
            let (accept, device) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            gateway.install_mask(sid, &masks[*client as usize]).unwrap();
            established.push((sid, *client, device));
        }
        group.bench_with_input(
            BenchmarkId::new("shard_scaling", shards),
            &shards,
            |b, _| {
                b.iter(|| {
                    for (sid, client, device) in &mut established {
                        let request =
                            device.encrypt_request(contribution(*client), PrivateData::None);
                        gateway.submit(*sid, request).unwrap();
                    }
                    let mut endorsed = 0usize;
                    for response in gateway.drain_all().unwrap() {
                        let BatchOutcome::Reply { endorsed: e, .. } = &response.outcome else {
                            panic!("bench item failed: {:?}", response.outcome);
                        };
                        assert!(e, "bench traffic is honest");
                        endorsed += 1;
                    }
                    endorsed
                })
            },
        );
    }
    group.finish();
}

/// A gateway plus established device sessions, ready for steady-state
/// submission benches.
struct BatchedSetup {
    gateway: Gateway,
    established: Vec<(u64, u64, IotDeviceSession)>,
}

fn batched_setup(sessions: usize, slots: usize, seeds: (u8, u8)) -> BatchedSetup {
    let clients: Vec<u64> = (0..sessions as u64).collect();
    let masks = BlindingService::new([15u8; 32]).zero_sum_masks(0, &clients, DIM);
    let mut rng = Drbg::from_seed([seeds.0; 32]);
    let mut avs = AttestationService::new([seeds.1; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: slots,
            shards: 1,
            max_batch: 256,
            max_queue_depth: 4096,
            placement_session_weight: 4,
            platform_config: PlatformConfig::default(),
            ..GatewayConfig::default()
        },
        vec![TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    let approved = gateway.measurement(APP).unwrap();
    let mut established = Vec::with_capacity(sessions);
    for client in &clients {
        let (sid, offer) = gateway.open_session(APP).unwrap();
        let (accept, device) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        gateway.install_mask(sid, &masks[*client as usize]).unwrap();
        established.push((sid, *client, device));
    }
    BatchedSetup {
        gateway,
        established,
    }
}

/// Drains everything queued and asserts every reply is an endorsement.
fn drain_all_endorsed(gateway: &Gateway) -> usize {
    let mut endorsed = 0usize;
    for response in gateway.drain_all().unwrap() {
        let BatchOutcome::Reply { endorsed: e, .. } = &response.outcome else {
            panic!("bench item failed: {:?}", response.outcome);
        };
        assert!(e, "bench traffic is honest");
        endorsed += 1;
    }
    endorsed
}

fn bench_batched_submission(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_batched");
    const SESSIONS: usize = 64;
    const SLOTS: usize = 2;
    const CHUNK: usize = 16;

    // Per-request baseline: one `submit` call (one admission sequence, one
    // shard-queue command) per request.
    {
        let BatchedSetup {
            gateway,
            mut established,
        } = batched_setup(SESSIONS, SLOTS, (26, 27));
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("per_request", SESSIONS), |b| {
            b.iter(|| {
                for (sid, client, device) in &mut established {
                    let request = device.encrypt_request(contribution(*client), PrivateData::None);
                    gateway.submit(*sid, request).unwrap();
                }
                drain_all_endorsed(&gateway)
            })
        });
    }

    // Bulk producer: the same traffic admitted in `submit_batch` chunks —
    // admission reservation and the shard command are paid per chunk.
    {
        let BatchedSetup {
            gateway,
            mut established,
        } = batched_setup(SESSIONS, SLOTS, (28, 29));
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("submit_batch", CHUNK), |b| {
            b.iter(|| {
                for window in established.chunks_mut(CHUNK) {
                    let mut chunk = Vec::with_capacity(window.len());
                    for (sid, client, device) in window.iter_mut() {
                        let request =
                            device.encrypt_request(contribution(*client), PrivateData::None);
                        chunk.push((*sid, request));
                    }
                    gateway.submit_batch(chunk).unwrap();
                }
                drain_all_endorsed(&gateway)
            })
        });
    }

    // Per-session streams: each session submits CHUNK requests as one
    // `submit_many` group.
    {
        const STREAM_SESSIONS: usize = 16;
        let BatchedSetup {
            gateway,
            mut established,
        } = batched_setup(STREAM_SESSIONS, SLOTS, (30, 31));
        group.throughput(Throughput::Elements((STREAM_SESSIONS * CHUNK) as u64));
        group.bench_function(BenchmarkId::new("submit_many", CHUNK), |b| {
            b.iter(|| {
                for (sid, client, device) in &mut established {
                    let mut stream = Vec::with_capacity(CHUNK);
                    for _ in 0..CHUNK {
                        stream
                            .push(device.encrypt_request(contribution(*client), PrivateData::None));
                    }
                    gateway.submit_many(*sid, stream).unwrap();
                }
                drain_all_endorsed(&gateway)
            })
        });
    }
    group.finish();
}

/// `gateway_async/*`: identical steady-state traffic (64 established
/// sessions, one request each, drain to completion) through the blocking
/// driver and through the async front-end — one executor task per session
/// plus a drainer, every poll on the bench thread. The delta is the cost of
/// the async machinery itself (executor scheduling, waker round trips,
/// completion cells) since the enclave work is identical; the async path's
/// *architectural* win — no thread per parked reply — is E15's metric, not
/// a wall-clock one.
fn bench_async_frontend(c: &mut Criterion) {
    let mut group = c.benchmark_group("gateway_async");
    const SESSIONS: usize = 64;
    const SLOTS: usize = 2;

    // Blocking driver at equal traffic (same shape as pooled_batched, here
    // as the in-group baseline).
    {
        let BatchedSetup {
            gateway,
            mut established,
        } = batched_setup(SESSIONS, SLOTS, (32, 33));
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("blocking_driver", SESSIONS), |b| {
            b.iter(|| {
                for (sid, client, device) in &mut established {
                    let request = device.encrypt_request(contribution(*client), PrivateData::None);
                    gateway.submit(*sid, request).unwrap();
                }
                drain_all_endorsed(&gateway)
            })
        });
    }

    // Async front-end: the same traffic as session tasks on one executor.
    {
        let BatchedSetup {
            gateway,
            established,
        } = batched_setup(SESSIONS, SLOTS, (34, 35));
        let frontend = AsyncGateway::new(gateway);
        let established = Rc::new(RefCell::new(established));
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("async_session_tasks", SESSIONS), |b| {
            b.iter(|| {
                let mut executor = SessionExecutor::new();
                let endorsed = Rc::new(Cell::new(0usize));
                for i in 0..SESSIONS {
                    let frontend = frontend.clone();
                    let established = Rc::clone(&established);
                    executor.spawn(async move {
                        let (sid, request) = {
                            let mut sessions = established.borrow_mut();
                            let (sid, client, device) = &mut sessions[i];
                            (
                                *sid,
                                device.encrypt_request(contribution(*client), PrivateData::None),
                            )
                        };
                        frontend.submit(sid, request).await.unwrap();
                    });
                }
                {
                    let frontend = frontend.clone();
                    let endorsed = Rc::clone(&endorsed);
                    executor.spawn(async move {
                        let mut collected = 0usize;
                        while collected < SESSIONS {
                            for response in frontend.drain_replies().await.unwrap() {
                                let BatchOutcome::Reply { endorsed: e, .. } = &response.outcome
                                else {
                                    panic!("bench item failed: {:?}", response.outcome);
                                };
                                assert!(e, "bench traffic is honest");
                                collected += 1;
                            }
                        }
                        endorsed.set(collected);
                    });
                }
                executor.run();
                endorsed.get()
            })
        });
    }
    group.finish();
}

/// `gateway_ingest/*`: the replay path. `load/R` measures the chunked
/// scenario loader (generate once, load per iteration with R readers;
/// throughput is records/s — on a multicore host 4 readers parse
/// concurrently). `ingest_*` replays a small steady scenario through a
/// live single-shard gateway, per-record `submit` vs `submit_batch`
/// grouped per shard. Replaying consumes per-device rounds, so each
/// iteration builds a fresh harness; that build cost is identical across
/// the two modes, so the delta between them is still the admission
/// paths' — E17 is the precise (isolated-region) instrument.
fn bench_replay_ingest(c: &mut Criterion) {
    use glimmer_workloads::replay::{
        generate_scenario_file, load_chunks, load_spans, FileSource, MmapSource, ScenarioMix,
        ScenarioSpec, CHUNK_EXCESS,
    };

    let mut group = c.benchmark_group("gateway_ingest");

    // Loader: one on-disk scenario, loaded per iteration.
    let spec = ScenarioSpec {
        tenants: 4,
        devices_per_tenant: 10_000,
        records: 60_000,
        mix: ScenarioMix::Diurnal { period: 8_000 },
        seed: 45,
    };
    let path = std::env::temp_dir().join(format!(
        "glimmer-bench-ingest-{}.scenario",
        std::process::id()
    ));
    let info = generate_scenario_file(&path, &spec).unwrap();
    {
        let source = FileSource::open(&path).unwrap();
        for &readers in &[1usize, 4] {
            group.throughput(Throughput::Elements(info.records));
            group.bench_with_input(
                BenchmarkId::new("load", readers),
                &readers,
                |b, &readers| {
                    b.iter(|| {
                        let loads = load_chunks(&source, readers, CHUNK_EXCESS).unwrap();
                        let total: u64 = loads.iter().map(|l| l.summary.records).sum();
                        assert_eq!(total, info.records, "loader lost records");
                        total
                    })
                },
            );
        }
        // pread vs mmap at the same reader counts: `load/R` pays one
        // positional read syscall per window; `load_mmap/R` parses the
        // page cache copy-free through one long-lived mapping.
        let mapped = MmapSource::map(&path).unwrap();
        for &readers in &[1usize, 4] {
            group.throughput(Throughput::Elements(info.records));
            group.bench_with_input(
                BenchmarkId::new("load_mmap", readers),
                &readers,
                |b, &readers| {
                    b.iter(|| {
                        let loads = load_spans(mapped.as_bytes(), readers);
                        let total: u64 = loads.iter().map(|l| l.summary.records).sum();
                        assert_eq!(total, info.records, "loader lost records");
                        total
                    })
                },
            );
        }
    }
    let _ = std::fs::remove_file(&path);

    // End-to-end replay: admission path comparison over identical records.
    let serve_spec = ScenarioSpec {
        tenants: 2,
        devices_per_tenant: 16,
        records: 128,
        mix: ScenarioMix::Steady,
        seed: 46,
    };
    let records = serve_spec.records_vec();
    for (name, mode) in [
        ("ingest_per_record", IngestMode::PerRecord),
        ("ingest_batched", IngestMode::BatchedPerShard),
    ] {
        let config = IngestConfig {
            mode,
            window: 32,
            max_in_flight: 256,
            pacing: Pacing::Unpaced,
        };
        group.throughput(Throughput::Elements(records.len() as u64));
        group.bench_function(BenchmarkId::new(name, records.len()), |b| {
            b.iter(|| {
                let mut harness = ReplayHarness::build(&records, 2, 1, 2, DIM, 1024, [47u8; 32]);
                ingest(&mut harness, &records, &config).unwrap().endorsed()
            })
        });
    }
    group.finish();
}

/// The socket front door against the in-process blocking driver at equal
/// traffic: what one submit+drain round costs once a real loopback TCP hop
/// (framing, epoll wakeups, one front-door thread) sits between the
/// devices and the pool.
fn bench_gateway_net(c: &mut Criterion) {
    if !glimmer_gateway::net::supported() {
        return;
    }
    let mut group = c.benchmark_group("gateway_net");
    const SESSIONS: usize = 64;
    const SLOTS: usize = 2;

    // In-process baseline: blocking submits straight into the gateway.
    {
        let BatchedSetup {
            gateway,
            mut established,
        } = batched_setup(SESSIONS, SLOTS, (36, 37));
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("in_process_driver", SESSIONS), |b| {
            b.iter(|| {
                for (sid, client, device) in &mut established {
                    let request = device.encrypt_request(contribution(*client), PrivateData::None);
                    gateway.submit(*sid, request).unwrap();
                }
                drain_all_endorsed(&gateway)
            })
        });
    }

    // Socket path: one TCP connection per session, lifecycle established
    // over the wire, then steady-state submit + client-driven drain.
    {
        let mut rng = Drbg::from_seed([38u8; 32]);
        let mut avs = AttestationService::new([39u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: SLOTS,
                shards: 1,
                max_batch: 256,
                max_queue_depth: 4096,
                placement_session_weight: 4,
                platform_config: PlatformConfig::default(),
                evict_stale_period: None,
                net: NetConfig {
                    idle_timeout: None,
                    drain_interval: None,
                    ..NetConfig::default()
                },
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();
        let approved = gateway.measurement(APP).unwrap();
        let server = glimmer_gateway::net::serve(AsyncGateway::new(gateway), None).unwrap();
        let clients: Vec<u64> = (0..SESSIONS as u64).collect();
        let masks = BlindingService::new([15u8; 32]).zero_sum_masks(0, &clients, DIM);
        let mut conns = Vec::with_capacity(SESSIONS);
        for client in &clients {
            let mut conn = GatewayClient::connect(server.addr()).unwrap();
            conn.set_read_timeout(Some(Duration::from_secs(60)))
                .unwrap();
            let (sid, offer) = conn.open_session(APP).unwrap();
            let (accept, device) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            conn.complete_session(sid, &accept).unwrap();
            conn.install_mask(sid, &masks[*client as usize]).unwrap();
            conns.push((conn, sid, *client, device));
        }
        group.throughput(Throughput::Elements(SESSIONS as u64));
        group.bench_function(BenchmarkId::new("socket_driver", SESSIONS), |b| {
            b.iter(|| {
                for (conn, sid, client, device) in conns.iter_mut() {
                    let request = device.encrypt_request(contribution(*client), PrivateData::None);
                    conn.submit(*sid, request).unwrap();
                }
                let mut routed = 0u64;
                while routed < SESSIONS as u64 {
                    routed += conns[0].0.drain().unwrap();
                }
                let mut endorsed = 0usize;
                for (conn, sid, _, _) in conns.iter_mut() {
                    let envelope = conn.next_reply().unwrap();
                    assert_eq!(envelope.session_id, *sid);
                    let BatchOutcome::Reply { endorsed: e, .. } = &envelope.outcome else {
                        panic!("bench item failed: {:?}", envelope.outcome);
                    };
                    assert!(e, "bench traffic is honest");
                    endorsed += 1;
                }
                endorsed
            })
        });
        drop(conns);
        server.stop();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_serving, bench_shard_scaling, bench_batched_submission, bench_async_frontend,
        bench_replay_ingest, bench_gateway_net
}
criterion_main!(benches);
