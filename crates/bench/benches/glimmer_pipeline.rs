//! End-to-end Glimmer pipeline benchmark: validate + blind + sign + verify
//! (the headline E5 numbers).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glimmer_core::blinding::BlindingService;
use glimmer_core::host::{GlimmerClient, GlimmerDescriptor};
use glimmer_core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use sgx_sim::PlatformConfig;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("glimmer_pipeline");
    let mut rng = Drbg::from_seed([8u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    for dim in [16usize, 256, 2048] {
        let mut client = GlimmerClient::new(
            GlimmerDescriptor::keyboard_range_only(),
            PlatformConfig::default(),
            &mut rng,
        )
        .unwrap();
        client
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let masks = BlindingService::new([3u8; 32]).zero_sum_masks(0, &[0, 1], dim);
        client.install_mask(&masks[0]).unwrap();
        let weights: Vec<f64> = (0..dim).map(|i| (i % 7) as f64 / 10.0).collect();
        group.bench_with_input(BenchmarkId::new("process_and_verify", dim), &dim, |b, _| {
            b.iter(|| {
                let contribution = Contribution {
                    app_id: "nextwordpredictive.com".to_string(),
                    client_id: 0,
                    round: 0,
                    payload: ContributionPayload::ModelUpdate {
                        weights: weights.clone(),
                    },
                };
                match client.process(contribution, PrivateData::None).unwrap() {
                    ProcessResponse::Endorsed(e) => material.verifier().verify(&e).unwrap(),
                    ProcessResponse::Rejected { reason } => panic!("rejected: {reason}"),
                }
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_pipeline
}
criterion_main!(benches);
