//! SGX-simulator micro-benchmarks: ECALL round trips, sealing, attestation
//! (supports E5).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glimmer_core::host::{GlimmerClient, GlimmerDescriptor};
use glimmer_crypto::drbg::Drbg;
use sgx_sim::{AttestationService, PlatformConfig};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_enclave_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("enclave");
    let mut rng = Drbg::from_seed([5u8; 32]);
    let mut client = GlimmerClient::new(
        GlimmerDescriptor::keyboard_default(),
        PlatformConfig::default(),
        &mut rng,
    )
    .unwrap();
    group.bench_function("ecall_status_round_trip", |b| {
        b.iter(|| client.status().unwrap())
    });

    let mut avs = AttestationService::new([6u8; 32]);
    let descriptor = GlimmerDescriptor::keyboard_default();
    group.bench_function(BenchmarkId::new("enclave_create", "keyboard"), |b| {
        b.iter(|| {
            GlimmerClient::new(descriptor.clone(), PlatformConfig::default(), &mut rng).unwrap()
        })
    });

    let mut attested = GlimmerClient::new(
        GlimmerDescriptor::bot_detection_default(Vec::new(), 8),
        PlatformConfig::default(),
        &mut rng,
    )
    .unwrap();
    attested.provision_platform(&mut avs);
    group.bench_function("attested_channel_offer(quote)", |b| {
        b.iter(|| attested.start_channel().unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_enclave_ops
}
criterion_main!(benches);
