//! Federated-learning substrate benchmarks (supports E1/E3/E4).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glimmer_bench::{run_keyboard_round, AttackKind, KeyboardRoundConfig, PredicateLevel};
use glimmer_federated::aggregation::aggregate_mean;
use glimmer_federated::trainer::train_local_model;
use glimmer_workloads::keyboard::{KeyboardWorkload, KeyboardWorkloadConfig};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

fn bench_training_and_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("federated");
    let workload = KeyboardWorkload::generate(
        &KeyboardWorkloadConfig {
            users: 16,
            vocab_size: 60,
            sentences_per_user: 20,
            ..KeyboardWorkloadConfig::default()
        },
        [4u8; 32],
    );
    group.bench_function("train_local_model", |b| {
        b.iter(|| train_local_model(&workload.schema, &workload.users[0].sentences).unwrap())
    });
    let locals: Vec<_> = workload
        .users
        .iter()
        .map(|u| train_local_model(&workload.schema, &u.sentences).unwrap().0)
        .collect();
    group.bench_function("aggregate_mean_16users", |b| {
        b.iter(|| aggregate_mean(&workload.schema, &locals).unwrap())
    });

    for protected in [false, true] {
        let label = if protected {
            "protected"
        } else {
            "unprotected"
        };
        group.bench_with_input(
            BenchmarkId::new("keyboard_round_8users", label),
            &protected,
            |b, &p| {
                b.iter(|| {
                    run_keyboard_round(&KeyboardRoundConfig {
                        users: 8,
                        malicious_fraction: 0.125,
                        attack: Some(AttackKind::OutOfRange538),
                        protected: p,
                        predicate_level: PredicateLevel::Corroborate,
                        seed: [9u8; 32],
                        workload: KeyboardWorkloadConfig {
                            users: 8,
                            vocab_size: 40,
                            sentences_per_user: 10,
                            ..KeyboardWorkloadConfig::default()
                        },
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_training_and_rounds
}
criterion_main!(benches);
