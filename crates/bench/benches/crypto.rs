//! Micro-benchmarks for the cryptographic substrate (supports E5).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use glimmer_crypto::aead::AeadKey;
use glimmer_crypto::chacha20::ChaCha20;
use glimmer_crypto::dh::{DhGroup, DhKeyPair};
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::hmac::hmac_sha256;
use glimmer_crypto::schnorr::SigningKey;
use glimmer_crypto::sha256::sha256;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_hash_and_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_mac");
    for size in [64usize, 4096] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, d| {
            b.iter(|| sha256(d))
        });
        group.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, d| {
            b.iter(|| hmac_sha256(b"key", d))
        });
    }
    group.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher");
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    for size in [256usize, 16384] {
        let data = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("chacha20", size), &data, |b, d| {
            b.iter(|| {
                let mut buf = d.clone();
                ChaCha20::new(&key, &nonce).apply(&mut buf, 0);
                buf
            })
        });
        group.bench_with_input(BenchmarkId::new("aead_seal", size), &data, |b, d| {
            let k = AeadKey::from_master(&[1u8; 32]);
            b.iter(|| k.seal(&nonce, b"aad", d))
        });
    }
    group.finish();
}

fn bench_public_key(c: &mut Criterion) {
    let mut group = c.benchmark_group("public_key");
    let mut rng = Drbg::from_seed([3u8; 32]);
    let key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let sig = key.sign(b"endorsement").unwrap();
    group.bench_function("schnorr_sign", |b| {
        b.iter(|| key.sign(b"endorsement").unwrap())
    });
    group.bench_function("schnorr_verify", |b| {
        b.iter(|| key.verifying_key().verify(b"endorsement", &sig).unwrap())
    });
    let alice = DhKeyPair::generate(DhGroup::default_group(), &mut rng).unwrap();
    let bob = DhKeyPair::generate(DhGroup::default_group(), &mut rng).unwrap();
    group.bench_function("dh_derive_shared", |b| {
        b.iter(|| alice.derive_shared_key(bob.public(), b"ctx", 32).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hash_and_mac, bench_cipher, bench_public_key
}
criterion_main!(benches);
