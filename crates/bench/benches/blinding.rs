//! Blinding micro-benchmarks and the zero-sum vs pairwise ablation
//! (supports E2 and the DESIGN.md ablation list).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use glimmer_core::blinding::BlindingService;
use glimmer_federated::fixed::encode_weights;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
}

fn bench_masks(c: &mut Criterion) {
    let mut group = c.benchmark_group("blinding");
    let service = BlindingService::new([1u8; 32]);
    let clients: Vec<u64> = (0..64).collect();
    for dim in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("zero_sum_masks_64c", dim),
            &dim,
            |b, &d| b.iter(|| service.zero_sum_masks(1, &clients, d)),
        );
        group.bench_with_input(
            BenchmarkId::new("pairwise_masks_64c", dim),
            &dim,
            |b, &d| b.iter(|| service.pairwise_masks(1, &clients, d)),
        );
        let masks = service.zero_sum_masks(1, &clients, dim);
        let contribution = encode_weights(&vec![0.5; dim]);
        group.bench_with_input(BenchmarkId::new("blind_apply", dim), &dim, |b, _| {
            b.iter(|| masks[0].blind(&contribution))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_masks
}
criterion_main!(benches);
