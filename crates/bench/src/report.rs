//! Shared machine-readable bench summaries (`BENCH_eNN.json`).
//!
//! Every experiment bin writes a flat JSON object next to the working
//! directory so the perf trajectory stays trackable across changes. The
//! workspace deliberately has no serialization dependency, so this is a
//! tiny hand-rolled writer — extracted here (instead of each bin
//! hand-formatting its own `format!` block, as E16 originally did) so the
//! artifacts stay schema-consistent: insertion-ordered keys, two-space
//! indent, fixed decimal precision chosen per field, `null` for non-finite
//! floats.

use std::fmt::Write as _;

/// An insertion-ordered flat JSON object and the experiment it describes.
#[derive(Debug, Clone)]
pub struct BenchReport {
    experiment: String,
    fields: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report for `experiment`; the name becomes the leading
    /// `"experiment"` key.
    #[must_use]
    pub fn new(experiment: &str) -> BenchReport {
        BenchReport {
            experiment: experiment.to_string(),
            fields: Vec::new(),
        }
    }

    fn push_raw(&mut self, key: &str, rendered: String) {
        self.fields.push((key.to_string(), rendered));
    }

    /// Adds an unsigned integer field.
    pub fn push_u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a float field rendered with `decimals` fractional digits;
    /// non-finite values become `null` (JSON has no NaN/Inf).
    pub fn push_f64(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        let rendered = if value.is_finite() {
            format!("{value:.decimals$}")
        } else {
            "null".to_string()
        };
        self.push_raw(key, rendered);
        self
    }

    /// Adds a boolean field.
    pub fn push_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Adds a string field (keys and values are expected to be plain
    /// identifiers/labels; quotes and backslashes are escaped defensively).
    pub fn push_str(&mut self, key: &str, value: &str) -> &mut Self {
        let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
        self.push_raw(key, format!("\"{escaped}\""));
        self
    }

    /// Renders the report as a two-space-indented JSON object, keys in
    /// insertion order, `"experiment"` first, trailing newline included.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = write!(out, "  \"experiment\": \"{}\"", self.experiment);
        for (key, value) in &self.fields {
            let _ = write!(out, ",\n  \"{key}\": {value}");
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the rendered report to `path`, printing the same
    /// wrote/could-not-write line the experiment bins have always printed.
    pub fn write(&self, path: &str) {
        match std::fs::write(path, self.render()) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_flat_json() {
        let mut report = BenchReport::new("e99_example");
        report
            .push_u64("requests", 256)
            .push_f64("serve_ms", 12.3456, 3)
            .push_f64("bad", f64::NAN, 2)
            .push_bool("ok", true)
            .push_str("mode", "smoke \"quoted\"");
        let rendered = report.render();
        assert_eq!(
            rendered,
            "{\n  \"experiment\": \"e99_example\",\n  \"requests\": 256,\n  \
             \"serve_ms\": 12.346,\n  \"bad\": null,\n  \"ok\": true,\n  \
             \"mode\": \"smoke \\\"quoted\\\"\"\n}\n"
        );
    }
}
