//! E13: the batched, allocation-lean hot path — per-request `submit` vs
//! per-session `submit_many` vs bulk-producer `submit_batch` over identical
//! traffic, at `shards: 1` so drain cycles are a bit-for-bit determinism
//! check.
//!
//! Run with `--smoke` for the fast CI configuration. Build with
//! `--features count-allocs` to populate (and assert on) the
//! allocations/request column; without it the column reads `n/a`.

use glimmer_bench::alloc_track;
use glimmer_bench::{e13_batched_hot_path, e13_drain_buffer_churn};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, requests_per_session, chunks, slots): (usize, usize, &[usize], usize) = if smoke
    {
        (8, 4, &[4, 16], 2)
    } else {
        (32, 8, &[4, 16, 64], 4)
    };
    println!("E13: batched hot path (identical traffic, different admission grouping)");
    println!(
        "{:>13} {:>6} {:>8} {:>9} {:>9} {:>10} {:>13} {:>9} {:>12} {:>11} {:>11} {:>11}",
        "mode",
        "batch",
        "reqs",
        "endorsed",
        "commands",
        "cmd redux",
        "drain cyc",
        "serve ms",
        "endorse/s",
        "alloc/req",
        "submit a/r",
        "drain a/r"
    );
    let rows = e13_batched_hot_path(sessions, requests_per_session, chunks, slots, [43u8; 32]);
    let fmt_allocs = |v: f64| {
        if alloc_track::counting_enabled() {
            format!("{v:.1}")
        } else {
            "n/a".to_string()
        }
    };
    for r in &rows {
        println!(
            "{:>13} {:>6} {:>8} {:>9} {:>9} {:>9.1}x {:>13} {:>9.2} {:>12.0} {:>11} {:>11} {:>11}",
            r.mode,
            r.batch,
            r.requests,
            r.endorsed,
            r.submit_commands,
            r.command_reduction,
            r.total_drain_cycles,
            r.serve_ms,
            r.endorse_per_s,
            fmt_allocs(r.allocs_per_req),
            fmt_allocs(r.submit_allocs_per_req),
            fmt_allocs(r.drain_allocs_per_req)
        );
    }

    let base = &rows[0];
    for row in &rows[1..] {
        assert_eq!(
            row.endorsed, base.endorsed,
            "regression: {} changed the endorsement outcome",
            row.mode
        );
        assert_eq!(
            row.total_drain_cycles, base.total_drain_cycles,
            "regression: {} broke single-shard drain-cycle determinism",
            row.mode
        );
        assert!(
            row.submit_commands * 2 <= base.submit_commands,
            "regression: {} issued {} shard-queue commands, not >=2x fewer than {}",
            row.mode,
            row.submit_commands,
            base.submit_commands
        );
    }
    println!(
        "batched admission issues >=2x fewer shard-queue commands than per-request submit \
         (bar holds); drain cycles bit-identical across all rows"
    );
    if alloc_track::counting_enabled() {
        // No-regression bar on the full pipeline: batched admission must
        // not cost more allocator traffic than per-request admission at
        // equal traffic (the column is dominated by enclave crypto, which
        // is identical across rows, so 1% headroom covers only the
        // admission-side containers).
        for row in &rows[1..] {
            assert!(
                row.allocs_per_req <= base.allocs_per_req * 1.01,
                "regression: {} at batch {} allocated {:.1}/req vs per-request {:.1}/req",
                row.mode,
                row.batch,
                row.allocs_per_req,
                base.allocs_per_req
            );
        }
        // The scratch-reuse bar, measured on the drain buffer discipline in
        // isolation: the reusable per-worker scratch must beat the PR 2
        // one-shot-buffer discipline (fresh held-items container + fresh
        // wire encoder + fresh reply decode per sweep). Both sides pay the
        // per-item reply allocations, so the gap is pure container churn.
        const CHURN_BATCH: usize = 64;
        const CHURN_SWEEPS: usize = 256;
        let (one_shot, scratch) = e13_drain_buffer_churn(CHURN_BATCH, CHURN_SWEEPS);
        assert!(
            scratch < one_shot,
            "regression: reusable drain scratch allocated {scratch} times over \
             {CHURN_SWEEPS} sweeps, not fewer than the {one_shot} of one-shot buffers"
        );
        println!(
            "counting allocator installed: full pipeline {:.1} allocs/req in every mode \
             (admission {:.2}/req per-request vs {:.2}/req at batch {}); drain buffer \
             churn over {CHURN_SWEEPS} sweeps of {CHURN_BATCH} items: {one_shot} allocs \
             one-shot (PR 2 discipline) vs {scratch} with the reusable scratch \
             ({:.1} fewer per sweep)",
            base.allocs_per_req,
            base.submit_allocs_per_req,
            rows.last()
                .expect("batched rows exist")
                .submit_allocs_per_req,
            rows.last().expect("batched rows exist").batch,
            (one_shot.saturating_sub(scratch)) as f64 / CHURN_SWEEPS as f64
        );
    } else {
        println!("(build with --features count-allocs to measure allocations/request)");
    }
}
