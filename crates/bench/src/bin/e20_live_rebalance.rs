//! E20: live slot rebalancing — a deliberately skewed fleet recovers.
//!
//! Three identically-seeded fleets serve the same pre-encrypted workload:
//! one with its slots in their natural even placement, one with every slot
//! piled onto shard 0 (all traffic pinned to one worker) and never
//! rebalanced, and one with the same pile-up but a `Rebalancer` ticking
//! until its plan is empty — migrating hot slots, queued requests and all,
//! onto idle shards before anything drains.
//!
//! The bars: the rebalanced run's per-shard critical-path cycles must land
//! within **1.5x** of the even baseline (the skewed run sits near
//! `shards`x), its replies must be **bit-identical** to the even run's
//! (zero lost or duplicated endorsements across live migration), and the
//! rebalancer must have actually moved queued work.
//!
//! Run with `--smoke` for the fast CI configuration. Always writes a
//! machine-readable `BENCH_e20.json` summary.

use glimmer_bench::e20_live_rebalance;
use glimmer_bench::BenchReport;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shards, slots_per_shard, requests_per_session) = if smoke { (2, 2, 3) } else { (4, 2, 4) };
    println!(
        "E20: live slot rebalancing — {shards} shards, {} slots, \
         {requests_per_session} requests/session",
        shards * slots_per_shard
    );

    let r = e20_live_rebalance(shards, slots_per_shard, requests_per_session, [46u8; 32]);

    println!(
        "even placement:   critical path {:>9} cycles ({} requests, {} endorsed)",
        r.even_critical_cycles, r.requests, r.endorsed_even
    );
    println!(
        "skewed, no moves: critical path {:>9} cycles ({:.2}x the even baseline)",
        r.skewed_critical_cycles, r.skew_ratio
    );
    println!(
        "rebalanced:       critical path {:>9} cycles ({:.2}x the even baseline)",
        r.rebalanced_critical_cycles, r.recovery_ratio
    );
    println!(
        "rebalancer: {} migrations carried {} queued requests live in {:.3} ms",
        r.migrations, r.queued_moved, r.rebalance_ms
    );

    assert!(
        r.skew_ratio > 1.5,
        "the skewed fleet must actually be congested (got {:.2}x)",
        r.skew_ratio
    );
    assert!(
        r.recovery_ratio <= 1.5,
        "regression: rebalanced critical path {:.2}x exceeds the 1.5x recovery bar",
        r.recovery_ratio
    );
    assert!(r.migrations > 0, "the rebalancer never moved a slot");
    assert!(
        r.queued_moved > 0,
        "migrations must carry live queued work, not just idle slots"
    );
    assert!(
        r.replies_identical,
        "rebalanced replies diverged from the unmigrated same-seed run"
    );
    assert_eq!(
        r.endorsed_even, r.endorsed_rebalanced,
        "endorsements were lost or duplicated across live migration"
    );
    println!(
        "recovery bar holds: {:.2}x <= 1.5x, replies bit-identical, \
         endorsements preserved ({})",
        r.recovery_ratio, r.endorsed_rebalanced
    );

    let mut report = BenchReport::new("e20_live_rebalance");
    report
        .push_u64("shards", r.shards as u64)
        .push_u64("slots", r.slots as u64)
        .push_u64("requests", r.requests as u64)
        .push_u64("endorsed_even", r.endorsed_even as u64)
        .push_u64("endorsed_rebalanced", r.endorsed_rebalanced as u64)
        .push_u64("even_critical_cycles", r.even_critical_cycles)
        .push_u64("skewed_critical_cycles", r.skewed_critical_cycles)
        .push_u64("rebalanced_critical_cycles", r.rebalanced_critical_cycles)
        .push_f64("skew_ratio", r.skew_ratio, 3)
        .push_f64("recovery_ratio", r.recovery_ratio, 3)
        .push_u64("migrations", r.migrations as u64)
        .push_u64("queued_moved", r.queued_moved as u64)
        .push_f64("rebalance_ms", r.rebalance_ms, 3)
        .push_bool("replies_identical", r.replies_identical);
    report.write("BENCH_e20.json");
}
