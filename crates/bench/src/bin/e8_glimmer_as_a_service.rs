//! E8: glimmer-as-a-service for IoT devices (Section 4.2).
use glimmer_bench::e8_glimmer_as_a_service;

fn main() {
    println!("E8: glimmer-as-a-service");
    println!(
        "{:>8} {:>10} {:>10} {:>16} {:>16} {:>16}",
        "devices", "endorsed", "rejected", "remote ms/dev", "local ms/contr", "host cycles"
    );
    for &devices in &[4usize, 16, 64] {
        let r = e8_glimmer_as_a_service(devices, 16, [42u8; 32]);
        println!(
            "{:>8} {:>10} {:>10} {:>16.2} {:>16.2} {:>16}",
            r.devices,
            r.endorsed,
            r.rejected,
            r.remote_ms_per_device,
            r.local_ms_per_contribution,
            r.host_enclave_cycles
        );
    }
}
