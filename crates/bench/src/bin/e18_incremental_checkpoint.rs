//! E18: incremental, streamed checkpoints — per-slot dirty epochs and
//! delta snapshots so housekeeping runs at hardware speed.
//!
//! Phase 1 serves one round across a 40-slot pool (every slot dirty and
//! stateful), takes a full checkpoint as the chain base, then re-serves
//! only 2 devices (5% of the pool) and captures an incremental delta
//! against the base. The bars: the delta must consume **≥ 10x fewer
//! EXPORT_STATE ECALLs** than the full checkpoint (clean slots are skipped
//! entirely — no barrier, no seal, no ECALL) and finish in **≥ 5x less
//! wall time** (best-of-repeats on both sides).
//!
//! Phase 2 re-captures the same pool slot-at-a-time with the streamed
//! path while driving live requests through the gateway from inside the
//! mid-export hook — at least one must be submitted, drained, and endorsed
//! while the capture is in flight, proving housekeeping no longer stops
//! the world.
//!
//! Phase 3 replays two identically-seeded fixtures — one checkpointing
//! base + delta, one taking full snapshots at the same points — crashes
//! both, restores one through the delta chain and one from the full
//! snapshot, and asserts a fresh checkpoint from either restored gateway
//! is **byte-for-byte identical** (ciphertext level), with identical
//! post-restore serving.
//!
//! Run with `--smoke` for the fast CI configuration. Always writes a
//! machine-readable `BENCH_e18.json` summary.

use glimmer_bench::e18_incremental_checkpoint;
use glimmer_bench::BenchReport;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 2/40 dirty = the 5% scenario in both configurations; the full run
    // uses a larger per-slot state and more repeats for tighter timing.
    let (slots, dirty, dimension, repeats, overlap_requests) = if smoke {
        (40, 2, 32, 3, 8)
    } else {
        (40, 2, 64, 7, 16)
    };
    println!(
        "E18: incremental + streamed checkpoints — {slots} slots, {dirty} dirty \
         ({:.0}%), dimension {dimension}",
        100.0 * dirty as f64 / slots as f64
    );

    let r = e18_incremental_checkpoint(
        slots,
        dirty,
        dimension,
        repeats,
        overlap_requests,
        [45u8; 32],
    );

    // ---- Phase 1: the delta scales with the dirty set. ----
    println!(
        "full checkpoint:  {:>5} ECALLs {:>9.3} ms {:>8} bytes",
        r.full_ecalls, r.full_ms, r.full_bytes
    );
    println!(
        "delta checkpoint: {:>5} ECALLs {:>9.3} ms {:>8} bytes ({} exported, {} skipped)",
        r.delta_ecalls, r.delta_ms, r.delta_bytes, r.dirty_slots, r.skipped_slots
    );
    assert_eq!(
        r.dirty_slots, dirty,
        "regression: the delta re-exported more than the dirtied slots"
    );
    assert!(
        r.ecall_reduction >= 10.0,
        "regression: delta consumed only {:.1}x fewer ECALLs (bar: >= 10x)",
        r.ecall_reduction
    );
    assert!(
        r.wall_speedup >= 5.0,
        "regression: delta was only {:.1}x faster than a full checkpoint (bar: >= 5x)",
        r.wall_speedup
    );
    assert!(
        r.delta_bytes < r.full_bytes,
        "regression: delta frame not smaller than the full snapshot"
    );
    println!(
        "delta vs full: {:.1}x fewer ECALLs (bar >= 10x), {:.1}x less wall time (bar >= 5x)",
        r.ecall_reduction, r.wall_speedup
    );

    // ---- Phase 2: serving continued during the streamed capture. ----
    println!(
        "streamed capture: {:.3} ms, {} requests endorsed mid-capture",
        r.streamed_ms, r.served_during_capture
    );
    assert!(
        r.served_during_capture > 0,
        "regression: no request was served while the streamed capture was in flight"
    );

    // ---- Phase 3: chain restore is bit-identical to full restore. ----
    assert!(
        r.chain_restore_identical,
        "regression: chain restore diverged from full-snapshot restore at the ciphertext level"
    );
    assert!(
        r.chain_tail_identical,
        "regression: post-restore serving diverged between the two restore paths"
    );
    println!(
        "base+delta chain restore is byte-identical to the full-snapshot restore; \
         post-restore serving matches (bars hold)"
    );

    // Telemetry accounted for both the forced exports and the skips.
    assert!(r.telemetry_slots_exported > 0 && r.telemetry_slots_skipped > 0);
    println!(
        "telemetry checkpoint_slots_total: {} exported, {} skipped",
        r.telemetry_slots_exported, r.telemetry_slots_skipped
    );

    // Machine-readable summary for cross-change tracking.
    let mut report = BenchReport::new("e18_incremental_checkpoint");
    report
        .push_bool("smoke", smoke)
        .push_u64("slots", r.slots as u64)
        .push_u64("dirty_slots", r.dirty_slots as u64)
        .push_u64("skipped_slots", r.skipped_slots as u64)
        .push_u64("full_ecalls", r.full_ecalls)
        .push_u64("delta_ecalls", r.delta_ecalls)
        .push_f64("ecall_reduction", r.ecall_reduction, 2)
        .push_f64("full_ms", r.full_ms, 4)
        .push_f64("delta_ms", r.delta_ms, 4)
        .push_f64("wall_speedup", r.wall_speedup, 2)
        .push_u64("full_bytes", r.full_bytes as u64)
        .push_u64("delta_bytes", r.delta_bytes as u64)
        .push_f64("streamed_ms", r.streamed_ms, 4)
        .push_u64("served_during_capture", r.served_during_capture)
        .push_u64("telemetry_slots_exported", r.telemetry_slots_exported)
        .push_u64("telemetry_slots_skipped", r.telemetry_slots_skipped)
        .push_bool("chain_restore_identical", r.chain_restore_identical)
        .push_bool("chain_tail_identical", r.chain_tail_identical);
    report.write("BENCH_e18.json");
}
