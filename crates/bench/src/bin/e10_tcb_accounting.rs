//! E10: trusted computing base accounting (Section 3).
use glimmer_bench::e10_tcb_accounting;

fn main() {
    println!("E10: Glimmer TCB accounting and verifiability");
    println!(
        "{:>28} {:>12} {:>8} {:>10} {:>11} {:>14} {:>11}",
        "glimmer", "descr bytes", "pages", "EPC KiB", "predicates", "declassifiers", "verifiable"
    );
    for r in e10_tcb_accounting() {
        println!(
            "{:>28} {:>12} {:>8} {:>10} {:>11} {:>14} {:>11}",
            r.name,
            r.descriptor_bytes,
            r.total_pages,
            r.epc_kib,
            r.predicates,
            r.declassifiers,
            r.verifiable
        );
    }
}
