//! E17: million-device replay ingest — a chunked parallel scenario loader
//! feeding the batched hot path.
//!
//! Phase 1 generates a multi-megabyte line-format scenario file and loads
//! it with 1/2/4/8 parallel chunk readers, asserting the readers
//! reproduce the generator's records exactly once (nothing lost,
//! duplicated, or split at a chunk boundary) and that the chunk
//! partition's critical path — the busiest chunk — admits a ≥2×
//! deterministic speedup at 4 readers. Wall-clock speedup is additionally
//! asserted when the host actually has ≥4 cores; on smaller hosts it is
//! reported but not gated (a single core cannot run readers
//! concurrently, deterministically or otherwise).
//!
//! Phase 2 replays a smaller abuse-burst scenario through a live gateway
//! on the batched-per-shard path with bounded in-flight admission, and
//! asserts the response stream is bit-identical (session, tenant, and
//! full outcome ciphertext) to an in-process per-record baseline run at
//! `shards: 1` with the same drain cadence.
//!
//! Run with `--smoke` for the fast CI configuration. Build with
//! `--features count-allocs` to populate (and assert on) the
//! allocations-per-record column; without it it reads `n/a`. Always
//! writes a machine-readable `BENCH_e17.json` summary.

use glimmer_bench::alloc_track;
use glimmer_bench::e17_replay_ingest;
use glimmer_bench::BenchReport;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (parse_records, repeats, serve_sessions, serve_rounds) = if smoke {
        (400_000, 3, 16, 8)
    } else {
        (4_000_000, 5, 48, 16)
    };
    let readers: [usize; 4] = [1, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "E17: replay ingest — chunked parallel scenario loader feeding the batched hot path \
         ({cores} host cores)"
    );

    let r = e17_replay_ingest(
        parse_records,
        &readers,
        repeats,
        serve_sessions,
        serve_rounds,
        [44u8; 32],
    );

    // ---- Loader scaling table. ----
    println!(
        "scenario file: {} records, {:.1} MiB",
        r.parse_records,
        r.parse_bytes as f64 / (1024.0 * 1024.0)
    );
    let fmt_allocs = |v: f64| {
        if alloc_track::counting_enabled() {
            format!("{v:.4}")
        } else {
            "n/a".to_string()
        }
    };
    println!(
        "{:>8} {:>11} {:>14} {:>12} {:>9} {:>9} {:>12}",
        "readers", "load ms", "records/s", "max chunk", "det x", "wall x", "allocs/rec"
    );
    for row in &r.loader_rows {
        println!(
            "{:>8} {:>11.2} {:>14.0} {:>12} {:>9.2} {:>9.2} {:>12}",
            row.readers,
            row.load_ms,
            row.records_per_s,
            row.max_chunk_records,
            row.det_speedup,
            row.wall_speedup,
            fmt_allocs(row.load_allocs_per_record)
        );
        assert!(
            row.exactly_once,
            "regression: {} readers lost, duplicated, or split records at a chunk boundary",
            row.readers
        );
    }

    // The deterministic-speedup bar holds on any host: with 4 readers the
    // busiest chunk must own at most half the records.
    let four = r
        .loader_rows
        .iter()
        .find(|row| row.readers == 4)
        .expect("4-reader row");
    assert!(
        four.det_speedup >= 2.0,
        "regression: 4-reader chunk partition admits only {:.2}x critical-path speedup",
        four.det_speedup
    );
    println!(
        "4-reader critical path is {:.2}x shorter than serial (bar: >= 2x) — exactly-once \
         holds at every reader count",
        four.det_speedup
    );
    // The wall-clock bar needs the cores to exist.
    if cores >= 4 {
        assert!(
            four.wall_speedup >= 2.0,
            "regression: 4 readers on {cores} cores achieved only {:.2}x wall-clock speedup",
            four.wall_speedup
        );
        println!(
            "4-reader wall clock is {:.2}x faster than 1 reader on {cores} cores (bar: >= 2x)",
            four.wall_speedup
        );
    } else {
        println!(
            "host has {cores} core(s): wall-clock speedup reported ({:.2}x at 4 readers) \
             but not gated",
            four.wall_speedup
        );
    }
    if alloc_track::counting_enabled() {
        // `load_chunks` allocates windows, output vectors, and thread
        // stacks — a handful of allocations per *chunk* — but the
        // per-record parse itself must stay allocation-free, so the
        // per-record amortisation must be far below one.
        for row in &r.loader_rows {
            assert!(
                row.load_allocs_per_record < 0.01,
                "regression: {} readers allocated {:.4} times per record \
                 (per-record parse must be allocation-free)",
                row.readers,
                row.load_allocs_per_record
            );
        }
        println!(
            "counting allocator installed: loader stays under 0.01 allocations/record at \
             every reader count — per-record parse is allocation-free"
        );
    } else {
        println!("(build with --features count-allocs to measure allocations/record)");
    }

    // ---- End-to-end replay vs in-process baseline. ----
    println!(
        "replay ingest: {} records over {} sessions -> {} endorsed, {} quota-rejected, \
         {} drains, {:.2} ms ({:.0} records/s, {:.0} endorse/s)",
        r.serve_records,
        r.serve_sessions,
        r.replay_endorsed,
        r.quota_rejected,
        r.drains,
        r.replay_serve_ms,
        r.ingest_records_per_s,
        r.endorse_per_s
    );
    assert!(
        r.bit_identical,
        "regression: replayed responses diverged from the in-process per-record baseline"
    );
    assert_eq!(
        r.replay_endorsed, r.baseline_endorsed,
        "regression: endorsement counts diverged"
    );
    assert!(r.replay_endorsed > 0, "honest records must endorse");
    assert_eq!(r.parse_errors, 0, "generated scenario must parse cleanly");
    assert_eq!(
        r.telemetry_ingest_parsed, r.serve_records,
        "regression: telemetry ingest counter lost records"
    );
    assert_eq!(
        r.telemetry_ingest_quota_rejected, r.quota_rejected,
        "regression: telemetry quota-rejection counter diverged from the driver's count"
    );
    println!(
        "replayed responses are bit-identical to the in-process baseline; telemetry ingest \
         counters account for every record (bars hold)"
    );

    // Machine-readable summary for cross-change tracking.
    let mut report = BenchReport::new("e17_replay_ingest");
    report
        .push_bool("smoke", smoke)
        .push_u64("host_cores", cores as u64)
        .push_u64("parse_records", r.parse_records)
        .push_u64("parse_bytes", r.parse_bytes);
    for row in &r.loader_rows {
        let prefix = format!("readers_{}", row.readers);
        report
            .push_f64(&format!("{prefix}_load_ms"), row.load_ms, 3)
            .push_f64(&format!("{prefix}_records_per_s"), row.records_per_s, 0)
            .push_u64(
                &format!("{prefix}_max_chunk_records"),
                row.max_chunk_records,
            )
            .push_f64(&format!("{prefix}_det_speedup"), row.det_speedup, 3)
            .push_f64(&format!("{prefix}_wall_speedup"), row.wall_speedup, 3)
            .push_bool(&format!("{prefix}_exactly_once"), row.exactly_once);
    }
    report
        .push_bool("count_allocs", alloc_track::counting_enabled())
        .push_u64("serve_records", r.serve_records)
        .push_u64("serve_sessions", r.serve_sessions as u64)
        .push_u64("replay_endorsed", r.replay_endorsed as u64)
        .push_u64("quota_rejected", r.quota_rejected)
        .push_u64("drains", r.drains)
        .push_f64("replay_serve_ms", r.replay_serve_ms, 3)
        .push_f64("ingest_records_per_s", r.ingest_records_per_s, 0)
        .push_f64("endorse_per_s", r.endorse_per_s, 0)
        .push_bool("bit_identical", r.bit_identical)
        .push_u64("telemetry_ingest_parsed", r.telemetry_ingest_parsed)
        .push_u64(
            "telemetry_ingest_quota_rejected",
            r.telemetry_ingest_quota_rejected,
        );
    report.write("BENCH_e17.json");
}
