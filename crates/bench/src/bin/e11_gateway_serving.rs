//! E11: pooled-batched gateway serving vs. per-device remote Glimmer hosting.
use glimmer_bench::e11_gateway_serving;

fn main() {
    println!("E11: glimmer gateway serving (pooled+batched vs per-device hosts)");
    println!(
        "{:>8} {:>8} {:>6} {:>9} {:>13} {:>13} {:>9} {:>14} {:>14}",
        "sessions",
        "reqs/s.",
        "slots",
        "endorsed",
        "per-dev e/s",
        "pooled e/s",
        "speedup",
        "per-dev cyc/r",
        "pooled cyc/r"
    );
    for &(sessions, slots) in &[(1usize, 1usize), (8, 2), (64, 4)] {
        let r = e11_gateway_serving(sessions, 4, slots, [42u8; 32]);
        println!(
            "{:>8} {:>8} {:>6} {:>9} {:>13.0} {:>13.0} {:>9.2} {:>14.0} {:>14.0}",
            r.sessions,
            r.requests_per_session,
            r.slots,
            r.endorsed,
            r.per_device_endorse_per_s,
            r.pooled_endorse_per_s,
            r.speedup,
            r.per_device_cycles_per_req,
            r.pooled_drain_cycles_per_req
        );
    }
    println!("(pool build is a one-time cost; serving times exclude it and include handshakes)");
    println!("(wall-clock is dominated by device-side handshake crypto on both paths; the");
    println!(" cycles columns are the architectural metric — enclave build + attestation +");
    println!(" per-request transitions are simulated cycles that consume no wall-clock here.");
    println!(" See `cargo bench --bench gateway` for the steady-state wall-clock comparison.)");
}
