//! E1: federated next-word prediction (Figure 1a/1b).
use glimmer_bench::e1_federated_prediction;

fn main() {
    println!("E1: federated next-word prediction (Figure 1a/1b)");
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>10} {:>12}",
        "users", "fed top1", "fed top3", "single top1", "fed trend", "single trend"
    );
    for row in e1_federated_prediction(&[8, 16, 32, 64, 128], [42u8; 32]) {
        println!(
            "{:>6} {:>10.3} {:>10.3} {:>12.3} {:>10} {:>12}",
            row.users,
            row.federated_top1,
            row.federated_top3,
            row.single_user_top1,
            row.federated_trending,
            row.single_user_trending
        );
    }
}
