//! E2: secure model aggregation exactness (Figure 1c).
use glimmer_bench::e2_secure_aggregation;

fn main() {
    println!("E2: secure aggregation (Figure 1c)");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "clients", "dim", "max_abs_err", "masked_frac"
    );
    for row in e2_secure_aggregation(&[8, 32, 128, 512], &[16, 256, 4096], [42u8; 32]) {
        println!(
            "{:>8} {:>10} {:>14.2e} {:>14.4}",
            row.clients, row.dimension, row.max_abs_error, row.masked_fraction
        );
    }
}
