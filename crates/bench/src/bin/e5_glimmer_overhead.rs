//! E5: Glimmer overhead per contribution (Section 3).
use glimmer_bench::e5_overhead;

fn main() {
    println!("E5: Glimmer overhead per contribution");
    println!(
        "{:>8} {:>14} {:>16} {:>8} {:>18}",
        "dim", "wall us/contr", "cycles/contr", "ecalls", "split est cycles"
    );
    for r in e5_overhead(&[16, 64, 256, 1024, 4096], 20, [42u8; 32]) {
        println!(
            "{:>8} {:>14.1} {:>16} {:>8} {:>18}",
            r.dimension,
            r.wall_micros_per_contribution,
            r.enclave_cycles_per_contribution,
            r.ecalls_single,
            r.estimated_cycles_split
        );
    }
}
