//! E15: the async session front-end — thousands of device sessions
//! multiplexed onto ONE connection-handling thread.
//!
//! The blocking front door parks an OS thread in `recv` for every
//! outstanding command; the hand-rolled executor front-end
//! (`glimmer_gateway::frontend`) parks *tasks* instead, woken directly by
//! shard reply delivery. This binary serves identical traffic through both
//! drivers and asserts the architectural claims: every session live at
//! once on a front-end that spawned zero extra threads, with endorsement
//! outputs bit-identical to the blocking path at `shards: 1`.
//!
//! Run with `--smoke` for the CI configuration (≥1000 concurrent sessions —
//! the headline bar).

use glimmer_bench::e15_async_frontend;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, requests_per_session, slots): (usize, usize, usize) =
        if smoke { (1000, 2, 4) } else { (2000, 3, 4) };

    println!("E15: async front-end (one executor thread) vs blocking driver");
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>9} {:>12} {:>10} {:>11} {:>8} {:>9} {:>9} {:>10}",
        "sessions",
        "reqs",
        "slots",
        "endorsed",
        "rejected",
        "blocking ms",
        "async ms",
        "extra thr",
        "peak",
        "polls",
        "wakeups",
        "identical"
    );
    let r = e15_async_frontend(sessions, requests_per_session, slots, [45u8; 32]);
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>9} {:>12.2} {:>10.2} {:>11} {:>8} {:>9} {:>9} {:>10}",
        r.sessions,
        r.requests_per_session,
        r.slots,
        r.endorsed,
        r.rejected,
        r.blocking_ms,
        r.async_ms,
        r.extra_frontend_threads
            .map_or_else(|| "n/a".to_string(), |t| t.to_string()),
        r.peak_live_sessions,
        r.executor_polls,
        r.executor_wakeups,
        r.identical_outputs,
    );

    // The headline bar: >=1000 device sessions simultaneously live, all
    // served by the one thread driving the executor.
    assert!(
        r.peak_live_sessions >= 1000.min(sessions),
        "only {} sessions were concurrently live",
        r.peak_live_sessions
    );
    // The front-end added no threads: session concurrency came from tasks,
    // not OS threads. (Thread accounting needs /proc; absent that, the
    // executor's by-construction guarantee still holds.)
    if let Some(extra) = r.extra_frontend_threads {
        assert_eq!(
            extra, 0,
            "async front-end must not add OS threads (added {extra})"
        );
    }
    // Going async must change costs, never outcomes: the reply sequence is
    // bit-identical to the blocking driver's, ciphertexts included.
    assert!(
        r.identical_outputs,
        "async front-end diverged from the blocking path"
    );
    println!(
        "\n{} sessions multiplexed on one front-end thread (0 extra threads), \
         outputs bit-identical to the blocking driver",
        r.peak_live_sessions
    );
}
