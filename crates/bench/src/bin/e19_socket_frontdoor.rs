//! E19: the real socket front door — thousands of loopback TCP
//! connections served by ONE front-door thread (executor + epoll reactor),
//! with replies bit-identical to the in-process async/blocking drivers.
//!
//! E15 proved the executor multiplexes thousands of *in-process* sessions
//! on one thread; this binary closes the remaining gap to the paper's
//! deployment story by putting a real network between the devices and the
//! gateway. Every session is a separate `TcpStream` driven in lockstep, so
//! at `shards: 1` the enclaves observe the same operation order as the
//! blocking driver and the reply stream — reassembled from the server's
//! global drain sequence — must match byte-for-byte, ciphertexts included.
//! A deliberately hung connection rides along to show a silent client
//! costs the reactor nothing.
//!
//! Run with `--smoke` for the CI configuration (≥1000 concurrent TCP
//! sessions — the headline bar).

use glimmer_bench::e19_socket_frontdoor;

fn main() {
    if !glimmer_gateway::net::supported() {
        println!("E19: socket front door unsupported on this target; skipping");
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, requests_per_session, slots): (usize, usize, usize) =
        if smoke { (1000, 2, 4) } else { (1200, 3, 4) };

    println!("E19: socket front door (one thread, real TCP) vs in-process blocking driver");
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>9} {:>12} {:>10} {:>11} {:>8} {:>7} {:>10}",
        "sessions",
        "reqs",
        "slots",
        "endorsed",
        "rejected",
        "blocking ms",
        "socket ms",
        "extra thr",
        "peak",
        "drains",
        "identical"
    );
    let r = e19_socket_frontdoor(sessions, requests_per_session, slots, [45u8; 32]);
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>9} {:>12.2} {:>10.2} {:>11} {:>8} {:>7} {:>10}",
        r.sessions,
        r.requests_per_session,
        r.slots,
        r.endorsed,
        r.rejected,
        r.blocking_ms,
        r.socket_ms,
        r.extra_frontend_threads
            .map_or_else(|| "n/a".to_string(), |t| t.to_string()),
        r.peak_live_sessions,
        r.drain_calls,
        r.identical_outputs,
    );

    // The headline bar: >=1000 real TCP sessions simultaneously live.
    assert!(
        r.peak_live_sessions >= 1000.min(sessions),
        "only {} TCP-backed sessions were concurrently live",
        r.peak_live_sessions
    );
    // Serving real sockets cost exactly one thread: the front-door thread
    // that runs the executor and parks in epoll_wait. (Thread accounting
    // needs /proc; absent that, the serve() contract still holds.)
    if let Some(extra) = r.extra_frontend_threads {
        assert_eq!(
            extra, 1,
            "the front door must add exactly its one serving thread (added {extra})"
        );
    }
    // Putting a network in the middle must change costs, never outcomes:
    // the drain-sequence-ordered socket replies are bit-identical to the
    // in-process driver's, ciphertexts included.
    assert!(
        r.identical_outputs,
        "socket front door diverged from the in-process driver"
    );
    println!(
        "\n{} TCP sessions served on one front-door thread (+1 OS thread total), \
         outputs bit-identical to the in-process driver",
        r.peak_live_sessions
    );
}
