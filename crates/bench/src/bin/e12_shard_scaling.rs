//! E12: shard-per-core gateway runtime — drain throughput vs. shard count.
//!
//! Run with `--smoke` for the fast CI configuration.

use glimmer_bench::{e12_pinning_variance, e12_shard_scaling};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (shard_counts, slots, sessions_per_slot, requests): (&[usize], usize, usize, usize) =
        if smoke {
            (&[1, 2, 4], 4, 1, 2)
        } else {
            (&[1, 2, 4, 8], 8, 2, 4)
        };
    println!("E12: shard-per-core gateway runtime (same workload, growing shard count)");
    println!(
        "{:>6} {:>6} {:>8} {:>8} {:>9} {:>9} {:>12} {:>13} {:>13} {:>8} {:>9}",
        "shards",
        "slots",
        "sessions",
        "reqs",
        "endorsed",
        "serve ms",
        "wall req/s",
        "total cyc",
        "critical cyc",
        "par.",
        "speedup"
    );
    let rows = e12_shard_scaling(shard_counts, slots, sessions_per_slot, requests, [42u8; 32]);
    for r in &rows {
        println!(
            "{:>6} {:>6} {:>8} {:>8} {:>9} {:>9.2} {:>12.0} {:>13} {:>13} {:>8.2} {:>8.2}x",
            r.shards,
            r.slots,
            r.sessions,
            r.requests,
            r.endorsed,
            r.serve_ms,
            r.wall_requests_per_s,
            r.total_drain_cycles,
            r.critical_path_cycles,
            r.cycle_parallelism,
            r.cycle_speedup_vs_serial
        );
    }
    let four = rows.iter().find(|r| r.shards == 4);
    if let Some(four) = four {
        assert!(
            four.cycle_speedup_vs_serial >= 2.0,
            "regression: 4-shard critical path fell below 2x the serial baseline"
        );
        println!(
            "4-shard critical path speedup {:.2}x (>= 2x bar holds)",
            four.cycle_speedup_vs_serial
        );
    }
    println!("(total cycles are bit-identical across rows: sharding moves work, never changes");
    println!(" it. 'critical cyc' is the busiest shard — the deterministic serving makespan —");
    println!(" and the wall-clock column shows the same scaling on multicore hosts.)");

    // Satellite: serve-time variance with shard workers pinned to cores
    // (`GatewayConfig::pin_cores`) vs the scheduler's default placement.
    let shards = *shard_counts.last().unwrap();
    let pin_repeats = if smoke { 3 } else { 7 };
    let v = e12_pinning_variance(
        shards,
        slots,
        sessions_per_slot,
        requests,
        pin_repeats,
        [42u8; 32],
    );
    println!(
        "pinning variance ({} shards, {} repeats/mode): unpinned {:.2} ms ±{:.2} (CV {:.1}%), \
         pinned {:.2} ms ±{:.2} (CV {:.1}%), {} of {} workers pinned",
        v.shards,
        v.repeats,
        v.unpinned_mean_ms,
        v.unpinned_stddev_ms,
        v.unpinned_cv * 100.0,
        v.pinned_mean_ms,
        v.pinned_stddev_ms,
        v.pinned_cv * 100.0,
        v.pinned_workers,
        v.shards
    );
    assert!(
        v.cycles_identical,
        "regression: core pinning changed the simulated critical path \
         (it may move workers, never work)"
    );
    println!(
        "critical-path cycles are bit-identical across pinned and unpinned repeats — pinning \
         moves workers, never work (wall-clock variance is host-dependent and report-only)"
    );
}
