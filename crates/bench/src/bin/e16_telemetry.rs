//! E16: the telemetry layer — identical traffic served with observability
//! on (the default `TelemetryConfig`) vs off, plus the fidelity bars: the
//! lock-free histogram hot path allocates nothing, a `ManualClock`-driven
//! sampled trace stamps all five pipeline stages deterministically, and
//! the Prometheus-style text and JSON renderings round-trip to the same
//! samples.
//!
//! Run with `--smoke` for the fast CI configuration. Build with
//! `--features count-allocs` to populate (and assert on) the allocation
//! columns; without it they read `n/a`. Always writes a machine-readable
//! `BENCH_e16.json` summary next to the working directory so the perf
//! trajectory is trackable across changes.

use glimmer_bench::alloc_track;
use glimmer_bench::e16_telemetry;
use glimmer_bench::BenchReport;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, requests_per_session, slots, repeats) =
        // The smoke profile keeps the session count small but serves 256
        // requests per timed region: short regions are at the mercy of a
        // single scheduler preemption, which the 5% bar cannot absorb.
        if smoke { (8, 32, 2, 7) } else { (32, 16, 4, 7) };
    println!("E16: telemetry overhead and fidelity (identical traffic, observability on vs off)");
    let r = e16_telemetry(sessions, requests_per_session, slots, repeats, [43u8; 32]);

    let fmt_allocs = |v: f64| {
        if alloc_track::counting_enabled() {
            format!("{v:.1}")
        } else {
            "n/a".to_string()
        }
    };
    println!(
        "{:>9} {:>8} {:>9} {:>11} {:>12} {:>10} {:>11}",
        "telemetry", "reqs", "endorsed", "serve ms", "endorse/s", "overhead", "alloc/req"
    );
    println!(
        "{:>9} {:>8} {:>9} {:>11.2} {:>12.0} {:>10} {:>11}",
        "off",
        r.requests,
        r.endorsed,
        r.serve_ms_off,
        r.endorse_per_s_off,
        "-",
        fmt_allocs(r.allocs_per_req_off)
    );
    println!(
        "{:>9} {:>8} {:>9} {:>11.2} {:>12.0} {:>9.1}% {:>11}",
        "on",
        r.requests,
        r.endorsed,
        r.serve_ms_on,
        r.endorse_per_s_on,
        r.overhead_fraction * 100.0,
        fmt_allocs(r.allocs_per_req_on)
    );
    println!(
        "telemetry-on snapshot: {} exposition samples; queue-wait p50/p99 {}/{} ns; \
         ECALL p50/p99 {}/{} ns",
        r.sample_count,
        r.queue_wait_p50_nanos,
        r.queue_wait_p99_nanos,
        r.ecall_p50_nanos,
        r.ecall_p99_nanos
    );

    // Fidelity bars (deterministic — asserted in every build).
    assert!(
        r.trace_complete,
        "regression: the ManualClock-sampled trace lost a stage or its exact timestamps"
    );
    assert!(
        r.trace_monotonic,
        "regression: trace stage timestamps went backwards"
    );
    assert!(
        r.round_trip_ok,
        "regression: text and JSON expositions no longer parse to identical samples"
    );
    assert_eq!(
        r.accepted, r.requests as u64,
        "regression: admission accounting lost requests"
    );
    println!(
        "sampled trace carries all five stages with exact ManualClock timestamps; \
         text and JSON expositions round-trip to identical samples (bars hold)"
    );

    // The overhead bar: with the default sampling interval, full telemetry
    // must stay within 5% of the telemetry-off serve time (median per-pair
    // ratio over `repeats` interleaved repeats, so CPU-frequency drift and
    // scheduling noise cancel).
    assert!(
        r.overhead_fraction <= 0.05,
        "regression: telemetry overhead {:.1}% exceeds the 5% bar \
         (best serve: on {:.2} ms vs off {:.2} ms; median of {} pairs)",
        r.overhead_fraction * 100.0,
        r.serve_ms_on,
        r.serve_ms_off,
        r.repeats
    );
    println!(
        "telemetry-on serving is within 5% of baseline ({:+.1}%) — bar holds",
        r.overhead_fraction * 100.0
    );

    if alloc_track::counting_enabled() {
        // The recording hot path must not touch the allocator at all...
        assert_eq!(
            r.record_allocs, 0,
            "regression: Histogram::record allocated {} times over 100k records",
            r.record_allocs
        );
        // ...and across the whole serve region the only extra allocator
        // traffic telemetry may add is the one-time per-gateway trace
        // scratch growth — a small absolute count, independent of request
        // volume.
        assert!(
            r.telemetry_allocs_total <= 32,
            "regression: telemetry added {} allocations over the serve region \
             (steady-state recording must be allocation-free)",
            r.telemetry_allocs_total
        );
        println!(
            "counting allocator installed: Histogram::record made 0 allocations over 100k \
             records; telemetry added {} total allocations across {} requests \
             ({:.1}/req with vs {:.1}/req without) — hot path stays allocation-free",
            r.telemetry_allocs_total, r.requests, r.allocs_per_req_on, r.allocs_per_req_off
        );
    } else {
        println!("(build with --features count-allocs to measure allocations/request)");
    }

    // Machine-readable summary for cross-change tracking, via the shared
    // writer (same schema/precision as the original hand-formatted block).
    let mut report = BenchReport::new("e16_telemetry");
    report
        .push_bool("smoke", smoke)
        .push_u64("sessions", r.sessions as u64)
        .push_u64("requests_per_session", r.requests_per_session as u64)
        .push_u64("slots", r.slots as u64)
        .push_u64("repeats", r.repeats as u64)
        .push_u64("requests", r.requests as u64)
        .push_u64("endorsed", r.endorsed as u64)
        .push_f64("serve_ms_on", r.serve_ms_on, 3)
        .push_f64("serve_ms_off", r.serve_ms_off, 3)
        .push_f64("endorse_per_s_on", r.endorse_per_s_on, 0)
        .push_f64("endorse_per_s_off", r.endorse_per_s_off, 0)
        .push_f64("overhead_fraction", r.overhead_fraction, 4)
        .push_u64("queue_wait_p50_nanos", r.queue_wait_p50_nanos)
        .push_u64("queue_wait_p99_nanos", r.queue_wait_p99_nanos)
        .push_u64("ecall_p50_nanos", r.ecall_p50_nanos)
        .push_u64("ecall_p99_nanos", r.ecall_p99_nanos)
        .push_bool("count_allocs", alloc_track::counting_enabled())
        .push_u64("telemetry_allocs_total", r.telemetry_allocs_total)
        .push_u64("record_allocs", r.record_allocs)
        .push_bool("trace_complete", r.trace_complete)
        .push_bool("trace_monotonic", r.trace_monotonic)
        .push_bool("round_trip_ok", r.round_trip_ok);
    report.write("BENCH_e16.json");
}
