//! E9: model inversion against raw vs blinded contributions (Section 1).
use glimmer_bench::e9_model_inversion;

fn main() {
    println!("E9: membership inversion against individual contributions");
    println!(
        "{:>6} {:>14} {:>12} {:>18} {:>16}",
        "users", "raw precision", "raw recall", "blinded precision", "blinded recall"
    );
    for &users in &[16usize, 64] {
        let r = e9_model_inversion(users, [42u8; 32]);
        println!(
            "{:>6} {:>14.3} {:>12.3} {:>18.3} {:>16.3}",
            r.users, r.raw_precision, r.raw_recall, r.blinded_precision, r.blinded_recall
        );
    }
}
