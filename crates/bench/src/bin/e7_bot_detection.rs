//! E7: bot detection with validation confidentiality (Section 4.1).
use glimmer_bench::e7_bot_detection;

fn main() {
    println!("E7: bot detection through the Glimmer vs raw signal upload");
    for &(sessions, bots) in &[(200usize, 0.2f64), (500, 0.4)] {
        let r = e7_bot_detection(sessions, bots, [42u8; 32]);
        println!("sessions={} bots={} glimmer_acc={:.3} raw_acc={:.3} glimmer_B/session={} raw_B/session={} auditor_rejections={} capacity_bound_bits={}",
            r.sessions, r.bots, r.glimmer_accuracy, r.raw_upload_accuracy,
            r.glimmer_bytes_per_session, r.raw_bytes_per_session, r.auditor_rejections, r.capacity_bound_bits);
    }
}
