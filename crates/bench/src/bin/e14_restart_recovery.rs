//! E14: restart recovery — cold rebuild vs sealed checkpoint restore.
//!
//! A crashed gateway can come back two ways: rebuild everything (re-provision
//! every slot, re-handshake every device, re-deliver every mask) or restore
//! from a sealed checkpoint (one `IMPORT_STATE` ECALL per slot, devices keep
//! their sessions). This binary measures both paths over identical traffic
//! and asserts the restore path's provisioning-ECALL advantage.
//!
//! Run with `--smoke` for the fast CI configuration; the smoke run asserts
//! the ≥10x ECALL bar, zero re-provisioning on restore, and outcome
//! equivalence between the two recovery paths.

use glimmer_bench::e14_restart_recovery;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sessions, requests_per_session, slots): (usize, usize, usize) =
        if smoke { (8, 4, 4) } else { (32, 8, 4) };

    println!("E14: restart recovery (cold rebuild vs sealed checkpoint restore)");
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>10} {:>12} {:>11} {:>13} {:>10} {:>11} {:>11}",
        "sessions",
        "reqs",
        "slots",
        "endorsed",
        "cold ecall",
        "restore ecall",
        "ecall redux",
        "cold ms",
        "restore ms",
        "snap bytes",
        "post endo"
    );
    let r = e14_restart_recovery(sessions, requests_per_session, slots, [44u8; 32]);
    println!(
        "{:>9} {:>6} {:>6} {:>9} {:>10} {:>12} {:>10.1}x {:>13.2} {:>10.2} {:>11} {:>11}",
        r.sessions,
        r.requests_per_session,
        r.slots,
        r.pre_endorsed,
        r.cold_ready_ecalls,
        r.restore_ready_ecalls,
        r.ecall_reduction,
        r.cold_rebuild_ms,
        r.restore_ms,
        r.snapshot_bytes,
        r.post_endorsed_restore,
    );

    // Recovery must change cost, never outcomes.
    assert_eq!(
        r.post_endorsed_cold, r.post_endorsed_restore,
        "cold rebuild and checkpoint restore must endorse identically"
    );
    // Zero re-provisioning for already-provisioned tenants: exactly one
    // IMPORT_STATE ECALL per slot, nothing per session or per mask.
    assert_eq!(
        r.restore_ready_ecalls, r.slots as u64,
        "restore must pay exactly one ECALL per slot"
    );
    // The headline bar: at least 10x fewer provisioning ECALLs on restore.
    assert!(
        r.ecall_reduction >= 10.0,
        "restore must cut provisioning ECALLs >=10x (got {:.1}x)",
        r.ecall_reduction
    );
    println!(
        "\nrestore is {:.1}x fewer serve-ready ECALLs and {:.1}x faster wall-clock than a cold rebuild",
        r.ecall_reduction,
        r.cold_rebuild_ms / r.restore_ms.max(1e-9)
    );
}
