//! E6: the validation predicate spectrum (Section 2).
use glimmer_bench::e6_validation_spectrum;

fn main() {
    println!("E6: validation predicate spectrum");
    println!(
        "{:>12} {:>18} {:>14} {:>14} {:>16}",
        "level", "attack", "attack succ", "honest accept", "mean pred cost"
    );
    for r in e6_validation_spectrum(32, [42u8; 32]) {
        println!(
            "{:>12} {:>18} {:>14.3} {:>14.3} {:>16.0}",
            r.level,
            r.attack,
            r.attack_success_rate,
            r.honest_acceptance_rate,
            r.mean_predicate_cost
        );
    }
}
