//! E3: poisoning attack against secure aggregation (Figure 1d).
use glimmer_bench::{e3_e4_poisoning_sweep, AttackKind};

fn main() {
    println!("E3: poisoning the unprotected service (Figure 1d)");
    println!(
        "{:>18} {:>8} {:>9} {:>9} {:>12} {:>10} {:>9}",
        "attack", "mal%", "rejected", "top1", "L2-to-honest", "oor-frac", "trending"
    );
    let rows = e3_e4_poisoning_sweep(
        32,
        &[0.05, 0.10, 0.25],
        &AttackKind::all(),
        false,
        [42u8; 32],
    );
    for r in rows {
        println!(
            "{:>18} {:>8.2} {:>9} {:>9.3} {:>12.2} {:>10.4} {:>9}",
            r.attack,
            r.malicious_fraction,
            r.rejected,
            r.top1_accuracy,
            r.l2_from_honest,
            r.out_of_range_fraction,
            r.trending_top1
        );
    }
}
