//! The replay ingest driver: feeds loaded scenario records into the
//! gateway's batched hot path with bounded in-flight admission.
//!
//! This is the third stage of the replay pipeline (generate → load →
//! ingest). A [`ReplayHarness`] provisions the gateway exactly like the
//! in-process [`glimmer_workloads::gateway::GatewayTrafficWorkload`]
//! experiments do — per-tenant enclave pools, attested device sessions,
//! per-round zero-sum masks — and [`ingest`] drives the records through it:
//!
//! * **Bounded in-flight admission**: at most `max_in_flight` requests are
//!   queued before the driver drains, so replay applies backpressure
//!   instead of queueing a multi-hundred-MB scenario into memory.
//! * **Batched per shard**: in [`IngestMode::BatchedPerShard`] each
//!   submission window is grouped by [`Gateway::session_shard`] and lands
//!   as one `submit_batch` call per shard — the PR 3 bulk-producer path.
//! * **Nothing dropped silently**: backpressure is retried after a drain;
//!   terminal quota rejections are counted (and mirrored into the
//!   telemetry hub's ingest counters), never ignored.
//!
//! At `shards: 1` with the same window/in-flight cadence, the per-record
//! and batched modes produce **bit-identical responses** — the E17
//! integration bar.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{Gateway, GatewayConfig, GatewayError, GatewayResponse, TenantConfig};
use glimmer_workloads::replay::{payload_samples, replay_tenant_name, ReplayRecord};
use sgx_sim::AttestationService;

/// A gateway provisioned for a replay scenario: one tenant per scenario
/// tenant index, one established session per (tenant, device) that appears
/// in the records, and zero-sum masks installed for every round a device
/// will reach.
pub struct ReplayHarness {
    /// The gateway under test.
    pub gateway: Gateway,
    /// `sessions[tenant][device]` → (session id, device-side channel).
    sessions: Vec<Vec<(u64, IotDeviceSession)>>,
    /// Per-device round counter: a device's n-th replayed record is its
    /// round `n` contribution, mirroring how the in-process workloads
    /// number requests.
    next_round: Vec<Vec<u64>>,
    /// Contribution dimension.
    dimension: usize,
    /// Scratch for payload expansion — reused so steady-state encryption
    /// setup does not allocate for samples.
    samples: Vec<f64>,
    /// `device_index[tenant][device_id]` → dense session index (records
    /// may mention sparse device ids; sessions are stored densely).
    device_index: Vec<std::collections::BTreeMap<u64, usize>>,
}

/// How [`ingest`] admits each submission window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One `submit` call per record — the baseline the in-process drivers
    /// use.
    PerRecord,
    /// One `submit_batch` call per (window, shard) group — the replay hot
    /// path.
    BatchedPerShard,
}

/// Ingest pacing knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Admission path.
    pub mode: IngestMode,
    /// Records submitted per window (a window is the unit grouped by shard
    /// in batched mode).
    pub window: usize,
    /// Most records in flight (submitted, not yet drained) before the
    /// driver drains the gateway. Keep below the gateway's
    /// `max_queue_depth` to make backpressure the exception, not the
    /// steady state.
    pub max_in_flight: usize,
}

/// What an ingest run did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Records submitted (accepted by admission).
    pub submitted: u64,
    /// Records terminally rejected by quota/admission (after the one
    /// backpressure retry). Counted, never silently dropped.
    pub quota_rejected: u64,
    /// Drain sweeps the pacing performed.
    pub drains: u64,
    /// Every response the gateway produced, in drain order.
    pub responses: Vec<GatewayResponse>,
}

impl IngestReport {
    /// Responses that carry an endorsement.
    #[must_use]
    pub fn endorsed(&self) -> usize {
        self.responses
            .iter()
            .filter(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. }))
            .count()
    }

    /// The responses as comparable values: `(session_id, tenant, outcome)`
    /// in drain order. Two runs are **bit-identical** iff these are equal —
    /// the outcome includes the full encrypted response ciphertext.
    #[must_use]
    pub fn response_keys(&self) -> Vec<(u64, String, BatchOutcome)> {
        self.responses
            .iter()
            .map(|r| (r.session_id, r.tenant.to_string(), r.outcome.clone()))
            .collect()
    }
}

impl ReplayHarness {
    /// Provisions a gateway for `records`: tenants `0..tenants`, a session
    /// for every (tenant, device) the records mention, and masks for
    /// rounds `0..per-device record count`. Deterministic from `seed` —
    /// two harnesses built from the same arguments serve identical
    /// ciphertexts to identical enclaves.
    ///
    /// # Panics
    /// Panics if provisioning fails (these are experiment harnesses: a
    /// provisioning failure is a bug, not an operational condition).
    #[must_use]
    pub fn build(
        records: &[ReplayRecord],
        tenants: u32,
        shards: usize,
        slots_per_tenant: usize,
        dimension: usize,
        max_queue_depth: usize,
        seed: [u8; 32],
    ) -> ReplayHarness {
        // Per-(tenant, device) record counts decide which sessions exist
        // and how many mask rounds each tenant needs.
        let tenants = tenants.max(1) as usize;
        let mut device_counts: Vec<std::collections::BTreeMap<u64, u64>> =
            vec![std::collections::BTreeMap::new(); tenants];
        for record in records {
            assert!(
                (record.tenant as usize) < tenants,
                "record tenant {} out of range (harness built for {tenants})",
                record.tenant
            );
            *device_counts[record.tenant as usize]
                .entry(record.device)
                .or_insert(0) += 1;
        }

        let mut rng = Drbg::from_material(&[&seed[..], b"replay-harness"].concat());
        let mut avs = AttestationService::new([91u8; 32]);
        let mut tenant_configs = Vec::with_capacity(tenants);
        for t in 0..tenants {
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            tenant_configs.push(TenantConfig::new(
                replay_tenant_name(t as u32),
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            ));
        }
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant,
                shards,
                max_batch: 256,
                max_queue_depth,
                ..GatewayConfig::default()
            },
            tenant_configs,
            &mut avs,
            &mut rng,
        )
        .unwrap();

        let mut sessions = Vec::with_capacity(tenants);
        let mut next_round = Vec::with_capacity(tenants);
        for (t, counts) in device_counts.iter().enumerate() {
            let name = replay_tenant_name(t as u32);
            let approved = gateway.measurement(&name).unwrap();
            let client_ids: Vec<u64> = counts.keys().copied().collect();
            let rounds = counts.values().copied().max().unwrap_or(0);
            let blinding = BlindingService::new([92u8; 32]);
            let mask_rounds: Vec<_> = (0..rounds)
                .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
                .collect();
            let mut tenant_sessions = Vec::with_capacity(client_ids.len());
            for (i, _client_id) in client_ids.iter().enumerate() {
                let (sid, offer) = gateway.open_session(&name).unwrap();
                let (accept, session) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                for round in &mask_rounds {
                    gateway.install_mask(sid, &round[i]).unwrap();
                }
                tenant_sessions.push((sid, session));
            }
            // Device ids are sparse in the records but sessions are dense:
            // map device id → dense index via the sorted key order.
            sessions.push(tenant_sessions);
            next_round.push(vec![0u64; client_ids.len()]);
        }

        // Dense index lookup: rebuild the sorted id lists once.
        let device_index: Vec<std::collections::BTreeMap<u64, usize>> = device_counts
            .iter()
            .map(|counts| counts.keys().enumerate().map(|(i, &id)| (id, i)).collect())
            .collect();

        ReplayHarness {
            gateway,
            sessions,
            next_round,
            dimension,
            samples: Vec::new(),
            device_index,
        }
    }

    /// Encrypts `record` as its device's next-round contribution, returning
    /// the `(session_id, ciphertext)` pair the submit paths take.
    pub fn encrypt_record(&mut self, record: &ReplayRecord) -> (u64, Vec<u8>) {
        let t = record.tenant as usize;
        let d = self.device_index[t][&record.device];
        let round = self.next_round[t][d];
        self.next_round[t][d] += 1;
        payload_samples(record.seed, self.dimension, &mut self.samples);
        let (sid, session) = &mut self.sessions[t][d];
        let contribution = Contribution {
            app_id: replay_tenant_name(record.tenant),
            client_id: record.device,
            round,
            payload: ContributionPayload::IotReadings {
                samples: self.samples.clone(),
            },
        };
        (
            *sid,
            session.encrypt_request(contribution, PrivateData::None),
        )
    }

    /// Total sessions the harness established.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }
}

/// Replays `records` through the harness's gateway under `config`'s pacing,
/// draining whenever the next window would exceed `max_in_flight` and once
/// more at the end so every response is collected.
///
/// Backpressure is handled by draining and retrying the rejected
/// submission once; a second rejection, or any quota error, is terminal for
/// those records — counted in the report and in the telemetry hub's
/// `glimmer_ingest_records_total{outcome=quota_rejected}` counter. Other
/// gateway errors abort the replay.
pub fn ingest(
    harness: &mut ReplayHarness,
    records: &[ReplayRecord],
    config: &IngestConfig,
) -> Result<IngestReport, GatewayError> {
    let telemetry = harness.gateway.telemetry_handle();
    let window = config.window.max(1);
    let mut report = IngestReport {
        submitted: 0,
        quota_rejected: 0,
        drains: 0,
        responses: Vec::new(),
    };
    let mut in_flight = 0usize;
    // Reused per window; grouping buffers live across windows too so
    // steady-state ingest reuses their capacity.
    let mut encrypted: Vec<(u64, Vec<u8>)> = Vec::with_capacity(window);
    let mut shard_groups: Vec<Vec<(u64, Vec<u8>)>> = (0..harness.gateway.shard_count())
        .map(|_| Vec::new())
        .collect();

    for chunk in records.chunks(window) {
        if in_flight + chunk.len() > config.max_in_flight {
            report.responses.extend(harness.gateway.drain_all()?);
            report.drains += 1;
            in_flight = 0;
        }
        encrypted.clear();
        for record in chunk {
            encrypted.push(harness.encrypt_record(record));
        }
        match config.mode {
            IngestMode::PerRecord => {
                for (sid, ciphertext) in encrypted.drain(..) {
                    // `submit` consumes its ciphertext even on rejection,
                    // so the retry needs a pre-paid clone.
                    let retry = ciphertext.clone();
                    match harness.gateway.submit(sid, ciphertext) {
                        Ok(()) => in_flight += 1,
                        Err(GatewayError::Backpressure { .. }) => {
                            report.responses.extend(harness.gateway.drain_all()?);
                            report.drains += 1;
                            in_flight = 0;
                            match harness.gateway.submit(sid, retry) {
                                Ok(()) => in_flight += 1,
                                Err(err) => reject(&mut report, &telemetry, 1, err)?,
                            }
                        }
                        Err(err) => reject(&mut report, &telemetry, 1, err)?,
                    }
                }
            }
            IngestMode::BatchedPerShard => {
                for group in &mut shard_groups {
                    group.clear();
                }
                for (sid, ciphertext) in encrypted.drain(..) {
                    let shard = harness.gateway.session_shard(sid)?;
                    shard_groups[shard].push((sid, ciphertext));
                }
                for group in &mut shard_groups {
                    if group.is_empty() {
                        continue;
                    }
                    let n = group.len();
                    let retry = group.clone();
                    match harness.gateway.submit_batch(std::mem::take(group)) {
                        Ok(()) => in_flight += n,
                        Err(GatewayError::Backpressure { .. }) => {
                            report.responses.extend(harness.gateway.drain_all()?);
                            report.drains += 1;
                            in_flight = 0;
                            match harness.gateway.submit_batch(retry) {
                                Ok(()) => in_flight += n,
                                Err(err) => reject(&mut report, &telemetry, n as u64, err)?,
                            }
                        }
                        Err(err) => reject(&mut report, &telemetry, n as u64, err)?,
                    }
                }
            }
        }
    }
    report.responses.extend(harness.gateway.drain_all()?);
    report.drains += 1;
    report.submitted = records.len() as u64 - report.quota_rejected;
    Ok(report)
}

/// Terminal-rejection bookkeeping: quota/admission errors are counted (in
/// the report and the telemetry ingest counters); anything else aborts the
/// replay.
fn reject(
    report: &mut IngestReport,
    telemetry: &std::sync::Arc<glimmer_gateway::Telemetry>,
    n: u64,
    err: GatewayError,
) -> Result<(), GatewayError> {
    match err {
        GatewayError::QuotaExceeded { .. } | GatewayError::Backpressure { .. } => {
            report.quota_rejected += n;
            telemetry.record_ingest_quota_rejected(n);
            Ok(())
        }
        other => Err(other),
    }
}
