//! The replay ingest driver: feeds loaded scenario records into the
//! gateway's batched hot path with bounded in-flight admission.
//!
//! This is the third stage of the replay pipeline (generate → load →
//! ingest). A [`ReplayHarness`] provisions the gateway exactly like the
//! in-process [`glimmer_workloads::gateway::GatewayTrafficWorkload`]
//! experiments do — per-tenant enclave pools, attested device sessions,
//! per-round zero-sum masks — and [`ingest`] drives the records through it:
//!
//! * **Bounded in-flight admission**: at most `max_in_flight` requests are
//!   queued before the driver drains, so replay applies backpressure
//!   instead of queueing a multi-hundred-MB scenario into memory.
//! * **Batched per shard**: in [`IngestMode::BatchedPerShard`] each
//!   submission window is grouped by [`Gateway::session_shard`] and lands
//!   as one `submit_batch` call per shard — the PR 3 bulk-producer path.
//! * **Nothing dropped silently**: backpressure is retried after a drain;
//!   terminal quota rejections are counted (and mirrored into the
//!   telemetry hub's ingest counters), never ignored.
//! * **Open-loop tick pacing**: with [`Pacing::TickPaced`] the driver
//!   honors the records' arrival ticks against the harness's injected
//!   [`Clock`] — a window is not submitted before its last record's tick
//!   deadline, and the wait time is spent draining already-queued work
//!   instead of spinning. [`Pacing::Unpaced`] is the closed-loop
//!   full-speed replay the load benchmarks use.
//!
//! At `shards: 1` with the same window/in-flight cadence, the per-record
//! and batched modes produce **bit-identical responses** — the E17
//! integration bar.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{
    Clock, Gateway, GatewayConfig, GatewayError, GatewayResponse, SystemClock, TenantConfig,
};
use glimmer_workloads::replay::{payload_samples, replay_tenant_name, ReplayRecord};
use sgx_sim::AttestationService;
use std::sync::Arc;

/// A gateway provisioned for a replay scenario: one tenant per scenario
/// tenant index, one established session per (tenant, device) that appears
/// in the records, and zero-sum masks installed for every round a device
/// will reach.
pub struct ReplayHarness {
    /// The gateway under test.
    pub gateway: Gateway,
    /// `sessions[tenant][device]` → (session id, device-side channel).
    sessions: Vec<Vec<(u64, IotDeviceSession)>>,
    /// Per-device round counter: a device's n-th replayed record is its
    /// round `n` contribution, mirroring how the in-process workloads
    /// number requests.
    next_round: Vec<Vec<u64>>,
    /// Contribution dimension.
    dimension: usize,
    /// Scratch for payload expansion — reused so steady-state encryption
    /// setup does not allocate for samples.
    samples: Vec<f64>,
    /// `device_index[tenant][device_id]` → dense session index (records
    /// may mention sparse device ids; sessions are stored densely).
    device_index: Vec<std::collections::BTreeMap<u64, usize>>,
    /// The time source [`ingest`] paces against — the same clock injected
    /// into the gateway, so paced replay and telemetry timestamps agree.
    clock: Arc<dyn Clock>,
}

/// How [`ingest`] admits each submission window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestMode {
    /// One `submit` call per record — the baseline the in-process drivers
    /// use.
    PerRecord,
    /// One `submit_batch` call per (window, shard) group — the replay hot
    /// path.
    BatchedPerShard,
}

/// Whether [`ingest`] replays closed-loop at full speed or open-loop on
/// the records' arrival ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Closed loop: submit as fast as admission allows, ignoring ticks.
    Unpaced,
    /// Open loop: a window is held until its last record's arrival tick
    /// deadline (`start + tick * nanos_per_tick` on the harness clock) has
    /// passed. While waiting, the driver drains in-flight work — the wait
    /// is productive, not a spin.
    TickPaced {
        /// Wall-nanoseconds each scenario tick represents.
        nanos_per_tick: u64,
    },
}

/// Ingest pacing knobs.
#[derive(Debug, Clone, Copy)]
pub struct IngestConfig {
    /// Admission path.
    pub mode: IngestMode,
    /// Records submitted per window (a window is the unit grouped by shard
    /// in batched mode).
    pub window: usize,
    /// Most records in flight (submitted, not yet drained) before the
    /// driver drains the gateway. Keep below the gateway's
    /// `max_queue_depth` to make backpressure the exception, not the
    /// steady state.
    pub max_in_flight: usize,
    /// Closed-loop full speed, or open-loop on record arrival ticks.
    pub pacing: Pacing,
}

/// What an ingest run did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Records submitted (accepted by admission).
    pub submitted: u64,
    /// Records terminally rejected by quota/admission (after the one
    /// backpressure retry). Counted, never silently dropped.
    pub quota_rejected: u64,
    /// Drain sweeps the pacing performed.
    pub drains: u64,
    /// Wait iterations spent honoring tick deadlines (always 0 under
    /// [`Pacing::Unpaced`]). Each iteration either drained in-flight work
    /// or yielded the CPU.
    pub paced_waits: u64,
    /// Every response the gateway produced, in drain order.
    pub responses: Vec<GatewayResponse>,
}

impl IngestReport {
    /// Responses that carry an endorsement.
    #[must_use]
    pub fn endorsed(&self) -> usize {
        self.responses
            .iter()
            .filter(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. }))
            .count()
    }

    /// The responses as comparable values: `(session_id, tenant, outcome)`
    /// in drain order. Two runs are **bit-identical** iff these are equal —
    /// the outcome includes the full encrypted response ciphertext.
    #[must_use]
    pub fn response_keys(&self) -> Vec<(u64, String, BatchOutcome)> {
        self.responses
            .iter()
            .map(|r| (r.session_id, r.tenant.to_string(), r.outcome.clone()))
            .collect()
    }
}

impl ReplayHarness {
    /// Provisions a gateway for `records`: tenants `0..tenants`, a session
    /// for every (tenant, device) the records mention, and masks for
    /// rounds `0..per-device record count`. Deterministic from `seed` —
    /// two harnesses built from the same arguments serve identical
    /// ciphertexts to identical enclaves. Uses the production
    /// [`SystemClock`]; [`ReplayHarness::build_with_clock`] injects a
    /// deterministic one.
    ///
    /// # Panics
    /// Panics if provisioning fails (these are experiment harnesses: a
    /// provisioning failure is a bug, not an operational condition).
    #[must_use]
    pub fn build(
        records: &[ReplayRecord],
        tenants: u32,
        shards: usize,
        slots_per_tenant: usize,
        dimension: usize,
        max_queue_depth: usize,
        seed: [u8; 32],
    ) -> ReplayHarness {
        Self::build_with_clock(
            records,
            tenants,
            shards,
            slots_per_tenant,
            dimension,
            max_queue_depth,
            seed,
            Arc::new(SystemClock::new()),
        )
    }

    /// [`ReplayHarness::build`] with an injected [`Clock`]: the gateway and
    /// the tick-paced ingest loop both read time from it, so a
    /// [`glimmer_gateway::ManualClock`] makes open-loop replay fully
    /// deterministic under test.
    ///
    /// # Panics
    /// Panics if provisioning fails (these are experiment harnesses: a
    /// provisioning failure is a bug, not an operational condition).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_clock(
        records: &[ReplayRecord],
        tenants: u32,
        shards: usize,
        slots_per_tenant: usize,
        dimension: usize,
        max_queue_depth: usize,
        seed: [u8; 32],
        clock: Arc<dyn Clock>,
    ) -> ReplayHarness {
        // Per-(tenant, device) record counts decide which sessions exist
        // and how many mask rounds each tenant needs.
        let tenants = tenants.max(1) as usize;
        let mut device_counts: Vec<std::collections::BTreeMap<u64, u64>> =
            vec![std::collections::BTreeMap::new(); tenants];
        for record in records {
            assert!(
                (record.tenant as usize) < tenants,
                "record tenant {} out of range (harness built for {tenants})",
                record.tenant
            );
            *device_counts[record.tenant as usize]
                .entry(record.device)
                .or_insert(0) += 1;
        }

        let mut rng = Drbg::from_material(&[&seed[..], b"replay-harness"].concat());
        let mut avs = AttestationService::new([91u8; 32]);
        let mut tenant_configs = Vec::with_capacity(tenants);
        for t in 0..tenants {
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            tenant_configs.push(TenantConfig::new(
                replay_tenant_name(t as u32),
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            ));
        }
        let gateway = Gateway::with_clock(
            GatewayConfig {
                slots_per_tenant,
                shards,
                max_batch: 256,
                max_queue_depth,
                ..GatewayConfig::default()
            },
            tenant_configs,
            &mut avs,
            &mut rng,
            Arc::clone(&clock),
        )
        .unwrap();

        let mut sessions = Vec::with_capacity(tenants);
        let mut next_round = Vec::with_capacity(tenants);
        for (t, counts) in device_counts.iter().enumerate() {
            let name = replay_tenant_name(t as u32);
            let approved = gateway.measurement(&name).unwrap();
            let client_ids: Vec<u64> = counts.keys().copied().collect();
            let rounds = counts.values().copied().max().unwrap_or(0);
            let blinding = BlindingService::new([92u8; 32]);
            let mask_rounds: Vec<_> = (0..rounds)
                .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
                .collect();
            let mut tenant_sessions = Vec::with_capacity(client_ids.len());
            for (i, _client_id) in client_ids.iter().enumerate() {
                let (sid, offer) = gateway.open_session(&name).unwrap();
                let (accept, session) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                for round in &mask_rounds {
                    gateway.install_mask(sid, &round[i]).unwrap();
                }
                tenant_sessions.push((sid, session));
            }
            // Device ids are sparse in the records but sessions are dense:
            // map device id → dense index via the sorted key order.
            sessions.push(tenant_sessions);
            next_round.push(vec![0u64; client_ids.len()]);
        }

        // Dense index lookup: rebuild the sorted id lists once.
        let device_index: Vec<std::collections::BTreeMap<u64, usize>> = device_counts
            .iter()
            .map(|counts| counts.keys().enumerate().map(|(i, &id)| (id, i)).collect())
            .collect();

        ReplayHarness {
            gateway,
            sessions,
            next_round,
            dimension,
            samples: Vec::new(),
            device_index,
            clock,
        }
    }

    /// Encrypts `record` as its device's next-round contribution, returning
    /// the `(session_id, ciphertext)` pair the submit paths take.
    pub fn encrypt_record(&mut self, record: &ReplayRecord) -> (u64, Vec<u8>) {
        let t = record.tenant as usize;
        let d = self.device_index[t][&record.device];
        let round = self.next_round[t][d];
        self.next_round[t][d] += 1;
        payload_samples(record.seed, self.dimension, &mut self.samples);
        let (sid, session) = &mut self.sessions[t][d];
        let contribution = Contribution {
            app_id: replay_tenant_name(record.tenant),
            client_id: record.device,
            round,
            payload: ContributionPayload::IotReadings {
                samples: self.samples.clone(),
            },
        };
        (
            *sid,
            session.encrypt_request(contribution, PrivateData::None),
        )
    }

    /// Total sessions the harness established.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.iter().map(Vec::len).sum()
    }
}

/// Replays `records` through the harness's gateway under `config`'s pacing,
/// draining whenever the next window would exceed `max_in_flight` and once
/// more at the end so every response is collected.
///
/// Under [`Pacing::TickPaced`] each window additionally waits for its last
/// record's arrival-tick deadline on the harness clock before submitting
/// (ticks are non-decreasing within a scenario, so the window's last record
/// is its latest arrival). The wait drains in-flight work when there is
/// any, and yields the CPU otherwise; every iteration is counted in
/// [`IngestReport::paced_waits`].
///
/// Backpressure is handled by draining and retrying the rejected
/// submission once; a second rejection, or any quota error, is terminal for
/// those records — counted in the report and in the telemetry hub's
/// `glimmer_ingest_records_total{outcome=quota_rejected}` counter. Other
/// gateway errors abort the replay.
pub fn ingest(
    harness: &mut ReplayHarness,
    records: &[ReplayRecord],
    config: &IngestConfig,
) -> Result<IngestReport, GatewayError> {
    let telemetry = harness.gateway.telemetry_handle();
    let clock = Arc::clone(&harness.clock);
    let start_nanos = clock.now_nanos();
    let window = config.window.max(1);
    let mut report = IngestReport {
        submitted: 0,
        quota_rejected: 0,
        drains: 0,
        paced_waits: 0,
        responses: Vec::new(),
    };
    let mut in_flight = 0usize;
    // Reused per window; grouping buffers live across windows too so
    // steady-state ingest reuses their capacity.
    let mut encrypted: Vec<(u64, Vec<u8>)> = Vec::with_capacity(window);
    let mut shard_groups: Vec<Vec<(u64, Vec<u8>)>> = (0..harness.gateway.shard_count())
        .map(|_| Vec::new())
        .collect();

    for chunk in records.chunks(window) {
        if let Pacing::TickPaced { nanos_per_tick } = config.pacing {
            // Ticks are non-decreasing, so the chunk's last record carries
            // its latest arrival deadline.
            let last_tick = chunk.last().map_or(0, |r| r.tick);
            let due = start_nanos.saturating_add(last_tick.saturating_mul(nanos_per_tick));
            while clock.now_nanos() < due {
                report.paced_waits += 1;
                if in_flight > 0 {
                    report.responses.extend(harness.gateway.drain_all()?);
                    report.drains += 1;
                    in_flight = 0;
                } else {
                    std::thread::yield_now();
                }
            }
        }
        if in_flight + chunk.len() > config.max_in_flight {
            report.responses.extend(harness.gateway.drain_all()?);
            report.drains += 1;
            in_flight = 0;
        }
        encrypted.clear();
        for record in chunk {
            encrypted.push(harness.encrypt_record(record));
        }
        match config.mode {
            IngestMode::PerRecord => {
                for (sid, ciphertext) in encrypted.drain(..) {
                    // `submit` consumes its ciphertext even on rejection,
                    // so the retry needs a pre-paid clone.
                    let retry = ciphertext.clone();
                    match harness.gateway.submit(sid, ciphertext) {
                        Ok(()) => in_flight += 1,
                        Err(GatewayError::Backpressure { .. }) => {
                            report.responses.extend(harness.gateway.drain_all()?);
                            report.drains += 1;
                            in_flight = 0;
                            match harness.gateway.submit(sid, retry) {
                                Ok(()) => in_flight += 1,
                                Err(err) => reject(&mut report, &telemetry, 1, err)?,
                            }
                        }
                        Err(err) => reject(&mut report, &telemetry, 1, err)?,
                    }
                }
            }
            IngestMode::BatchedPerShard => {
                for group in &mut shard_groups {
                    group.clear();
                }
                for (sid, ciphertext) in encrypted.drain(..) {
                    let shard = harness.gateway.session_shard(sid)?;
                    shard_groups[shard].push((sid, ciphertext));
                }
                for group in &mut shard_groups {
                    if group.is_empty() {
                        continue;
                    }
                    let n = group.len();
                    let retry = group.clone();
                    match harness.gateway.submit_batch(std::mem::take(group)) {
                        Ok(()) => in_flight += n,
                        Err(GatewayError::Backpressure { .. }) => {
                            report.responses.extend(harness.gateway.drain_all()?);
                            report.drains += 1;
                            in_flight = 0;
                            match harness.gateway.submit_batch(retry) {
                                Ok(()) => in_flight += n,
                                Err(err) => reject(&mut report, &telemetry, n as u64, err)?,
                            }
                        }
                        Err(err) => reject(&mut report, &telemetry, n as u64, err)?,
                    }
                }
            }
        }
    }
    report.responses.extend(harness.gateway.drain_all()?);
    report.drains += 1;
    report.submitted = records.len() as u64 - report.quota_rejected;
    Ok(report)
}

/// Terminal-rejection bookkeeping: quota/admission errors are counted (in
/// the report and the telemetry ingest counters); anything else aborts the
/// replay.
fn reject(
    report: &mut IngestReport,
    telemetry: &std::sync::Arc<glimmer_gateway::Telemetry>,
    n: u64,
    err: GatewayError,
) -> Result<(), GatewayError> {
    match err {
        GatewayError::QuotaExceeded { .. } | GatewayError::Backpressure { .. } => {
            report.quota_rejected += n;
            telemetry.record_ingest_quota_rejected(n);
            Ok(())
        }
        other => Err(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_gateway::ManualClock;
    use glimmer_workloads::replay::{ScenarioMix, ScenarioSpec};
    use std::sync::atomic::{AtomicBool, Ordering};

    const NANOS_PER_TICK: u64 = 1_000;

    fn scenario_records() -> Vec<ReplayRecord> {
        ScenarioSpec {
            tenants: 2,
            devices_per_tenant: 3,
            records: 48,
            mix: ScenarioMix::Steady,
            seed: 7,
        }
        .records_vec()
    }

    fn config(pacing: Pacing) -> IngestConfig {
        IngestConfig {
            mode: IngestMode::BatchedPerShard,
            window: 8,
            max_in_flight: 64,
            pacing,
        }
    }

    #[test]
    fn unpaced_ingest_never_waits() {
        let records = scenario_records();
        let mut harness = ReplayHarness::build(&records, 2, 1, 2, 4, 512, [7u8; 32]);
        let report = ingest(&mut harness, &records, &config(Pacing::Unpaced)).unwrap();
        assert_eq!(report.paced_waits, 0);
        assert_eq!(report.quota_rejected, 0);
        assert_eq!(report.endorsed(), records.len());
    }

    #[test]
    fn tick_paced_ingest_honors_deadlines_on_a_manual_clock() {
        let records = scenario_records();
        let last_tick = records.last().unwrap().tick;
        assert!(
            last_tick > 0,
            "Steady mix should spread arrivals over ticks"
        );

        // Closed-loop baseline for the serving results.
        let mut unpaced = ReplayHarness::build(&records, 2, 1, 2, 4, 512, [7u8; 32]);
        let baseline = ingest(&mut unpaced, &records, &config(Pacing::Unpaced)).unwrap();

        // Open loop against a manual clock: ingest runs on a scoped thread
        // while this thread plays time in sub-tick steps. The replay cannot
        // finish before the clock has crossed the last record's deadline,
        // so a completed run *proves* every deadline was honored.
        let clock = Arc::new(ManualClock::new());
        let mut paced = ReplayHarness::build_with_clock(
            &records,
            2,
            1,
            2,
            4,
            512,
            [7u8; 32],
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let cfg = config(Pacing::TickPaced {
            nanos_per_tick: NANOS_PER_TICK,
        });
        let done = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let report = ingest(&mut paced, &records, &cfg).unwrap();
                done.store(true, Ordering::SeqCst);
                report
            });
            while !done.load(Ordering::SeqCst) {
                clock.advance_nanos(NANOS_PER_TICK / 4);
                std::thread::yield_now();
            }
            worker.join().unwrap()
        });

        assert!(report.paced_waits > 0, "open-loop replay never waited");
        assert!(
            clock.now_nanos() >= last_tick * NANOS_PER_TICK,
            "replay finished at {} ns, before the last deadline {} ns",
            clock.now_nanos(),
            last_tick * NANOS_PER_TICK
        );
        // Pacing changes *when* work is submitted, never what it computes.
        assert_eq!(report.endorsed(), baseline.endorsed());
        assert_eq!(report.quota_rejected, baseline.quota_rejected);
        assert_eq!(report.submitted, baseline.submitted);
    }
}
