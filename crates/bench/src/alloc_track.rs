//! A counting global allocator, so experiments can report
//! **allocations/request** as a first-class metric (E13).
//!
//! The counters are always compiled (and always readable), but the
//! allocator itself is only installed as `#[global_allocator]` when the
//! crate is built with the `count-allocs` feature:
//!
//! ```text
//! cargo run --release -p glimmer_bench --features count-allocs \
//!     --bin e13_batched_hot_path -- --smoke
//! ```
//!
//! Without the feature the counters simply stay at zero and
//! [`counting_enabled`] returns `false`, which is how E13 decides whether
//! its allocation columns (and the test bar on them) are meaningful.
//! Counting is intentionally cheap — two relaxed atomic adds per
//! allocation — but still perturbs timing, which is why it is opt-in
//! rather than always on.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// Whether the counting allocator is installed in this build
/// (`count-allocs` feature).
#[must_use]
pub fn counting_enabled() -> bool {
    cfg!(feature = "count-allocs")
}

/// Heap allocations observed since process start (`realloc` counts as one).
/// Always zero unless [`counting_enabled`].
#[must_use]
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested from the allocator since process start. Always
/// zero unless [`counting_enabled`].
#[must_use]
pub fn allocated_bytes() -> u64 {
    ALLOCATED_BYTES.load(Ordering::Relaxed)
}

/// Allocation counters captured at one instant; subtract two snapshots to
/// get the cost of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations at snapshot time.
    pub allocations: u64,
    /// Bytes at snapshot time.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Captures the current counters.
    #[must_use]
    pub fn now() -> Self {
        AllocSnapshot {
            allocations: allocations(),
            bytes: allocated_bytes(),
        }
    }

    /// Allocations that happened after `earlier`.
    #[must_use]
    pub fn allocations_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.allocations.saturating_sub(earlier.allocations)
    }

    /// Bytes allocated after `earlier`.
    #[must_use]
    pub fn bytes_since(&self, earlier: &AllocSnapshot) -> u64 {
        self.bytes.saturating_sub(earlier.bytes)
    }
}

#[cfg(feature = "count-allocs")]
mod install {
    use super::{ALLOCATED_BYTES, ALLOCATIONS};
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::Ordering;

    /// Delegates every call to the [`System`] allocator, counting
    /// allocations and requested bytes on the way through. Deallocations
    /// are not tracked: the metric of interest is allocator *pressure*
    /// (calls into the allocator per request), not live-heap size.
    pub struct CountingAllocator;

    #[allow(unsafe_code)] // GlobalAlloc is an unsafe trait; pure delegation.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

#[cfg(feature = "count-allocs")]
pub use install::CountingAllocator;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_reflect_the_build_mode() {
        let before = AllocSnapshot::now();
        let grown: Vec<u8> = (0..4096).map(|i| i as u8).collect();
        assert_eq!(grown.len(), 4096);
        let after = AllocSnapshot::now();
        if counting_enabled() {
            assert!(after.allocations_since(&before) >= 1);
            assert!(after.bytes_since(&before) >= 4096);
        } else {
            assert_eq!(allocations(), 0);
            assert_eq!(allocated_bytes(), 0);
            assert_eq!(after.allocations_since(&before), 0);
        }
    }
}
