//! The E1–E16 experiment implementations.
//!
//! Every experiment is a pure function of its configuration and seed, so the
//! binaries, the Criterion benches, and the integration tests can all run the
//! same code at different scales.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::{GlimmerClient, GlimmerDescriptor};
use glimmer_core::policy::{check_verifiability, PolicyLimits, TcbReport};
use glimmer_core::protocol::{Contribution, ContributionPayload, PrivateData, ProcessResponse};
use glimmer_core::remote::{IotDeviceSession, RemoteGlimmerHost};
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_core::validation::{BotDetectorSpec, PredicateSpec, ValidationPredicate};
use glimmer_crypto::dh::DhGroup;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::SigningKey;
use glimmer_federated::aggregation::aggregate_mean;
use glimmer_federated::attacks::{apply_poison, PoisonStrategy};
use glimmer_federated::fixed::{decode_weights, encode_weights};
use glimmer_federated::inversion::invert_membership;
use glimmer_federated::metrics::{evaluate, ModelQuality};
use glimmer_federated::trainer::train_local_model;
use glimmer_federated::{GlobalModel, LocalModel};
use glimmer_services::botdetect::BotDetectionService;
use glimmer_services::keyboard::{KeyboardService, KeyboardServiceConfig};
use glimmer_services::ServiceError;
use glimmer_wire::Encoder;
use glimmer_workloads::adversary::{AdversaryMix, ClientRole};
use glimmer_workloads::botsignals::{BotSignalWorkload, SessionKind};
use glimmer_workloads::keyboard::{KeyboardWorkload, KeyboardWorkloadConfig};
use sgx_sim::{AttestationService, CostModel, PlatformConfig};
use std::collections::HashSet;
use std::time::Instant;

/// Poisoning strategies named independently of the schema (the concrete slot
/// is resolved against the workload's trending bigram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// The paper's out-of-range "538" contribution (Figure 1d).
    OutOfRange538,
    /// Maximum-legal-value bias that passes a plain range check.
    InRangeBias,
    /// Fully fabricated constant model.
    Fabricated,
    /// All weights scaled by 10x.
    Scaled10x,
}

impl AttackKind {
    /// All attacks swept by E3/E4/E6.
    #[must_use]
    pub fn all() -> [AttackKind; 4] {
        [
            AttackKind::OutOfRange538,
            AttackKind::InRangeBias,
            AttackKind::Fabricated,
            AttackKind::Scaled10x,
        ]
    }

    /// Short label for table output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::OutOfRange538 => "out-of-range-538",
            AttackKind::InRangeBias => "in-range-bias",
            AttackKind::Fabricated => "fabricated",
            AttackKind::Scaled10x => "scaled-10x",
        }
    }

    fn to_strategy(self, target_slot: usize) -> PoisonStrategy {
        match self {
            AttackKind::OutOfRange538 => PoisonStrategy::OutOfRange {
                slot: target_slot,
                value: 538.0,
            },
            AttackKind::InRangeBias => PoisonStrategy::InRangeBias { slot: target_slot },
            AttackKind::Fabricated => PoisonStrategy::Fabricated { value: 0.9 },
            AttackKind::Scaled10x => PoisonStrategy::Scaled { factor: 10.0 },
        }
    }
}

/// Which validation predicates the Glimmer runs (E6 spectrum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredicateLevel {
    /// Range check only.
    RangeOnly,
    /// Range + plausibility + keyboard corroboration (the default Glimmer).
    Corroborate,
    /// Range + full retraining check.
    Retrain,
}

impl PredicateLevel {
    /// All levels.
    #[must_use]
    pub fn all() -> [PredicateLevel; 3] {
        [
            PredicateLevel::RangeOnly,
            PredicateLevel::Corroborate,
            PredicateLevel::Retrain,
        ]
    }

    /// Table label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PredicateLevel::RangeOnly => "range-only",
            PredicateLevel::Corroborate => "corroborate",
            PredicateLevel::Retrain => "retrain",
        }
    }

    fn descriptor(self) -> GlimmerDescriptor {
        match self {
            PredicateLevel::RangeOnly => GlimmerDescriptor::keyboard_range_only(),
            PredicateLevel::Corroborate => GlimmerDescriptor::keyboard_default(),
            PredicateLevel::Retrain => GlimmerDescriptor::keyboard_retrain(),
        }
    }
}

/// Configuration of one keyboard aggregation round experiment.
#[derive(Debug, Clone)]
pub struct KeyboardRoundConfig {
    /// Number of clients.
    pub users: usize,
    /// Fraction of malicious clients.
    pub malicious_fraction: f64,
    /// The attack malicious clients mount (None = all honest).
    pub attack: Option<AttackKind>,
    /// Whether the service requires Glimmer endorsements (protected mode).
    pub protected: bool,
    /// Predicate level used by the Glimmers in protected mode.
    pub predicate_level: PredicateLevel,
    /// Experiment seed.
    pub seed: [u8; 32],
    /// Workload shape.
    pub workload: KeyboardWorkloadConfig,
}

impl Default for KeyboardRoundConfig {
    fn default() -> Self {
        KeyboardRoundConfig {
            users: 32,
            malicious_fraction: 0.0,
            attack: None,
            protected: true,
            predicate_level: PredicateLevel::Corroborate,
            seed: [42u8; 32],
            workload: KeyboardWorkloadConfig {
                users: 32,
                vocab_size: 60,
                sentences_per_user: 20,
                ..KeyboardWorkloadConfig::default()
            },
        }
    }
}

/// Outcome of one keyboard aggregation round.
#[derive(Debug, Clone)]
pub struct KeyboardRoundResult {
    /// Clients in the round.
    pub users: usize,
    /// Malicious clients in the round.
    pub malicious: usize,
    /// Contributions accepted into the aggregate.
    pub accepted: usize,
    /// Contributions rejected (by the Glimmer or the service).
    pub rejected: usize,
    /// Model quality versus the all-honest reference.
    pub quality: ModelQuality,
    /// Whether the aggregated model's top-1 prediction after the trending
    /// word is the trending next word.
    pub trending_top1: bool,
    /// Total simulated enclave cycles across all clients (protected mode).
    pub total_enclave_cycles: u64,
    /// Wall-clock seconds for the whole round.
    pub wall_seconds: f64,
}

/// Runs one keyboard aggregation round (the shared harness behind E1/E3/E4/E6).
#[must_use]
pub fn run_keyboard_round(cfg: &KeyboardRoundConfig) -> KeyboardRoundResult {
    let start = Instant::now();
    let mut workload_cfg = cfg.workload.clone();
    workload_cfg.users = cfg.users;
    let workload = KeyboardWorkload::generate(&workload_cfg, cfg.seed);
    let schema = workload.schema.clone();
    let dimension = schema.dimension();
    let client_ids = workload.client_ids();

    // All-honest reference model for quality comparison.
    let honest_locals: Vec<LocalModel> = workload
        .users
        .iter()
        .map(|u| train_local_model(&schema, &u.sentences).unwrap().0)
        .collect();
    let reference = aggregate_mean(&schema, &honest_locals).unwrap();

    // Adversary assignment.
    let trending_slot = schema
        .slot_of(workload.trending_bigram.0, workload.trending_bigram.1)
        .unwrap_or(0);
    let mix = match cfg.attack {
        Some(kind) => AdversaryMix::assign(
            cfg.users,
            cfg.malicious_fraction,
            &kind.to_strategy(trending_slot),
            cfg.seed,
        ),
        None => AdversaryMix::all_honest(cfg.users),
    };

    // Service setup.
    let mut rng = Drbg::from_seed(cfg.seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let service_config = KeyboardServiceConfig {
        require_endorsements: cfg.protected,
        require_blinding: true,
        ..KeyboardServiceConfig::default()
    };
    let mut service =
        KeyboardService::new(service_config, schema.clone(), Some(material.verifier()));
    let blinding = BlindingService::new([7u8; 32]);
    let masks = blinding.zero_sum_masks(0, &client_ids, dimension);

    let mut rejected = 0usize;
    let mut total_enclave_cycles = 0u64;
    let descriptor = cfg.predicate_level.descriptor();

    for (i, user) in workload.users.iter().enumerate() {
        let honest = &honest_locals[i];
        let submitted = match mix.role(i) {
            ClientRole::Honest => honest.clone(),
            ClientRole::Malicious(strategy) => apply_poison(&schema, honest, strategy),
        };
        let contribution = Contribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id: user.client_id,
            round: 0,
            payload: ContributionPayload::ModelUpdate {
                weights: submitted.weights.clone(),
            },
        };

        if cfg.protected {
            // Every client runs its own Glimmer.
            let mut client_rng = rng.fork(&format!("client-{i}"));
            let mut glimmer = GlimmerClient::new(
                descriptor.clone(),
                PlatformConfig::default(),
                &mut client_rng,
            )
            .unwrap();
            glimmer
                .install_service_key(&material.secret_bytes())
                .unwrap();
            glimmer.install_mask(&masks[i]).unwrap();
            let private = PrivateData::KeyboardLog {
                sentences: user.sentences.clone(),
            };
            match glimmer.process(contribution, private) {
                Ok(ProcessResponse::Endorsed(endorsed)) => {
                    if service.submit(&endorsed).is_err() {
                        rejected += 1;
                    }
                }
                Ok(ProcessResponse::Rejected { .. }) | Err(_) => rejected += 1,
            }
            total_enclave_cycles += glimmer.cost_report().total_cycles;
        } else {
            // Unprotected baseline: the client blinds and submits directly;
            // nothing checks the plaintext weights (Figure 1c/1d).
            let blinded = masks[i].blind(&encode_weights(&submitted.weights));
            let mut enc = Encoder::new();
            enc.put_u64_vec(&blinded);
            let endorsed = glimmer_core::protocol::EndorsedContribution {
                app_id: "nextwordpredictive.com".to_string(),
                client_id: user.client_id,
                round: 0,
                released_payload: enc.into_bytes(),
                blinded: true,
                signature: Vec::new(),
            };
            if service.submit(&endorsed).is_err() {
                rejected += 1;
            }
        }
    }

    // NOTE: with zero-sum blinding, rejected contributions leave the mask sum
    // non-zero; the honest deployment re-keys the round. The experiments
    // account for this by re-running the blinding with only accepted clients
    // when any rejection occurred, which models the second pass the paper's
    // design implies (the service tells the blinding service who is in the
    // round). For simplicity we approximate by correcting the aggregate:
    // the service finalizes whatever it accepted.
    let outcome = match service.finalize_round() {
        Ok(o) => o,
        Err(ServiceError::EmptyRound) => glimmer_services::keyboard::RoundOutcome {
            round: 0,
            accepted: 0,
            rejected,
            model: GlobalModel::empty(&schema),
        },
        Err(e) => panic!("unexpected service error: {e}"),
    };

    // If some masks did not cancel (rejections), recompute exactly with the
    // accepted subset for a faithful model: re-run a clean aggregation over
    // accepted clients only.
    let model = if rejected > 0 && outcome.accepted > 0 {
        let accepted_indices: Vec<usize> = (0..cfg.users)
            .filter(|i| {
                // A client is "accepted" if honest or its attack is within
                // range of what the configured predicate level misses; rather
                // than re-deriving, rebuild from the honest submissions that
                // were actually accepted: honest clients always pass, so use
                // them; malicious accepted ones are approximated by their
                // poisoned models passing the same predicate locally.
                let predicate: Vec<Box<dyn ValidationPredicate>> = descriptor
                    .predicate_specs
                    .iter()
                    .map(PredicateSpec::instantiate)
                    .collect();
                let honest = &honest_locals[*i];
                let submitted = match mix.role(*i) {
                    ClientRole::Honest => honest.clone(),
                    ClientRole::Malicious(strategy) => apply_poison(&schema, honest, strategy),
                };
                let contribution = Contribution {
                    app_id: "nextwordpredictive.com".to_string(),
                    client_id: *i as u64,
                    round: 0,
                    payload: ContributionPayload::ModelUpdate {
                        weights: submitted.weights,
                    },
                };
                let private = PrivateData::KeyboardLog {
                    sentences: workload.users[*i].sentences.clone(),
                };
                !cfg.protected
                    || predicate
                        .iter()
                        .all(|p| p.validate(&contribution, &private).passed)
            })
            .collect();
        let accepted_models: Vec<LocalModel> = accepted_indices
            .iter()
            .map(|&i| match mix.role(i) {
                ClientRole::Honest => honest_locals[i].clone(),
                ClientRole::Malicious(strategy) => {
                    apply_poison(&schema, &honest_locals[i], strategy)
                }
            })
            .collect();
        if accepted_models.is_empty() {
            GlobalModel::empty(&schema)
        } else {
            aggregate_mean(&schema, &accepted_models).unwrap()
        }
    } else {
        outcome.model.clone()
    };

    let quality = evaluate(&schema, &model, &workload.test_sentences, Some(&reference));
    let trending_top1 = model
        .predict_next(&schema, workload.trending_bigram.0, 1)
        .first()
        .map(|(id, _)| *id == workload.trending_bigram.1)
        .unwrap_or(false);

    KeyboardRoundResult {
        users: cfg.users,
        malicious: mix.malicious_count(),
        accepted: outcome.accepted,
        rejected,
        quality,
        trending_top1,
        total_enclave_cycles,
        wall_seconds: start.elapsed().as_secs_f64(),
    }
}

// ---------------------------------------------------------------------------
// E1: federated next-word prediction (Figure 1a/1b)
// ---------------------------------------------------------------------------

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Number of users.
    pub users: usize,
    /// Top-1 accuracy of the federated model on trending test sentences.
    pub federated_top1: f64,
    /// Top-3 accuracy of the federated model.
    pub federated_top3: f64,
    /// Top-1 accuracy of a single (non-trending) user's local model.
    pub single_user_top1: f64,
    /// Whether the federated model predicts the trending phrase.
    pub federated_trending: bool,
    /// Whether the single user's model predicts it.
    pub single_user_trending: bool,
}

/// Runs E1 for each user count.
#[must_use]
pub fn e1_federated_prediction(user_counts: &[usize], seed: [u8; 32]) -> Vec<E1Row> {
    user_counts
        .iter()
        .map(|&users| {
            let cfg = KeyboardWorkloadConfig {
                users,
                vocab_size: 60,
                sentences_per_user: 20,
                ..KeyboardWorkloadConfig::default()
            };
            let workload = KeyboardWorkload::generate(&cfg, seed);
            let schema = &workload.schema;
            let locals: Vec<LocalModel> = workload
                .users
                .iter()
                .map(|u| train_local_model(schema, &u.sentences).unwrap().0)
                .collect();
            let federated = aggregate_mean(schema, &locals).unwrap();
            let fed_quality = evaluate(schema, &federated, &workload.test_sentences, None);

            let single_idx = workload
                .users
                .iter()
                .position(|u| !u.typed_trending)
                .unwrap_or(0);
            let single = aggregate_mean(schema, &locals[single_idx..=single_idx]).unwrap();
            let single_quality = evaluate(schema, &single, &workload.test_sentences, None);

            let trending = |m: &GlobalModel| {
                m.predict_next(schema, workload.trending_bigram.0, 1)
                    .first()
                    .map(|(id, _)| *id == workload.trending_bigram.1)
                    .unwrap_or(false)
            };
            E1Row {
                users,
                federated_top1: fed_quality.top1_accuracy,
                federated_top3: fed_quality.top3_accuracy,
                single_user_top1: single_quality.top1_accuracy,
                federated_trending: trending(&federated),
                single_user_trending: trending(&single),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// E2: secure aggregation exactness (Figure 1c)
// ---------------------------------------------------------------------------

/// One row of the E2 table.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Number of clients.
    pub clients: usize,
    /// Model dimension.
    pub dimension: usize,
    /// Maximum absolute error between the blinded-sum mean and the plaintext
    /// mean.
    pub max_abs_error: f64,
    /// Fraction of individual blinded values that differ from the raw values
    /// (indistinguishability proxy; ~1.0 means every coordinate is masked).
    pub masked_fraction: f64,
}

/// Runs E2 over a grid of client counts and dimensions.
#[must_use]
pub fn e2_secure_aggregation(
    clients: &[usize],
    dimensions: &[usize],
    seed: [u8; 32],
) -> Vec<E2Row> {
    let mut rng = Drbg::from_seed(seed);
    let mut rows = Vec::new();
    for &n in clients {
        for &dim in dimensions {
            let ids: Vec<u64> = (0..n as u64).collect();
            let masks = BlindingService::new([9u8; 32]).zero_sum_masks(1, &ids, dim);
            let raw: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..dim).map(|_| rng.next_f64()).collect())
                .collect();
            let encoded: Vec<Vec<u64>> = raw.iter().map(|w| encode_weights(w)).collect();
            let blinded: Vec<Vec<u64>> = encoded
                .iter()
                .zip(&masks)
                .map(|(e, m)| m.blind(e))
                .collect();

            let mut masked = 0usize;
            for (b, e) in blinded.iter().zip(&encoded) {
                masked += b.iter().zip(e.iter()).filter(|(x, y)| x != y).count();
            }
            let masked_fraction = masked as f64 / (n * dim) as f64;

            let mut sum = vec![0u64; dim];
            for b in &blinded {
                sum = glimmer_federated::fixed::add_vectors(&sum, b);
            }
            let blinded_mean: Vec<f64> = decode_weights(&sum)
                .into_iter()
                .map(|v| v / n as f64)
                .collect();
            let plain_mean: Vec<f64> = (0..dim)
                .map(|j| raw.iter().map(|r| r[j]).sum::<f64>() / n as f64)
                .collect();
            let max_abs_error = blinded_mean
                .iter()
                .zip(&plain_mean)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            rows.push(E2Row {
                clients: n,
                dimension: dim,
                max_abs_error,
                masked_fraction,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E3 / E4: poisoning attack and Glimmer defense (Figure 1d vs Figures 2-3)
// ---------------------------------------------------------------------------

/// One row of the E3/E4 tables.
#[derive(Debug, Clone)]
pub struct PoisoningRow {
    /// Attack mounted by malicious clients.
    pub attack: &'static str,
    /// Fraction of malicious clients.
    pub malicious_fraction: f64,
    /// Whether the service was protected by Glimmers.
    pub protected: bool,
    /// Contributions rejected.
    pub rejected: usize,
    /// Top-1 accuracy of the resulting model on trending test sentences.
    pub top1_accuracy: f64,
    /// L2 distance from the all-honest reference model.
    pub l2_from_honest: f64,
    /// Fraction of aggregated parameters outside `[0, 1]`.
    pub out_of_range_fraction: f64,
    /// Whether the trending phrase is still the top-1 prediction.
    pub trending_top1: bool,
}

/// Runs the poisoning sweep (E3: `protected = false`, E4: `protected = true`).
#[must_use]
pub fn e3_e4_poisoning_sweep(
    users: usize,
    fractions: &[f64],
    attacks: &[AttackKind],
    protected: bool,
    seed: [u8; 32],
) -> Vec<PoisoningRow> {
    let mut rows = Vec::new();
    for &attack in attacks {
        for &fraction in fractions {
            let cfg = KeyboardRoundConfig {
                users,
                malicious_fraction: fraction,
                attack: Some(attack),
                protected,
                predicate_level: PredicateLevel::Corroborate,
                seed,
                workload: KeyboardWorkloadConfig {
                    users,
                    vocab_size: 60,
                    sentences_per_user: 20,
                    ..KeyboardWorkloadConfig::default()
                },
            };
            let result = run_keyboard_round(&cfg);
            rows.push(PoisoningRow {
                attack: attack.label(),
                malicious_fraction: fraction,
                protected,
                rejected: result.rejected,
                top1_accuracy: result.quality.top1_accuracy,
                l2_from_honest: result.quality.l2_to_reference.unwrap_or(0.0),
                out_of_range_fraction: result.quality.out_of_range_fraction,
                trending_top1: result.trending_top1,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E5: Glimmer overhead (Section 3 design)
// ---------------------------------------------------------------------------

/// One row of the E5 table.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Model dimension of the contribution.
    pub dimension: usize,
    /// Wall-clock microseconds for one protected contribution (validate +
    /// blind + sign inside the enclave, verify at the service).
    pub wall_micros_per_contribution: f64,
    /// Simulated enclave cycles charged per contribution.
    pub enclave_cycles_per_contribution: u64,
    /// ECALLs per contribution in the single-enclave design.
    pub ecalls_single: u64,
    /// Estimated cycles per contribution if Validation/Blinding/Signing ran
    /// in three separate enclaves with secured channels (Section 3's
    /// decomposition ablation).
    pub estimated_cycles_split: u64,
}

/// Runs E5 across contribution dimensions.
#[must_use]
pub fn e5_overhead(dimensions: &[usize], repetitions: usize, seed: [u8; 32]) -> Vec<E5Row> {
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let cost_model = CostModel::default();
    let mut rows = Vec::new();
    for &dim in dimensions {
        let mut glimmer = GlimmerClient::new(
            GlimmerDescriptor::keyboard_range_only(),
            PlatformConfig::default(),
            &mut rng,
        )
        .unwrap();
        glimmer
            .install_service_key(&material.secret_bytes())
            .unwrap();
        let masks = BlindingService::new([5u8; 32]).zero_sum_masks(0, &[0, 1], dim);
        glimmer.install_mask(&masks[0]).unwrap();
        let baseline = glimmer.cost_report();

        let weights: Vec<f64> = (0..dim).map(|i| (i % 10) as f64 / 10.0).collect();
        let start = Instant::now();
        let mut accepted = 0usize;
        for _ in 0..repetitions.max(1) {
            let contribution = Contribution {
                app_id: "nextwordpredictive.com".to_string(),
                client_id: 0,
                round: 0,
                payload: ContributionPayload::ModelUpdate {
                    weights: weights.clone(),
                },
            };
            match glimmer.process(contribution, PrivateData::None).unwrap() {
                ProcessResponse::Endorsed(endorsed) => {
                    material.verifier().verify(&endorsed).unwrap();
                    accepted += 1;
                }
                ProcessResponse::Rejected { .. } => {}
            }
        }
        assert_eq!(accepted, repetitions.max(1));
        let elapsed = start.elapsed().as_secs_f64();
        let after = glimmer.cost_report();
        let reps = repetitions.max(1) as u64;
        let cycles = (after.total_cycles - baseline.total_cycles) / reps;
        let ecalls = (after.ecalls - baseline.ecalls) / reps;
        // Split-enclave estimate: three enclaves means three ECALL round
        // trips per contribution plus two inter-component hand-offs crossing
        // the boundary (each a copy of the contribution both ways).
        let extra_transitions = 2 * (cost_model.ecall_cycles + cost_model.eexit_cycles);
        let extra_copies = 2 * (dim as u64 * 8 * 2) * cost_model.boundary_byte_cycles;
        let estimated_cycles_split = cycles + extra_transitions + extra_copies;
        rows.push(E5Row {
            dimension: dim,
            wall_micros_per_contribution: elapsed * 1e6 / reps as f64,
            enclave_cycles_per_contribution: cycles,
            ecalls_single: ecalls,
            estimated_cycles_split,
        });
    }
    rows
}

// ---------------------------------------------------------------------------
// E6: validation predicate spectrum (Section 2 / Section 3)
// ---------------------------------------------------------------------------

/// One row of the E6 table.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Predicate level.
    pub level: &'static str,
    /// Attack evaluated.
    pub attack: &'static str,
    /// Fraction of malicious contributions that obtained an endorsement.
    pub attack_success_rate: f64,
    /// Fraction of honest contributions that obtained an endorsement.
    pub honest_acceptance_rate: f64,
    /// Mean predicate cost estimate (simulated cycles).
    pub mean_predicate_cost: f64,
}

/// Runs E6: for each predicate level and attack, what fraction of malicious
/// contributions slip through, and what does validation cost?
#[must_use]
pub fn e6_validation_spectrum(users: usize, seed: [u8; 32]) -> Vec<E6Row> {
    let workload_cfg = KeyboardWorkloadConfig {
        users,
        vocab_size: 60,
        sentences_per_user: 20,
        // Track every vocabulary word so the retraining check sees the same
        // parameter space the client trained against.
        schema_words: 70,
        ..KeyboardWorkloadConfig::default()
    };
    let workload = KeyboardWorkload::generate(&workload_cfg, seed);
    let schema = &workload.schema;
    let trending_slot = schema
        .slot_of(workload.trending_bigram.0, workload.trending_bigram.1)
        .unwrap_or(0);

    let locals: Vec<LocalModel> = workload
        .users
        .iter()
        .map(|u| train_local_model(schema, &u.sentences).unwrap().0)
        .collect();

    let mut rows = Vec::new();
    for level in PredicateLevel::all() {
        let descriptor = level.descriptor();
        let predicates: Vec<Box<dyn ValidationPredicate>> = descriptor
            .predicate_specs
            .iter()
            .map(PredicateSpec::instantiate)
            .collect();
        let validate = |contribution: &Contribution, private: &PrivateData| {
            predicates
                .iter()
                .all(|p| p.validate(contribution, private).passed)
        };
        let cost = |contribution: &Contribution, private: &PrivateData| -> u64 {
            predicates
                .iter()
                .map(|p| p.cost_estimate(contribution, private))
                .sum()
        };

        for attack in AttackKind::all() {
            let strategy = attack.to_strategy(trending_slot);
            let mut malicious_passed = 0usize;
            let mut honest_passed = 0usize;
            let mut total_cost = 0u64;
            for (i, user) in workload.users.iter().enumerate() {
                let private = PrivateData::KeyboardLog {
                    sentences: user.sentences.clone(),
                };
                let honest_contribution = Contribution {
                    app_id: "nextwordpredictive.com".to_string(),
                    client_id: user.client_id,
                    round: 0,
                    payload: ContributionPayload::ModelUpdate {
                        weights: locals[i].weights.clone(),
                    },
                };
                let poisoned = apply_poison(schema, &locals[i], &strategy);
                let malicious_contribution = Contribution {
                    payload: ContributionPayload::ModelUpdate {
                        weights: poisoned.weights,
                    },
                    ..honest_contribution.clone()
                };
                if validate(&honest_contribution, &private) {
                    honest_passed += 1;
                }
                if validate(&malicious_contribution, &private) {
                    malicious_passed += 1;
                }
                total_cost += cost(&malicious_contribution, &private);
            }
            rows.push(E6Row {
                level: level.label(),
                attack: attack.label(),
                attack_success_rate: malicious_passed as f64 / users as f64,
                honest_acceptance_rate: honest_passed as f64 / users as f64,
                mean_predicate_cost: total_cost as f64 / users as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// E7: bot detection with validation confidentiality (Section 4.1)
// ---------------------------------------------------------------------------

/// Result of the E7 experiment.
#[derive(Debug, Clone)]
pub struct E7Result {
    /// Sessions evaluated.
    pub sessions: usize,
    /// Ground-truth bots.
    pub bots: usize,
    /// Accuracy of the Glimmer-hosted detector (1 bit per session leaves the
    /// client).
    pub glimmer_accuracy: f64,
    /// Accuracy of the baseline that uploads raw signals to the service.
    pub raw_upload_accuracy: f64,
    /// Bytes per session that leave the client in the Glimmer design (frame
    /// size).
    pub glimmer_bytes_per_session: usize,
    /// Bytes per session that leave the client in the raw-upload baseline.
    pub raw_bytes_per_session: usize,
    /// Frames the auditor rejected when the enclave was pushed past its
    /// verdict-bit budget.
    pub auditor_rejections: u64,
    /// The covert-channel capacity bound (bits) enforced for the session.
    pub capacity_bound_bits: u64,
}

/// Runs E7.
#[must_use]
pub fn e7_bot_detection(sessions: usize, bot_fraction: f64, seed: [u8; 32]) -> E7Result {
    let workload = BotSignalWorkload::generate(sessions, bot_fraction, seed);
    let mut rng = Drbg::from_seed(seed);

    // Service setup: identity key, secret detector, approved Glimmer.
    let service_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
    let vk_bytes = service_key.verifying_key().to_bytes();
    let budget = sessions as u64 + 2;
    let descriptor = GlimmerDescriptor::bot_detection_default(vk_bytes, budget);
    let approved = descriptor.measurement();
    let mut service = BotDetectionService::new(
        BotDetectorSpec::example(),
        service_key,
        approved,
        rng.fork("service"),
    );
    let mut avs = AttestationService::new([17u8; 32]);

    // Client setup: one Glimmer handles the whole workload.
    let mut client = GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
    client.provision_platform(&mut avs);
    let offer = client.start_channel().unwrap();
    let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
    client.complete_channel(&accept).unwrap();
    let encrypted = service.encrypted_detector(&session);
    client.install_encrypted_predicate(&encrypted).unwrap();

    let mut glimmer_correct = 0usize;
    let mut raw_correct = 0usize;
    let mut glimmer_bytes = 0usize;
    let mut raw_bytes = 0usize;
    for s in &workload.sessions {
        let challenge = service.issue_challenge(&mut session);
        let frame = client
            .confidential_check(
                challenge,
                PrivateData::BotSignals {
                    signals: s.signals.clone(),
                },
            )
            .unwrap();
        glimmer_bytes += frame.wire_len();
        let verdict = service.accept_verdict(&mut session, &frame).unwrap();
        let truth_human = s.kind == SessionKind::Human;
        if verdict == truth_human {
            glimmer_correct += 1;
        }
        // Raw-upload baseline: all signals plus private context leave the client.
        raw_bytes += s.private_context_bytes + s.signals.len() * 16;
        if service.classify_raw(&s.signals) == truth_human {
            raw_correct += 1;
        }
    }

    // Push past the budget to demonstrate the auditor's hard bound.
    let mut auditor_rejections = 0u64;
    for _ in 0..3 {
        let challenge = service.issue_challenge(&mut session);
        match client.confidential_check(
            challenge,
            PrivateData::BotSignals {
                signals: workload
                    .sessions
                    .first()
                    .map(|s| s.signals.clone())
                    .unwrap_or_default(),
            },
        ) {
            Ok(frame) => {
                let _ = service.accept_verdict(&mut session, &frame);
            }
            Err(_) => auditor_rejections += 1,
        }
    }

    E7Result {
        sessions,
        bots: workload.bot_count(),
        glimmer_accuracy: glimmer_correct as f64 / sessions.max(1) as f64,
        raw_upload_accuracy: raw_correct as f64 / sessions.max(1) as f64,
        glimmer_bytes_per_session: glimmer_bytes.checked_div(sessions).unwrap_or(0),
        raw_bytes_per_session: raw_bytes.checked_div(sessions).unwrap_or(0),
        auditor_rejections,
        capacity_bound_bits: budget,
    }
}

// ---------------------------------------------------------------------------
// E8: glimmer-as-a-service for IoT devices (Section 4.2)
// ---------------------------------------------------------------------------

/// Result of the E8 experiment.
#[derive(Debug, Clone)]
pub struct E8Result {
    /// Devices served.
    pub devices: usize,
    /// Contributions endorsed by the remote Glimmer.
    pub endorsed: usize,
    /// Contributions rejected (out-of-range/fabricated readings).
    pub rejected: usize,
    /// Mean wall-clock milliseconds per device for the remote path
    /// (attestation + encrypted round trip).
    pub remote_ms_per_device: f64,
    /// Mean wall-clock milliseconds per contribution for a local Glimmer
    /// (lower bound for comparison).
    pub local_ms_per_contribution: f64,
    /// Total enclave cycles on the remote host.
    pub host_enclave_cycles: u64,
}

/// Runs E8.
#[must_use]
pub fn e8_glimmer_as_a_service(
    devices: usize,
    samples_per_device: usize,
    seed: [u8; 32],
) -> E8Result {
    let mut rng = Drbg::from_seed(seed);
    let mut avs = AttestationService::new([19u8; 32]);
    let workload =
        glimmer_workloads::iot::IotWorkload::generate(devices, samples_per_device, 0.3, seed);

    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut host = RemoteGlimmerHost::new(
        GlimmerDescriptor::iot_default(Vec::new()),
        PlatformConfig::default(),
        &mut rng,
        &mut avs,
    )
    .unwrap();
    host.client_mut()
        .install_service_key(&material.secret_bytes())
        .unwrap();
    let device_ids: Vec<u64> = workload.devices.iter().map(|d| d.device_id).collect();
    let masks = BlindingService::new([23u8; 32]).zero_sum_masks(0, &device_ids, samples_per_device);
    let approved = host.measurement();

    let remote_start = Instant::now();
    let mut endorsed = 0usize;
    let mut rejected = 0usize;
    for (i, device) in workload.devices.iter().enumerate() {
        host.client_mut().install_mask(&masks[i]).unwrap();
        let offer = host.attestation_offer().unwrap();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();
        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: device.device_id,
            round: 0,
            payload: ContributionPayload::IotReadings {
                samples: device.samples.clone(),
            },
        };
        let request = session.encrypt_request(contribution, PrivateData::None);
        let response = session
            .decrypt_response(&host.relay(&request).unwrap())
            .unwrap();
        match response {
            ProcessResponse::Endorsed(e) => {
                material.verifier().verify(&e).unwrap();
                endorsed += 1;
            }
            ProcessResponse::Rejected { .. } => rejected += 1,
        }
    }
    let remote_elapsed = remote_start.elapsed().as_secs_f64();

    // Local-Glimmer comparison point: one contribution through a local enclave.
    let mut local = GlimmerClient::new(
        GlimmerDescriptor::iot_default(Vec::new()),
        PlatformConfig::default(),
        &mut rng,
    )
    .unwrap();
    local.install_service_key(&material.secret_bytes()).unwrap();
    local
        .install_mask(&glimmer_core::blinding::MaskShare {
            round: 0,
            client_id: 0,
            mask: vec![0u64; samples_per_device],
        })
        .unwrap();
    let local_start = Instant::now();
    let local_reps = 10usize;
    for _ in 0..local_reps {
        let contribution = Contribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: 0,
            round: 0,
            payload: ContributionPayload::IotReadings {
                samples: vec![0.5; samples_per_device],
            },
        };
        let _ = local.process(contribution, PrivateData::None).unwrap();
    }
    let local_elapsed = local_start.elapsed().as_secs_f64();

    E8Result {
        devices,
        endorsed,
        rejected,
        remote_ms_per_device: remote_elapsed * 1e3 / devices.max(1) as f64,
        local_ms_per_contribution: local_elapsed * 1e3 / local_reps as f64,
        host_enclave_cycles: host.cost_report().total_cycles,
    }
}

// ---------------------------------------------------------------------------
// E9: model inversion on raw vs blinded contributions (Section 1)
// ---------------------------------------------------------------------------

/// Result of the E9 experiment.
#[derive(Debug, Clone)]
pub struct E9Result {
    /// Users attacked.
    pub users: usize,
    /// Mean precision of membership inversion on raw per-user contributions.
    pub raw_precision: f64,
    /// Mean recall on raw contributions.
    pub raw_recall: f64,
    /// Mean precision on blinded contributions.
    pub blinded_precision: f64,
    /// Mean recall on blinded contributions.
    pub blinded_recall: f64,
}

/// Runs E9.
#[must_use]
pub fn e9_model_inversion(users: usize, seed: [u8; 32]) -> E9Result {
    let cfg = KeyboardWorkloadConfig {
        users,
        vocab_size: 60,
        sentences_per_user: 20,
        ..KeyboardWorkloadConfig::default()
    };
    let workload = KeyboardWorkload::generate(&cfg, seed);
    let schema = &workload.schema;
    let ids = workload.client_ids();
    let masks = BlindingService::new([29u8; 32]).zero_sum_masks(0, &ids, schema.dimension());

    let mut raw_precision = 0.0;
    let mut raw_recall = 0.0;
    let mut blinded_precision = 0.0;
    let mut blinded_recall = 0.0;
    for (i, user) in workload.users.iter().enumerate() {
        let (model, _) = train_local_model(schema, &user.sentences).unwrap();
        let actual: HashSet<usize> = user
            .sentences
            .iter()
            .flat_map(|s| s.windows(2).map(|w| (w[0], w[1])))
            .filter_map(|(p, n)| schema.slot_of(p, n))
            .collect();

        let raw_outcome = invert_membership(schema, &model.weights, &actual, 0.0);
        raw_precision += raw_outcome.precision();
        raw_recall += raw_outcome.recall();

        let blinded = masks[i].blind(&encode_weights(&model.weights));
        let observed = decode_weights(&blinded);
        let blinded_outcome = invert_membership(schema, &observed, &actual, 0.0);
        blinded_precision += blinded_outcome.precision();
        blinded_recall += blinded_outcome.recall();
    }
    let n = users.max(1) as f64;
    E9Result {
        users,
        raw_precision: raw_precision / n,
        raw_recall: raw_recall / n,
        blinded_precision: blinded_precision / n,
        blinded_recall: blinded_recall / n,
    }
}

// ---------------------------------------------------------------------------
// E10: TCB accounting and verifiability (Section 3)
// ---------------------------------------------------------------------------

/// One row of the E10 table.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Glimmer flavour.
    pub name: String,
    /// Measured descriptor size in bytes.
    pub descriptor_bytes: usize,
    /// Total EPC pages.
    pub total_pages: usize,
    /// EPC footprint in KiB.
    pub epc_kib: usize,
    /// Number of predicates in the TCB.
    pub predicates: usize,
    /// Declared declassifiers.
    pub declassifiers: usize,
    /// Whether the structural verifiability policy passes.
    pub verifiable: bool,
    /// Number of policy violations (0 when verifiable).
    pub violations: usize,
}

/// Runs E10 over every shipped Glimmer flavour.
#[must_use]
pub fn e10_tcb_accounting() -> Vec<E10Row> {
    let flavours = vec![
        GlimmerDescriptor::keyboard_range_only(),
        GlimmerDescriptor::keyboard_default(),
        GlimmerDescriptor::keyboard_retrain(),
        GlimmerDescriptor::maps_default([0u8; 32]),
        GlimmerDescriptor::bot_detection_default(vec![0u8; 129], 64),
        GlimmerDescriptor::iot_default(Vec::new()),
    ];
    flavours
        .into_iter()
        .map(|d| {
            let image = d.build_image();
            let report = TcbReport::from_build(&d, &image);
            let violations = check_verifiability(&d, PolicyLimits::default());
            E10Row {
                name: d.name.clone(),
                descriptor_bytes: report.descriptor_bytes,
                total_pages: report.total_pages,
                epc_kib: report.epc_bytes / 1024,
                predicates: report.predicates,
                declassifiers: report.declassifiers,
                verifiable: report.verifiable,
                violations: violations.len(),
            }
        })
        .collect()
}

/// One row of the E11 gateway-serving comparison.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Concurrent device sessions served.
    pub sessions: usize,
    /// Requests each session submits.
    pub requests_per_session: usize,
    /// Pool slots (shards) the gateway ran with.
    pub slots: usize,
    /// Requests that produced endorsements (identical on both paths).
    pub endorsed: usize,
    /// Requests rejected by validation (identical on both paths).
    pub rejected: usize,
    /// Wall-clock ms for the per-device baseline (one fresh
    /// `RemoteGlimmerHost` per device, sequential encrypted round trips).
    pub per_device_ms: f64,
    /// Wall-clock ms for the pooled gateway to serve the same traffic
    /// (handshakes + submits + batched drains; pool build excluded as a
    /// one-time amortized cost).
    pub pooled_ms: f64,
    /// Wall-clock ms the gateway spent building + provisioning the pool
    /// (paid once, independent of traffic volume).
    pub pool_build_ms: f64,
    /// Endorsements per second on the per-device path.
    pub per_device_endorse_per_s: f64,
    /// Endorsements per second on the pooled path.
    pub pooled_endorse_per_s: f64,
    /// `per_device_ms / pooled_ms`.
    pub speedup: f64,
    /// Simulated enclave cycles per request, per-device path (includes the
    /// per-device enclave build).
    pub per_device_cycles_per_req: f64,
    /// Simulated enclave cycles per request spent in the gateway's batched
    /// drains.
    pub pooled_drain_cycles_per_req: f64,
}

/// Runs E11: pooled-batched gateway serving vs. the per-device
/// `RemoteGlimmerHost` baseline over identical traffic.
#[must_use]
pub fn e11_gateway_serving(
    sessions: usize,
    requests_per_session: usize,
    slots: usize,
    seed: [u8; 32],
) -> E11Row {
    use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    );
    let devices = &workload.tenants[0].devices;
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let client_ids: Vec<u64> = devices.iter().map(|d| d.device_id).collect();
    // One mask per (round, client): round r is the device's r-th request.
    let blinding = BlindingService::new([31u8; 32]);
    let mask_rounds: Vec<Vec<glimmer_core::blinding::MaskShare>> = (0..requests_per_session)
        .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, dimension))
        .collect();
    let contribution =
        |device: &glimmer_workloads::gateway::DeviceTraffic, round: usize| Contribution {
            app_id: APP.to_string(),
            client_id: device.device_id,
            round: round as u64,
            payload: ContributionPayload::IotReadings {
                samples: device.requests[round].clone(),
            },
        };

    // --- Per-device baseline: a fresh enclave host per device. ---
    let mut avs = AttestationService::new([17u8; 32]);
    let mut endorsed = 0usize;
    let mut rejected = 0usize;
    let mut per_device_cycles = 0u64;
    let mut endorsements = Vec::new();
    let per_device_start = Instant::now();
    for (i, device) in devices.iter().enumerate() {
        let mut host = RemoteGlimmerHost::new(
            GlimmerDescriptor::iot_default(Vec::new()),
            PlatformConfig::default(),
            &mut rng,
            &mut avs,
        )
        .unwrap();
        host.client_mut()
            .install_service_key(&material.secret_bytes())
            .unwrap();
        for round in mask_rounds.iter() {
            host.client_mut().install_mask(&round[i]).unwrap();
        }
        let approved = host.measurement();
        let offer = host.attestation_offer().unwrap();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        host.accept_device(&accept).unwrap();
        for round in 0..requests_per_session {
            let request = session.encrypt_request(contribution(device, round), PrivateData::None);
            let response = session
                .decrypt_response(&host.relay(&request).unwrap())
                .unwrap();
            match response {
                ProcessResponse::Endorsed(e) => {
                    endorsements.push(e);
                    endorsed += 1;
                }
                ProcessResponse::Rejected { .. } => rejected += 1,
            }
        }
        per_device_cycles += host.cost_report().total_cycles;
    }
    let per_device_elapsed = per_device_start.elapsed().as_secs_f64();
    // Endorsement signatures are verified by the tenant service, identically
    // on either architecture, so verification sits outside both timed
    // regions; it still runs, to prove the produced endorsements are valid.
    for e in endorsements.drain(..) {
        material.verifier().verify(&e).unwrap();
    }

    // --- Pooled gateway: pre-provisioned slots, batched drains. ---
    let mut avs = AttestationService::new([17u8; 32]);
    let pool_build_start = Instant::now();
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: slots,
            // Deterministic single-shard mode: E11's cycle metric must stay
            // reproducible run-to-run (E12 is the shard-scaling experiment).
            shards: 1,
            max_batch: 256,
            max_queue_depth: (sessions * requests_per_session).max(256),
            placement_session_weight: 4,
            platform_config: PlatformConfig::default(),
            ..GatewayConfig::default()
        },
        vec![TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    let pool_build_elapsed = pool_build_start.elapsed().as_secs_f64();

    let pooled_start = Instant::now();
    let approved = gateway.measurement(APP).unwrap();
    let mut device_sessions = Vec::with_capacity(devices.len());
    for (i, _device) in devices.iter().enumerate() {
        let (sid, offer) = gateway.open_session(APP).unwrap();
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        for round in mask_rounds.iter() {
            gateway.install_mask(sid, &round[i]).unwrap();
        }
        device_sessions.push((sid, session));
    }
    // Replay the interleaved arrival schedule, then drain in batches.
    for event in &workload.schedule {
        let device = &workload.tenants[event.tenant].devices[event.device];
        let (sid, session) = &mut device_sessions[event.device];
        let request =
            session.encrypt_request(contribution(device, event.request), PrivateData::None);
        gateway.submit(*sid, request).unwrap();
    }
    let responses = gateway.drain_all().unwrap();
    // Devices decrypt their replies inside the timed region, mirroring the
    // per-device baseline's client-side work; signature verification happens
    // after timing on both paths (see above).
    let mut pooled_endorsed = 0usize;
    for response in &responses {
        let glimmer_core::protocol::BatchOutcome::Reply { ciphertext, .. } = &response.outcome
        else {
            continue;
        };
        let (_, session) = device_sessions
            .iter()
            .find(|(sid, _)| *sid == response.session_id)
            .unwrap();
        if let ProcessResponse::Endorsed(e) = session.decrypt_response(ciphertext).unwrap() {
            endorsements.push(e);
            pooled_endorsed += 1;
        }
    }
    let pooled_elapsed = pooled_start.elapsed().as_secs_f64();
    for e in endorsements.drain(..) {
        material.verifier().verify(&e).unwrap();
    }
    assert_eq!(
        pooled_endorsed, endorsed,
        "pooled and per-device paths must agree on endorsements"
    );

    let stats = gateway.stats();
    let drain_cycles: u64 = stats.slots.iter().map(|s| s.stats.drain_cycles).sum();
    let total_requests = (sessions * requests_per_session).max(1) as f64;
    E11Row {
        sessions,
        requests_per_session,
        slots,
        endorsed,
        rejected,
        per_device_ms: per_device_elapsed * 1e3,
        pooled_ms: pooled_elapsed * 1e3,
        pool_build_ms: pool_build_elapsed * 1e3,
        per_device_endorse_per_s: endorsed as f64 / per_device_elapsed.max(1e-9),
        pooled_endorse_per_s: endorsed as f64 / pooled_elapsed.max(1e-9),
        speedup: per_device_elapsed / pooled_elapsed.max(1e-9),
        per_device_cycles_per_req: per_device_cycles as f64 / total_requests,
        pooled_drain_cycles_per_req: drain_cycles as f64 / total_requests,
    }
}

/// One row of the E12 shard-scaling experiment.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// Shard worker threads the gateway ran with.
    pub shards: usize,
    /// Pool slots (all one tenant).
    pub slots: usize,
    /// Concurrent established sessions.
    pub sessions: usize,
    /// Total requests served.
    pub requests: usize,
    /// Requests that produced endorsements (must be identical across rows).
    pub endorsed: usize,
    /// Wall-clock ms spent in submit + drain (device-side encryption is
    /// pre-paid outside the timed region, so this isolates gateway serving).
    pub serve_ms: f64,
    /// Requests per wall-clock second.
    pub wall_requests_per_s: f64,
    /// Simulated enclave cycles across all drains (identical across rows:
    /// sharding moves work, it does not add or remove any).
    pub total_drain_cycles: u64,
    /// The serving makespan in simulated cycles: the busiest shard's total.
    /// Shards run concurrently, so this — not the total — is the
    /// architectural serving time.
    pub critical_path_cycles: u64,
    /// `total_drain_cycles / critical_path_cycles`: how much parallelism the
    /// partition actually achieved (ideal = `shards` when slots balance).
    pub cycle_parallelism: f64,
    /// Critical-path speedup versus the sweep's first (serial baseline) row.
    pub cycle_speedup_vs_serial: f64,
}

/// Runs E12: the same single-tenant workload served at several shard counts.
///
/// Wall-clock columns show real parallel speedup on multicore hosts; the
/// simulated-cycle columns are the deterministic architectural metric (the
/// same convention as E11): shards drain concurrently, so the workload's
/// serving time is the *critical path* — the busiest shard's cycle total —
/// and shard-per-core scaling shows up as critical path shrinking while
/// total cycles stay bit-identical.
#[must_use]
pub fn e12_shard_scaling(
    shard_counts: &[usize],
    slots: usize,
    sessions_per_slot: usize,
    requests_per_session: usize,
    seed: [u8; 32],
) -> Vec<E12Row> {
    use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let sessions = slots * sessions_per_slot;
    let mut rows: Vec<E12Row> = Vec::with_capacity(shard_counts.len());

    for &shards in shard_counts {
        // Identical seeds per configuration: the enclaves, handshakes, and
        // ciphertexts are bit-identical across shard counts, so any
        // difference between rows is the runtime's doing.
        let mut rng = Drbg::from_seed(seed);
        let mut avs = AttestationService::new([18u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: slots,
                shards,
                max_batch: 256,
                max_queue_depth: (sessions * requests_per_session).max(256),
                placement_session_weight: 4,
                platform_config: PlatformConfig::default(),
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();

        let approved = gateway.measurement(APP).unwrap();
        let client_ids: Vec<u64> = (0..sessions as u64).collect();
        let blinding = BlindingService::new([32u8; 32]);
        let mask_rounds: Vec<_> = (0..requests_per_session as u64)
            .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
            .collect();
        let mut device_sessions = Vec::with_capacity(sessions);
        for (i, client_id) in client_ids.iter().enumerate() {
            let (sid, offer) = gateway.open_session(APP).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(sid, &round[i]).unwrap();
            }
            device_sessions.push((sid, *client_id, session));
        }

        // Pre-encrypt every request so the timed region measures gateway
        // serving (queueing + batched enclave drains), not device-side
        // encryption.
        let mut encrypted: Vec<(u64, Vec<u8>)> =
            Vec::with_capacity(sessions * requests_per_session);
        for round in 0..requests_per_session as u64 {
            for (sid, client_id, session) in &mut device_sessions {
                let contribution = Contribution {
                    app_id: APP.to_string(),
                    client_id: *client_id,
                    round,
                    payload: ContributionPayload::IotReadings {
                        samples: vec![0.3; dimension],
                    },
                };
                encrypted.push((
                    *sid,
                    session.encrypt_request(contribution, PrivateData::None),
                ));
            }
        }

        let serve_start = Instant::now();
        for (sid, ciphertext) in encrypted {
            gateway.submit(sid, ciphertext).unwrap();
        }
        let responses = gateway.drain_all().unwrap();
        let serve_elapsed = serve_start.elapsed().as_secs_f64();

        let endorsed = responses
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                )
            })
            .count();
        let stats = gateway.stats();
        let total_drain_cycles = stats.total_drain_cycles();
        let critical_path_cycles = stats.critical_path_drain_cycles();
        let requests = sessions * requests_per_session;
        let baseline_critical = rows
            .first()
            .map_or(critical_path_cycles, |row| row.critical_path_cycles);
        rows.push(E12Row {
            shards,
            slots,
            sessions,
            requests,
            endorsed,
            serve_ms: serve_elapsed * 1e3,
            wall_requests_per_s: requests as f64 / serve_elapsed.max(1e-9),
            total_drain_cycles,
            critical_path_cycles,
            cycle_parallelism: total_drain_cycles as f64 / critical_path_cycles.max(1) as f64,
            cycle_speedup_vs_serial: baseline_critical as f64 / critical_path_cycles.max(1) as f64,
        });
    }
    rows
}

/// Serve-time variance with and without core pinning (the E12 satellite).
#[derive(Debug, Clone)]
pub struct E12PinningVariance {
    /// Timed repeats per mode.
    pub repeats: usize,
    /// Shard workers per gateway.
    pub shards: usize,
    /// Workers that actually landed on their requested core in pinned mode
    /// (0 on hosts where affinity is unsupported — the report says so).
    pub pinned_workers: usize,
    /// Mean serve wall-clock ms, `pin_cores: false`.
    pub unpinned_mean_ms: f64,
    /// Sample standard deviation, `pin_cores: false`.
    pub unpinned_stddev_ms: f64,
    /// Coefficient of variation (stddev/mean), `pin_cores: false`.
    pub unpinned_cv: f64,
    /// Mean serve wall-clock ms, `pin_cores: true`.
    pub pinned_mean_ms: f64,
    /// Sample standard deviation, `pin_cores: true`.
    pub pinned_stddev_ms: f64,
    /// Coefficient of variation, `pin_cores: true`.
    pub pinned_cv: f64,
    /// Simulated critical-path cycles were bit-identical across every
    /// repeat of both modes: pinning changes *where* workers run, never
    /// what they compute.
    pub cycles_identical: bool,
}

/// Runs the E12 pinning satellite: the same shard-per-core workload served
/// `repeats` times with `pin_cores: false` and `repeats` times with
/// `pin_cores: true`, reporting wall-clock mean/stddev/CV per mode.
///
/// Report-only: whether pinning tightens the distribution depends on host
/// load and core count, so no wall-clock ordering is asserted. What *is*
/// deterministic — and checked by the E12 binary — is that the simulated
/// critical path is bit-identical across modes.
#[must_use]
pub fn e12_pinning_variance(
    shards: usize,
    slots: usize,
    sessions_per_slot: usize,
    requests_per_session: usize,
    repeats: usize,
    seed: [u8; 32],
) -> E12PinningVariance {
    use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let sessions = slots * sessions_per_slot;

    // One timed serve of the bit-identical workload; returns wall seconds,
    // the deterministic critical path, and how many workers reported a
    // successful pin.
    let run_once = |pin_cores: bool| -> (f64, u64, usize) {
        let mut rng = Drbg::from_seed(seed);
        let mut avs = AttestationService::new([18u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: slots,
                shards,
                max_batch: 256,
                max_queue_depth: (sessions * requests_per_session).max(256),
                placement_session_weight: 4,
                pin_cores,
                platform_config: PlatformConfig::default(),
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();

        let approved = gateway.measurement(APP).unwrap();
        let client_ids: Vec<u64> = (0..sessions as u64).collect();
        let blinding = BlindingService::new([32u8; 32]);
        let mask_rounds: Vec<_> = (0..requests_per_session as u64)
            .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
            .collect();
        let mut device_sessions = Vec::with_capacity(sessions);
        for (i, client_id) in client_ids.iter().enumerate() {
            let (sid, offer) = gateway.open_session(APP).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(sid, &round[i]).unwrap();
            }
            device_sessions.push((sid, *client_id, session));
        }
        let mut encrypted: Vec<(u64, Vec<u8>)> =
            Vec::with_capacity(sessions * requests_per_session);
        for round in 0..requests_per_session as u64 {
            for (sid, client_id, session) in &mut device_sessions {
                let contribution = Contribution {
                    app_id: APP.to_string(),
                    client_id: *client_id,
                    round,
                    payload: ContributionPayload::IotReadings {
                        samples: vec![0.3; dimension],
                    },
                };
                encrypted.push((
                    *sid,
                    session.encrypt_request(contribution, PrivateData::None),
                ));
            }
        }

        let serve_start = Instant::now();
        for (sid, ciphertext) in encrypted {
            gateway.submit(sid, ciphertext).unwrap();
        }
        gateway.drain_all().unwrap();
        let serve_elapsed = serve_start.elapsed().as_secs_f64();
        let critical = gateway.stats().critical_path_drain_cycles();
        (serve_elapsed, critical, gateway.pinned_workers())
    };

    let stats_of = |samples: &[f64]| -> (f64, f64, f64) {
        let n = samples.len().max(1) as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0).max(1.0);
        let stddev = var.sqrt();
        (mean * 1e3, stddev * 1e3, stddev / mean.max(1e-12))
    };

    let repeats = repeats.max(2);
    let mut unpinned = Vec::with_capacity(repeats);
    let mut pinned = Vec::with_capacity(repeats);
    let mut cycles: Vec<u64> = Vec::with_capacity(repeats * 2);
    let mut pinned_workers = 0usize;
    // Interleave modes so slow drift (thermal, background load) hits both
    // distributions equally instead of biasing whichever ran second.
    for _ in 0..repeats {
        let (s, c, _) = run_once(false);
        unpinned.push(s);
        cycles.push(c);
        let (s, c, p) = run_once(true);
        pinned.push(s);
        cycles.push(c);
        pinned_workers = p;
    }
    let (unpinned_mean_ms, unpinned_stddev_ms, unpinned_cv) = stats_of(&unpinned);
    let (pinned_mean_ms, pinned_stddev_ms, pinned_cv) = stats_of(&pinned);

    E12PinningVariance {
        repeats,
        shards,
        pinned_workers,
        unpinned_mean_ms,
        unpinned_stddev_ms,
        unpinned_cv,
        pinned_mean_ms,
        pinned_stddev_ms,
        pinned_cv,
        cycles_identical: cycles.windows(2).all(|w| w[0] == w[1]),
    }
}

/// One row of the E13 batched-hot-path experiment: identical traffic served
/// through a different admission path.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Which admission path produced the row: `"submit"` (per-request
    /// baseline), `"submit_many"` (one call per session), or
    /// `"submit_batch"` (bulk-producer chunks of `batch`).
    pub mode: &'static str,
    /// Requests admitted per call (1 for the baseline; `requests_per_session`
    /// for `submit_many`; the chunk size for `submit_batch`).
    pub batch: usize,
    /// Concurrent established sessions.
    pub sessions: usize,
    /// Total requests served.
    pub requests: usize,
    /// Requests that produced endorsements (identical across rows).
    pub endorsed: usize,
    /// Shard-queue submit commands the path issued (`GatewayStats::submit_commands`).
    pub submit_commands: u64,
    /// Baseline commands divided by this row's commands (1.0 for the baseline).
    pub command_reduction: f64,
    /// Simulated enclave cycles across all drains — bit-identical across
    /// rows at `shards: 1`: batching admission moves requests in bigger
    /// groups, it never changes what the enclaves compute.
    pub total_drain_cycles: u64,
    /// Wall-clock ms spent in submit + drain.
    pub serve_ms: f64,
    /// Endorsements per wall-clock second.
    pub endorse_per_s: f64,
    /// Heap allocations per request inside the whole submit+drain region.
    /// Zero unless the harness was built with `count-allocs` (see
    /// [`crate::alloc_track`]).
    pub allocs_per_req: f64,
    /// Heap allocations per request attributable to admission alone (the
    /// submit region): this is where batching shows up directly — the
    /// per-request path pays at least one channel-node allocation per
    /// request, the batched paths a handful per call. Zero unless
    /// `count-allocs`.
    pub submit_allocs_per_req: f64,
    /// Heap allocations per request in the drain region (identical across
    /// rows: the drain path does not depend on how admission was grouped).
    /// Zero unless `count-allocs`.
    pub drain_allocs_per_req: f64,
}

/// Runs E13: the same single-tenant workload admitted per-request
/// (`submit`), per-session (`submit_many`), and in bulk-producer chunks
/// (`submit_batch` over [`glimmer_workloads::gateway::GatewayTrafficWorkload::schedule_chunks`]-style
/// windows), always at `shards: 1` so the drain-cycle determinism bar is
/// checkable bit-for-bit.
///
/// Every row rebuilds the gateway from identical seeds, so enclaves,
/// handshakes, placement, and ciphertexts are bit-identical; the rows can
/// only differ in how admission is grouped. The allocation column needs the
/// `count-allocs` feature; without it the column reads zero and only the
/// command/cycle metrics are meaningful.
#[must_use]
pub fn e13_batched_hot_path(
    sessions: usize,
    requests_per_session: usize,
    chunk_sizes: &[usize],
    slots: usize,
    seed: [u8; 32],
) -> Vec<E13Row> {
    use crate::alloc_track::AllocSnapshot;
    use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    );

    let run = |mode: &'static str, batch: usize, baseline_commands: Option<u64>| -> E13Row {
        let mut rng = Drbg::from_seed(seed);
        let mut avs = AttestationService::new([19u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: slots,
                // The determinism bar: cycles must be bit-identical, so E13
                // always runs the single-shard deterministic mode.
                shards: 1,
                max_batch: 256,
                max_queue_depth: (sessions * requests_per_session).max(256),
                placement_session_weight: 4,
                platform_config: PlatformConfig::default(),
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();

        let approved = gateway.measurement(APP).unwrap();
        let devices = &workload.tenants[0].devices;
        let client_ids: Vec<u64> = devices.iter().map(|d| d.device_id).collect();
        let blinding = BlindingService::new([33u8; 32]);
        let mask_rounds: Vec<_> = (0..requests_per_session as u64)
            .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
            .collect();
        let mut device_sessions = Vec::with_capacity(devices.len());
        for (i, _device) in devices.iter().enumerate() {
            let (sid, offer) = gateway.open_session(APP).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(sid, &round[i]).unwrap();
            }
            device_sessions.push((sid, session));
        }

        // Pre-encrypt the whole schedule, in schedule order for every row
        // (identical device rng consumption, hence identical ciphertexts),
        // so the measured region isolates the gateway's hot path.
        let mut encrypted: Vec<(u64, Vec<u8>)> = Vec::with_capacity(workload.total_requests());
        for event in &workload.schedule {
            let device = &workload.tenants[0].devices[event.device];
            let (sid, session) = &mut device_sessions[event.device];
            let contribution = Contribution {
                app_id: APP.to_string(),
                client_id: device.device_id,
                round: event.request as u64,
                payload: ContributionPayload::IotReadings {
                    samples: device.requests[event.request].clone(),
                },
            };
            encrypted.push((
                *sid,
                session.encrypt_request(contribution, PrivateData::None),
            ));
        }

        let allocs_before = AllocSnapshot::now();
        let serve_start = Instant::now();
        match mode {
            "submit" => {
                for (sid, ciphertext) in encrypted {
                    gateway.submit(sid, ciphertext).unwrap();
                }
            }
            "submit_many" => {
                // One call per session: group each device's stream. The
                // per-slot request multiset is unchanged, so drain cycles
                // stay bit-identical even though arrival interleaving is
                // session-major here.
                let mut per_session: Vec<(u64, Vec<Vec<u8>>)> = device_sessions
                    .iter()
                    .map(|(sid, _)| (*sid, Vec::with_capacity(requests_per_session)))
                    .collect();
                for (sid, ciphertext) in encrypted {
                    let group = per_session
                        .iter_mut()
                        .find(|(candidate, _)| *candidate == sid)
                        .expect("every ciphertext belongs to an opened session");
                    group.1.push(ciphertext);
                }
                for (sid, group) in per_session {
                    gateway.submit_many(sid, group).unwrap();
                }
            }
            "submit_batch" => {
                // The bulk-producer path: the workload's arrival schedule is
                // chopped into submission windows and each window becomes
                // one submit_batch call. `encrypted` is in schedule order,
                // so zipping the two streams pairs every window with its
                // ciphertexts.
                let mut iter = encrypted.into_iter();
                for window in workload.schedule_chunks(batch) {
                    let mut chunk: Vec<(u64, Vec<u8>)> = Vec::with_capacity(window.len());
                    chunk.extend(iter.by_ref().take(window.len()));
                    gateway.submit_batch(chunk).unwrap();
                }
            }
            other => panic!("unknown E13 mode {other}"),
        }
        let allocs_submitted = AllocSnapshot::now();
        let responses = gateway.drain_all().unwrap();
        let serve_elapsed = serve_start.elapsed().as_secs_f64();
        let allocs_after = AllocSnapshot::now();

        let endorsed = responses
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                )
            })
            .count();
        let stats = gateway.stats();
        let requests = workload.total_requests();
        E13Row {
            mode,
            batch,
            sessions,
            requests,
            endorsed,
            submit_commands: stats.submit_commands,
            command_reduction: baseline_commands.map_or(1.0, |base| {
                base as f64 / stats.submit_commands.max(1) as f64
            }),
            total_drain_cycles: stats.total_drain_cycles(),
            serve_ms: serve_elapsed * 1e3,
            endorse_per_s: endorsed as f64 / serve_elapsed.max(1e-9),
            allocs_per_req: allocs_after.allocations_since(&allocs_before) as f64
                / requests.max(1) as f64,
            submit_allocs_per_req: allocs_submitted.allocations_since(&allocs_before) as f64
                / requests.max(1) as f64,
            drain_allocs_per_req: allocs_after.allocations_since(&allocs_submitted) as f64
                / requests.max(1) as f64,
        }
    };

    let baseline = run("submit", 1, None);
    let baseline_commands = baseline.submit_commands;
    let mut rows = vec![baseline];
    rows.push(run(
        "submit_many",
        requests_per_session,
        Some(baseline_commands),
    ));
    for &batch in chunk_sizes {
        rows.push(run("submit_batch", batch, Some(baseline_commands)));
    }
    rows
}

/// Measures the drain-path *buffer discipline* in isolation: the allocator
/// calls made by `sweeps` encode+decode rounds of a `batch`-item drain, with
/// the PR 2 one-shot buffers (a fresh held-items container, a fresh wire
/// encoder, and a fresh `BatchReply` per sweep) versus the current reusable
/// scratch (`Encoder::reset` via
/// [`glimmer_core::protocol::BatchRequest::encode_items_into`] plus
/// [`glimmer_core::protocol::BatchReply::decode_items_into`]).
///
/// Both disciplines pay the per-item reply-ciphertext allocations (replies
/// are owned by the caller either way), so the difference is exactly the
/// per-sweep container churn the scratch eliminates. Returns `(one_shot,
/// scratch)` allocation counts — both zero unless the harness was built
/// with `count-allocs`. The full-pipeline allocation columns of
/// [`e13_batched_hot_path`] are dominated by enclave crypto; this is the
/// isolated measurement that makes the scratch-reuse drop visible.
#[must_use]
pub fn e13_drain_buffer_churn(batch: usize, sweeps: usize) -> (u64, u64) {
    use crate::alloc_track::AllocSnapshot;
    use glimmer_core::protocol::{
        BatchItem, BatchOutcome, BatchReply, BatchReplyItem, BatchRequest,
    };
    use glimmer_wire::WireCodec;
    use std::hint::black_box;

    let items: Vec<BatchItem> = (0..batch as u64)
        .map(|i| BatchItem {
            session_id: i,
            ciphertext: vec![0xA5; 96],
        })
        .collect();
    let reply_wire = BatchReply {
        items: (0..batch as u64)
            .map(|i| BatchReplyItem {
                session_id: i,
                outcome: BatchOutcome::Reply {
                    ciphertext: vec![0x5A; 112],
                    endorsed: true,
                },
            })
            .collect(),
    }
    .to_wire();

    // PR 2 discipline: every sweep collects the drained items into a fresh
    // container, encodes a fresh wire buffer, and decodes a fresh reply.
    let before = AllocSnapshot::now();
    for _ in 0..sweeps {
        let held: Vec<&BatchItem> = items.iter().collect();
        let mut enc = Encoder::new();
        BatchRequest::encode_items_into(&mut enc, held.iter().copied());
        black_box(enc.as_slice());
        let decoded = BatchReply::from_wire(&reply_wire).unwrap();
        black_box(&decoded);
    }
    let one_shot = AllocSnapshot::now().allocations_since(&before);

    // Scratch discipline: one encoder and one reply vector for every sweep.
    let mut enc = Encoder::new();
    let mut replies: Vec<BatchReplyItem> = Vec::new();
    let before = AllocSnapshot::now();
    for _ in 0..sweeps {
        BatchRequest::encode_items_into(&mut enc, items.iter());
        black_box(enc.as_slice());
        BatchReply::decode_items_into(&reply_wire, &mut replies).unwrap();
        black_box(&replies);
        replies.clear();
    }
    let scratch = AllocSnapshot::now().allocations_since(&before);
    (one_shot, scratch)
}

/// One row of the E14 restart-recovery experiment.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Concurrent established device sessions at crash time.
    pub sessions: usize,
    /// Requests each session submits over the whole workload.
    pub requests_per_session: usize,
    /// Pool slots serving the tenant.
    pub slots: usize,
    /// Endorsements produced before the simulated crash.
    pub pre_endorsed: usize,
    /// Endorsements for the remaining workload after a cold rebuild.
    pub post_endorsed_cold: usize,
    /// Endorsements for the remaining workload after a checkpoint restore
    /// (must equal the cold count — recovery changes cost, not outcomes).
    pub post_endorsed_restore: usize,
    /// ECALLs to make the cold-rebuilt gateway serve-ready again: one
    /// provisioning ECALL per slot, a handshake pair per session, and a mask
    /// install per (session, round).
    pub cold_ready_ecalls: u64,
    /// ECALLs to make the restored gateway serve-ready: exactly one
    /// `IMPORT_STATE` per slot — zero re-provisioning for already
    /// provisioned tenants, zero per-session work.
    pub restore_ready_ecalls: u64,
    /// `cold_ready_ecalls / restore_ready_ecalls`.
    pub ecall_reduction: f64,
    /// Wall-clock ms to cold-rebuild to serve-ready (enclave builds,
    /// provisioning, re-handshakes, mask re-installs).
    pub cold_rebuild_ms: f64,
    /// Wall-clock ms to restore to serve-ready from the snapshot.
    pub restore_ms: f64,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: usize,
}

/// Runs E14: recovery after a gateway crash, cold rebuild versus sealed
/// checkpoint restore, over the E11 traffic generator.
///
/// The scenario: a serving gateway (established sessions, installed masks,
/// half the workload already endorsed) checkpoints and then dies. Recovery
/// path A rebuilds from scratch — every slot re-provisioned, every device
/// re-handshaking, every mask re-delivered. Recovery path B calls
/// [`glimmer_gateway::Gateway::restore`] on the snapshot: each slot pays one
/// `IMPORT_STATE` ECALL and the original devices keep serving on their
/// existing sessions. Both paths then serve the remaining workload; they
/// must produce the same endorsements.
#[must_use]
pub fn e14_restart_recovery(
    sessions: usize,
    requests_per_session: usize,
    slots: usize,
    seed: [u8; 32],
) -> E14Row {
    use glimmer_gateway::{Gateway, GatewayConfig, GatewaySnapshot, TenantConfig};
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let pre_rounds = requests_per_session / 2;
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    );
    let devices = &workload.tenants[0].devices;
    let client_ids: Vec<u64> = devices.iter().map(|d| d.device_id).collect();
    let blinding = BlindingService::new([71u8; 32]);
    let mask_rounds: Vec<Vec<glimmer_core::blinding::MaskShare>> = (0..requests_per_session)
        .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, dimension))
        .collect();
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let config = || GatewayConfig {
        slots_per_tenant: slots,
        shards: 1,
        max_batch: 256,
        max_queue_depth: (sessions * requests_per_session).max(256),
        placement_session_weight: 4,
        platform_config: PlatformConfig::default(),
        ..GatewayConfig::default()
    };
    let tenants = || {
        vec![TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )]
    };
    let contribution =
        |device: &glimmer_workloads::gateway::DeviceTraffic, round: usize| Contribution {
            app_id: APP.to_string(),
            client_id: device.device_id,
            round: round as u64,
            payload: ContributionPayload::IotReadings {
                samples: device.requests[round].clone(),
            },
        };
    // Connects every device: handshake plus a mask install per round.
    let connect = |gateway: &Gateway,
                   avs: &AttestationService,
                   rng: &mut Drbg|
     -> Vec<(u64, IotDeviceSession)> {
        let approved = gateway.measurement(APP).unwrap();
        devices
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let (sid, offer) = gateway.open_session(APP).unwrap();
                let (accept, session) =
                    IotDeviceSession::connect(&offer, avs, &approved, rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                for round in &mask_rounds {
                    gateway.install_mask(sid, &round[i]).unwrap();
                }
                (sid, session)
            })
            .collect()
    };
    let serve = |gateway: &Gateway,
                 device_sessions: &mut [(u64, IotDeviceSession)],
                 rounds: core::ops::Range<usize>|
     -> usize {
        for event in &workload.schedule {
            if !rounds.contains(&event.request) {
                continue;
            }
            let device = &workload.tenants[event.tenant].devices[event.device];
            let (sid, session) = &mut device_sessions[event.device];
            let request =
                session.encrypt_request(contribution(device, event.request), PrivateData::None);
            gateway.submit(*sid, request).unwrap();
        }
        gateway
            .drain_all()
            .unwrap()
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                )
            })
            .count()
    };
    let ready_ecalls = |gateway: &Gateway| -> u64 {
        gateway
            .stats()
            .slots
            .iter()
            .map(|row| row.stats.ecalls)
            .sum()
    };

    // --- Serve, checkpoint, crash. ---
    // The dedicated gateway rng stands in for the machine identity: restore
    // reproduces the platforms from the same seed.
    let machine_seed = [73u8; 32];
    let mut avs = AttestationService::new([72u8; 32]);
    let gateway = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    let mut original_sessions = connect(&gateway, &avs, &mut rng);
    let pre_endorsed = serve(&gateway, &mut original_sessions, 0..pre_rounds);
    let snapshot_bytes_vec = gateway.checkpoint().unwrap().to_bytes();
    drop(gateway); // the crash: every enclave dies with the process

    // --- Recovery path A: cold rebuild (what PR 3 and earlier had). ---
    let cold_start = Instant::now();
    let cold = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed([74u8; 32]),
    )
    .unwrap();
    let mut cold_sessions = connect(&cold, &avs, &mut rng);
    let cold_rebuild_ms = cold_start.elapsed().as_secs_f64() * 1e3;
    let cold_ready_ecalls = ready_ecalls(&cold);
    let post_endorsed_cold = serve(&cold, &mut cold_sessions, pre_rounds..requests_per_session);
    drop(cold);

    // --- Recovery path B: restore from the sealed checkpoint. ---
    let restore_start = Instant::now();
    let snapshot = GatewaySnapshot::from_bytes(&snapshot_bytes_vec).unwrap();
    let restored = Gateway::restore(
        config(),
        tenants(),
        &snapshot,
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    let restore_ms = restore_start.elapsed().as_secs_f64() * 1e3;
    let restore_ready_ecalls = ready_ecalls(&restored);
    // The original devices keep their sessions: no re-handshake, no mask
    // re-delivery, straight back to serving.
    let post_endorsed_restore = serve(
        &restored,
        &mut original_sessions,
        pre_rounds..requests_per_session,
    );

    E14Row {
        sessions,
        requests_per_session,
        slots,
        pre_endorsed,
        post_endorsed_cold,
        post_endorsed_restore,
        cold_ready_ecalls,
        restore_ready_ecalls,
        ecall_reduction: cold_ready_ecalls as f64 / (restore_ready_ecalls as f64).max(1.0),
        cold_rebuild_ms,
        restore_ms,
        snapshot_bytes: snapshot_bytes_vec.len(),
    }
}

/// One row of the E15 async-front-end experiment.
#[derive(Debug, Clone)]
pub struct E15Row {
    /// Concurrent device sessions multiplexed on one front-end thread.
    pub sessions: usize,
    /// Requests each session submits.
    pub requests_per_session: usize,
    /// Pool slots (one tenant, `shards: 1` for determinism).
    pub slots: usize,
    /// Requests that produced endorsements (identical on both paths).
    pub endorsed: usize,
    /// Requests rejected by validation (identical on both paths).
    pub rejected: usize,
    /// Wall-clock ms for the blocking driver (same phase structure).
    pub blocking_ms: f64,
    /// Wall-clock ms for the async driver: every session task plus the
    /// submitter/drainer runs on ONE executor thread.
    pub async_ms: f64,
    /// OS threads the async front-end added beyond the baseline process
    /// (gateway shard workers included in the baseline) — measured from
    /// `/proc/self/status` mid-serving where available, `None` elsewhere.
    /// The executor spawns none, so this must be `Some(0)` on Linux.
    pub extra_frontend_threads: Option<usize>,
    /// Sessions simultaneously live when submission began (the concurrency
    /// actually achieved, asserted `== sessions`).
    pub peak_live_sessions: usize,
    /// Task polls the executor performed.
    pub executor_polls: u64,
    /// Scheduling events (spawns + wakes, including cross-thread wakes from
    /// the shard worker) the executor's ready queue saw.
    pub executor_wakeups: u64,
    /// Whether the async path's reply sequence `(session_id, outcome)` was
    /// bit-identical to the blocking path's.
    pub identical_outputs: bool,
}

/// OS thread count of this process, where the platform exposes it.
fn os_threads() -> Option<usize> {
    std::fs::read_to_string("/proc/self/status")
        .ok()?
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Runs E15: the hand-rolled async front-end serving N concurrent device
/// sessions on one executor thread, compared against a blocking driver with
/// the identical phase structure (open all → handshake all → masks
/// round-major → each session's arrival-ordered stream via `submit_many` →
/// drain). At `shards: 1` both
/// paths present each enclave the same sequence of randomness-consuming
/// operations (session opens, batch processing — executor micro-timing
/// races never reorder those), so their endorsement outputs — down to the
/// reply ciphertext bytes — must be identical; the
/// async path's win is architectural: thousands of in-flight sessions with
/// zero extra front-end threads, instead of a parked OS thread per
/// outstanding reply.
#[must_use]
pub fn e15_async_frontend(
    sessions: usize,
    requests_per_session: usize,
    slots: usize,
    seed: [u8; 32],
) -> E15Row {
    use glimmer_core::protocol::BatchOutcome;
    use glimmer_gateway::frontend::{AsyncGateway, SessionExecutor, WaitGroup};
    use glimmer_gateway::{Gateway, GatewayConfig, GatewayResponse, TenantConfig};
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
    use std::cell::RefCell;
    use std::rc::Rc;

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let workload = Rc::new(GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    ));
    let client_ids: Vec<u64> = workload.tenants[0]
        .devices
        .iter()
        .map(|d| d.device_id)
        .collect();
    let blinding = BlindingService::new([31u8; 32]);
    let mask_rounds: Rc<Vec<Vec<glimmer_core::blinding::MaskShare>>> = Rc::new(
        (0..requests_per_session)
            .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, dimension))
            .collect(),
    );
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let config = || GatewayConfig {
        slots_per_tenant: slots,
        // Deterministic single-shard mode: the bit-identical-outputs claim
        // depends on a single FIFO command stream per the frontend docs.
        shards: 1,
        max_batch: 256,
        max_queue_depth: (sessions * requests_per_session).max(256),
        placement_session_weight: 4,
        platform_config: PlatformConfig::default(),
        ..GatewayConfig::default()
    };
    let tenants = || {
        let mut tenant = TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        );
        // The whole point is concurrency scale, so the default quota
        // (1024 sessions, 4096 queued) must grow with the experiment: all
        // sessions are live at once and the entire schedule is queued
        // before the first drain.
        tenant.quota = glimmer_gateway::TenantQuota {
            max_sessions: sessions.max(1024),
            max_queued: (sessions * requests_per_session).max(4096),
            endorsement_budget: None,
        };
        vec![tenant]
    };
    let contribution =
        |device: &glimmer_workloads::gateway::DeviceTraffic, round: usize| Contribution {
            app_id: APP.to_string(),
            client_id: device.device_id,
            round: round as u64,
            payload: ContributionPayload::IotReadings {
                samples: device.requests[round].clone(),
            },
        };
    // Both paths must consume identical randomness streams: the machine rng
    // rebuilds identical platforms, the device rng identical handshakes.
    let machine_seed = [101u8; 32];
    let device_seed = [102u8; 32];
    let expected_replies = workload.total_requests();

    // Per-session request streams, extracted once from the interleaved
    // schedule: each driver submits them through `submit_many` — one
    // atomic admission + one shard command per session — in device order.
    // (Single tenant, so streams[i].device == i.)
    let streams = Rc::new(workload.session_streams());

    // --- Blocking driver, phased exactly like the async task lifecycle:
    // all opens, then all handshakes (device order), then masks
    // round-major, then each session's stream via submit_many, then
    // drain-to-empty. ---
    let mut avs = AttestationService::new([17u8; 32]);
    let gateway = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    let blocking_start = Instant::now();
    let approved = gateway.measurement(APP).unwrap();
    let opened: Vec<(u64, glimmer_core::channel::ChannelOffer)> = (0..sessions)
        .map(|_| gateway.open_session(APP).unwrap())
        .collect();
    let mut device_rng = Drbg::from_seed(device_seed);
    let mut device_sessions = Vec::with_capacity(sessions);
    for (sid, offer) in opened {
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut device_rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        device_sessions.push((sid, session));
    }
    for round in mask_rounds.iter() {
        for (i, (sid, _)) in device_sessions.iter().enumerate() {
            gateway.install_mask(*sid, &round[i]).unwrap();
        }
    }
    for stream in streams.iter() {
        let device = &workload.tenants[stream.tenant].devices[stream.device];
        let (sid, session) = &mut device_sessions[stream.device];
        let requests: Vec<Vec<u8>> = stream
            .requests
            .iter()
            .map(|&round| session.encrypt_request(contribution(device, round), PrivateData::None))
            .collect();
        gateway.submit_many(*sid, requests).unwrap();
    }
    let blocking_responses = gateway.drain_all().unwrap();
    let blocking_ms = blocking_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(blocking_responses.len(), expected_replies);
    drop(gateway);

    // --- Async driver: one self-contained task per session (lifecycle
    // through submitting its own stream), one drainer task, every poll on
    // this thread. ---
    let mut avs = AttestationService::new([17u8; 32]);
    let gateway = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    // Baseline AFTER the shard workers exist: any growth from here on would
    // be threads the front-end itself added (it must add none).
    let baseline_threads = os_threads();
    let frontend = AsyncGateway::new(gateway);
    let mut executor = SessionExecutor::new();
    let async_start = Instant::now();
    let approved = frontend.gateway().measurement(APP).unwrap();
    let device_rng = Rc::new(RefCell::new(Drbg::from_seed(device_seed)));
    let avs = Rc::new(avs);
    let ready = WaitGroup::new(sessions);
    // Session tasks park their established device sessions here for the
    // submitter task (slot i = device i, so ids line up with the streams).
    type Established = Vec<Option<(u64, IotDeviceSession)>>;
    let established: Rc<RefCell<Established>> =
        Rc::new(RefCell::new((0..sessions).map(|_| None).collect()));
    let async_responses: Rc<RefCell<Vec<GatewayResponse>>> = Rc::new(RefCell::new(Vec::new()));
    let peak_live = Rc::new(std::cell::Cell::new(0usize));
    let threads_mid_serving = Rc::new(std::cell::Cell::new(None::<usize>));

    for i in 0..sessions {
        let frontend = frontend.clone();
        let device_rng = Rc::clone(&device_rng);
        let avs = Rc::clone(&avs);
        let mask_rounds = Rc::clone(&mask_rounds);
        let established = Rc::clone(&established);
        let ready = ready.clone();
        executor.spawn(async move {
            let (sid, offer) = frontend.open_session(APP).await.unwrap();
            let (accept, session) = {
                let mut rng = device_rng.borrow_mut();
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap()
            };
            frontend.complete_session(sid, &accept).await.unwrap();
            for round in mask_rounds.iter() {
                frontend.install_mask(sid, &round[i]).await.unwrap();
            }
            established.borrow_mut()[i] = Some((sid, session));
            ready.done();
        });
    }
    {
        let frontend = frontend.clone();
        let workload = Rc::clone(&workload);
        let streams = Rc::clone(&streams);
        let established = Rc::clone(&established);
        let async_responses = Rc::clone(&async_responses);
        let peak_live = Rc::clone(&peak_live);
        let threads_mid_serving = Rc::clone(&threads_mid_serving);
        executor.spawn(async move {
            // Hold submission back until every session finished its
            // handshake — the same phase boundary the blocking driver has,
            // and the moment all N sessions are provably live at once.
            //
            // Submission runs in ONE task, walking the per-session streams
            // in device order, because a completion delivered before its
            // first poll resolves inline: session tasks that submit from
            // inside their own lifecycle would race each other's
            // submission order (harmless for correctness, fatal for the
            // bit-identical comparison — the per-slot queue order feeds
            // the enclave's reply-nonce stream at drain time).
            ready.wait().await;
            peak_live.set(frontend.gateway().live_sessions());
            threads_mid_serving.set(os_threads());
            // Take ownership of the established sessions (every session
            // task has finished, so the cell is fully populated): holding
            // a RefCell borrow across the awaits below would be fragile.
            let mut established: Established = std::mem::take(&mut established.borrow_mut());
            for stream in streams.iter() {
                let device = &workload.tenants[stream.tenant].devices[stream.device];
                let (sid, session) = established[stream.device]
                    .as_mut()
                    .expect("all sessions established");
                let requests: Vec<Vec<u8>> = stream
                    .requests
                    .iter()
                    .map(|&round| {
                        session.encrypt_request(contribution(device, round), PrivateData::None)
                    })
                    .collect();
                frontend.submit_many(*sid, requests).await.unwrap();
            }
            loop {
                let batch = frontend.drain_replies().await.unwrap();
                let mut collected = async_responses.borrow_mut();
                collected.extend(batch);
                if collected.len() >= expected_replies {
                    break;
                }
            }
        });
    }
    executor.run();
    let async_ms = async_start.elapsed().as_secs_f64() * 1e3;
    let executor_polls = executor.polls();
    let executor_wakeups = executor.wakeups();

    // The acceptance bar: bit-identical reply sequences, byte-for-byte
    // (every reply ciphertext depends on the per-slot enclave rng stream,
    // so this holds only because both drivers present each enclave the
    // same order of randomness-consuming operations).
    let async_responses = async_responses.borrow();
    let identical_outputs = blocking_responses.len() == async_responses.len()
        && blocking_responses
            .iter()
            .zip(async_responses.iter())
            .all(|(b, a)| b.session_id == a.session_id && b.outcome == a.outcome);
    let endorsed = async_responses
        .iter()
        .filter(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. }))
        .count();
    let rejected = expected_replies - endorsed;
    let extra_frontend_threads = match (baseline_threads, threads_mid_serving.get()) {
        (Some(before), Some(during)) => Some(during.saturating_sub(before)),
        _ => None,
    };

    E15Row {
        sessions,
        requests_per_session,
        slots,
        endorsed,
        rejected,
        blocking_ms,
        async_ms,
        extra_frontend_threads,
        peak_live_sessions: peak_live.get(),
        executor_polls,
        executor_wakeups,
        identical_outputs,
    }
}

/// The E16 telemetry-overhead report: one full-pipeline serving comparison
/// (telemetry on vs telemetry off over bit-identical traffic) plus the
/// layer-by-layer observability bars — allocation-free recording, a
/// deterministic sampled trace, and round-tripping exposition formats.
#[derive(Debug, Clone)]
pub struct E16Report {
    /// Concurrent established sessions.
    pub sessions: usize,
    /// Requests per session.
    pub requests_per_session: usize,
    /// Enclave slots backing the tenant pool.
    pub slots: usize,
    /// Total requests served per mode (`sessions * requests_per_session`).
    pub requests: usize,
    /// Timed repeats per mode; the serve columns report the best repeat.
    pub repeats: usize,
    /// Requests that produced endorsements — asserted identical across
    /// modes inside the experiment: telemetry changes costs, never
    /// outcomes.
    pub endorsed: usize,
    /// Best-of-`repeats` wall-clock ms for submit + drain, telemetry on
    /// (the default [`glimmer_gateway::TelemetryConfig`]).
    pub serve_ms_on: f64,
    /// Best-of-`repeats` wall-clock ms for submit + drain, telemetry off.
    pub serve_ms_off: f64,
    /// Endorsements per wall-clock second with telemetry on.
    pub endorse_per_s_on: f64,
    /// Endorsements per wall-clock second with telemetry off.
    pub endorse_per_s_off: f64,
    /// The telemetry overhead bar: the median over repeats of the
    /// back-to-back per-pair `on / off` serve-time ratio, minus one.
    /// Pairing cancels CPU-frequency drift out of each ratio and the
    /// median discards outlier pairs, so this is the noise-robust
    /// estimate the E16 binary asserts stays within 5%.
    pub overhead_fraction: f64,
    /// Heap allocations per request in the serve region with telemetry on
    /// (best repeat). Zero unless built with `count-allocs`.
    pub allocs_per_req_on: f64,
    /// Heap allocations per request in the serve region with telemetry off
    /// (best repeat). Zero unless built with `count-allocs`.
    pub allocs_per_req_off: f64,
    /// Total extra allocations attributable to telemetry across the whole
    /// serve region (on minus off, best repeats). The steady-state
    /// recording paths are allocation-free, so this is bounded by the
    /// one-time per-gateway trace-scratch growth — the E16 binary asserts
    /// a small absolute cap, not a per-request one. Zero unless
    /// `count-allocs`.
    pub telemetry_allocs_total: u64,
    /// Allocations made by an isolated 100k-iteration
    /// [`glimmer_gateway::Histogram::record`] loop: the lock-free
    /// histogram hot path must allocate exactly zero. Zero (vacuously)
    /// unless `count-allocs`.
    pub record_allocs: u64,
    /// Median queue-wait (admission to drain start) from the telemetry-on
    /// run, nanoseconds.
    pub queue_wait_p50_nanos: u64,
    /// 99th-percentile queue-wait from the telemetry-on run, nanoseconds.
    pub queue_wait_p99_nanos: u64,
    /// Median per-sweep ECALL latency from the telemetry-on run,
    /// nanoseconds.
    pub ecall_p50_nanos: u64,
    /// 99th-percentile per-sweep ECALL latency from the telemetry-on run,
    /// nanoseconds.
    pub ecall_p99_nanos: u64,
    /// Admission-accepted counter from the telemetry-on snapshot (must
    /// equal `requests`: this workload is all well-formed submits).
    pub accepted: u64,
    /// Number of exposition samples the telemetry-on snapshot renders.
    pub sample_count: usize,
    /// The [`ManualClock`](glimmer_gateway::ManualClock) sub-check: a
    /// sampled trace carried all five pipeline stages with the exact
    /// injected timestamps.
    pub trace_complete: bool,
    /// The same trace's stage timestamps were monotonically non-decreasing.
    pub trace_monotonic: bool,
    /// The Prometheus-style text and JSON renderings parsed back to the
    /// identical sample map (and to `samples()` itself), with the p50/p99
    /// series present for both the ECALL and queue-wait histograms.
    pub round_trip_ok: bool,
}

/// Runs E16: the telemetry overhead and fidelity experiment.
///
/// Serves the identical single-tenant workload twice — once with the
/// default-on telemetry layer, once with telemetry disabled — through the
/// per-request `submit` path (the admission path that pays telemetry on
/// every call), timing `repeats` same-seed rebuilds of each mode and
/// keeping the best. Endorsement counts must match across modes (asserted
/// here; telemetry observes the pipeline, it never steers it). On top of
/// the comparison it runs three fidelity sub-checks: an isolated
/// [`glimmer_gateway::Histogram::record`] loop (the allocation-free bar),
/// a [`ManualClock`](glimmer_gateway::ManualClock)-driven gateway whose
/// sampled trace must carry exact deterministic stage timestamps, and the
/// exposition round-trip (text and JSON renderings parse to the same
/// samples). Allocation columns need `count-allocs`; without it they read
/// zero and only the timing and fidelity fields are meaningful.
#[must_use]
pub fn e16_telemetry(
    sessions: usize,
    requests_per_session: usize,
    slots: usize,
    repeats: usize,
    seed: [u8; 32],
) -> E16Report {
    use crate::alloc_track::AllocSnapshot;
    use glimmer_gateway::telemetry::{parse_exposition, parse_json_samples};
    use glimmer_gateway::{
        AdmitReason, Gateway, GatewayConfig, Histogram, ManualClock, TelemetryConfig,
        TelemetrySnapshot, TenantConfig, TraceStage,
    };
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
    use std::sync::Arc;

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let repeats = repeats.max(1);
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    );
    let requests = workload.total_requests();

    struct Once {
        endorsed: usize,
        elapsed_s: f64,
        allocs: u64,
        snapshot: TelemetrySnapshot,
    }
    let run_once = |telemetry: TelemetryConfig| -> Once {
        {
            // Same-seed rebuild per run (and per mode): enclaves,
            // handshakes, placement, and ciphertexts are bit-identical, so
            // the two modes can only differ in the telemetry layer itself.
            let mut rng = Drbg::from_seed(seed);
            let mut avs = AttestationService::new([19u8; 32]);
            let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
            let gateway = Gateway::new(
                GatewayConfig {
                    slots_per_tenant: slots,
                    shards: 1,
                    max_batch: 256,
                    max_queue_depth: requests.max(256),
                    placement_session_weight: 4,
                    platform_config: PlatformConfig::default(),
                    telemetry,
                    ..GatewayConfig::default()
                },
                vec![TenantConfig::new(
                    APP,
                    GlimmerDescriptor::iot_default(Vec::new()),
                    material.secret_bytes(),
                )],
                &mut avs,
                &mut rng,
            )
            .unwrap();

            let approved = gateway.measurement(APP).unwrap();
            let devices = &workload.tenants[0].devices;
            let client_ids: Vec<u64> = devices.iter().map(|d| d.device_id).collect();
            let blinding = BlindingService::new([33u8; 32]);
            let mask_rounds: Vec<_> = (0..requests_per_session as u64)
                .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
                .collect();
            let mut device_sessions = Vec::with_capacity(devices.len());
            for (i, _device) in devices.iter().enumerate() {
                let (sid, offer) = gateway.open_session(APP).unwrap();
                let (accept, session) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                for round in &mask_rounds {
                    gateway.install_mask(sid, &round[i]).unwrap();
                }
                device_sessions.push((sid, session));
            }
            let mut encrypted: Vec<(u64, Vec<u8>)> = Vec::with_capacity(requests);
            for event in &workload.schedule {
                let device = &workload.tenants[0].devices[event.device];
                let (sid, session) = &mut device_sessions[event.device];
                let contribution = Contribution {
                    app_id: APP.to_string(),
                    client_id: device.device_id,
                    round: event.request as u64,
                    payload: ContributionPayload::IotReadings {
                        samples: device.requests[event.request].clone(),
                    },
                };
                encrypted.push((
                    *sid,
                    session.encrypt_request(contribution, PrivateData::None),
                ));
            }

            // The measured region: per-request admission plus drain — the
            // paths the telemetry layer instruments.
            let allocs_before = AllocSnapshot::now();
            let serve_start = Instant::now();
            for (sid, ciphertext) in encrypted {
                gateway.submit(sid, ciphertext).unwrap();
            }
            let responses = gateway.drain_all().unwrap();
            let elapsed = serve_start.elapsed().as_secs_f64();
            let allocs = AllocSnapshot::now().allocations_since(&allocs_before);

            let endorsed = responses
                .iter()
                .filter(|r| {
                    matches!(
                        r.outcome,
                        glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                    )
                })
                .count();
            Once {
                endorsed,
                elapsed_s: elapsed,
                allocs,
                snapshot: gateway.telemetry(),
            }
        }
    };

    struct Mode {
        endorsed: usize,
        serve_s: f64,
        serve_allocs: u64,
        snapshot: Option<TelemetrySnapshot>,
    }
    impl Mode {
        fn fold(&mut self, run: Once) {
            self.endorsed = run.endorsed;
            self.serve_s = self.serve_s.min(run.elapsed_s);
            // Best (minimum) across repeats: any process-global lazy init
            // the first repeat pays is excluded from the comparison.
            self.serve_allocs = self.serve_allocs.min(run.allocs);
            self.snapshot = Some(run.snapshot);
        }
    }
    let empty = || Mode {
        endorsed: 0,
        serve_s: f64::INFINITY,
        serve_allocs: u64::MAX,
        snapshot: None,
    };
    let off_config = TelemetryConfig {
        enabled: false,
        ..TelemetryConfig::default()
    };
    // One discarded warm-up run absorbs cold caches and lazy process-global
    // init; the timed repeats then interleave off/on so frequency drift and
    // scheduling noise hit both modes symmetrically. The overhead estimate
    // is the MEDIAN of the per-pair on/off ratios: within a pair the two
    // serves run back-to-back, so slow-CPU periods cancel out of the ratio,
    // and the median discards outlier pairs that straddle a frequency
    // transition.
    let _ = run_once(off_config.clone());
    let (mut off, mut on) = (empty(), empty());
    let mut pair_ratios = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let off_run = run_once(off_config.clone());
        let on_run = run_once(TelemetryConfig::default());
        pair_ratios.push(on_run.elapsed_s / off_run.elapsed_s.max(1e-12));
        off.fold(off_run);
        on.fold(on_run);
    }
    pair_ratios.sort_by(f64::total_cmp);
    let overhead_fraction = pair_ratios[pair_ratios.len() / 2] - 1.0;
    assert_eq!(
        on.endorsed, off.endorsed,
        "telemetry must never change endorsement outcomes"
    );

    // The allocation-free recording bar, in isolation: the lock-free
    // histogram hot path (bucket index + relaxed atomics) must not touch
    // the allocator at all.
    let hist = Histogram::new();
    let record_before = AllocSnapshot::now();
    for i in 0..100_000u64 {
        hist.record(std::hint::black_box(
            i.wrapping_mul(2_654_435_761) & 0xF_FFFF,
        ));
    }
    let record_allocs = AllocSnapshot::now().allocations_since(&record_before);
    std::hint::black_box(hist.snapshot().count);

    // The deterministic-trace bar: under the injected ManualClock a sampled
    // trace must stamp all five stages with the exact injected times —
    // admission and enqueue at t=1000, the drain stages at t=2500.
    let (trace_complete, trace_monotonic) = {
        let mut rng = Drbg::from_seed(seed);
        let mut avs = AttestationService::new([19u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let clock = Arc::new(ManualClock::new());
        let gateway = Gateway::with_clock(
            GatewayConfig {
                slots_per_tenant: 1,
                shards: 1,
                telemetry: TelemetryConfig {
                    trace_sample_interval: 1,
                    ..TelemetryConfig::default()
                },
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
            Arc::clone(&clock) as Arc<dyn glimmer_gateway::Clock>,
        )
        .unwrap();
        let approved = gateway.measurement(APP).unwrap();
        let masks = BlindingService::new([33u8; 32]).zero_sum_masks(0, &[0u64], dimension);
        let (sid, offer) = gateway.open_session(APP).unwrap();
        let (accept, mut session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        gateway.install_mask(sid, &masks[0]).unwrap();
        let ciphertext = session.encrypt_request(
            Contribution {
                app_id: APP.to_string(),
                client_id: 0,
                round: 0,
                payload: ContributionPayload::IotReadings {
                    samples: vec![0.25; dimension],
                },
            },
            PrivateData::None,
        );
        clock.advance_nanos(1_000);
        gateway.submit(sid, ciphertext).unwrap();
        // FIFO barrier: the stats round-trip proves the worker stamped
        // `Enqueued` before the clock moves again.
        let _ = gateway.stats();
        clock.advance_nanos(1_500);
        let drained = gateway.drain().unwrap();
        assert_eq!(drained.len(), 1);
        let snap = gateway.telemetry();
        match snap.traces.iter().find(|t| t.trace_id != 0) {
            Some(trace) => (
                trace.is_complete()
                    && trace.stage(TraceStage::Admitted) == Some(1_000)
                    && trace.stage(TraceStage::Enqueued) == Some(1_000)
                    && trace.stage(TraceStage::DrainStart) == Some(2_500)
                    && trace.stage(TraceStage::EcallDone) == Some(2_500)
                    && trace.stage(TraceStage::ReplyDelivered) == Some(2_500),
                trace.is_monotonic(),
            ),
            None => (false, false),
        }
    };

    // The exposition round-trip bar, on the real serving snapshot: both
    // renderings must parse back to the identical sample map, and the
    // quantile series dashboards key on must be present.
    let snapshot = on.snapshot.as_ref().expect("repeats >= 1");
    let round_trip_ok = match (
        parse_exposition(&snapshot.render_prometheus()),
        parse_json_samples(&snapshot.render_json()),
    ) {
        (Ok(from_text), Ok(from_json)) => {
            from_text == from_json
                && from_text == snapshot.samples()
                && [
                    "glimmer_ecall_nanos_p50",
                    "glimmer_ecall_nanos_p99",
                    "glimmer_queue_wait_nanos_p50",
                    "glimmer_queue_wait_nanos_p99",
                ]
                .iter()
                .all(|key| from_text.contains_key(*key))
        }
        _ => false,
    };
    let accepted = snapshot
        .admission
        .iter()
        .find(|(reason, _)| *reason == AdmitReason::Accepted)
        .map_or(0, |(_, n)| *n);

    E16Report {
        sessions,
        requests_per_session,
        slots,
        requests,
        repeats,
        endorsed: on.endorsed,
        serve_ms_on: on.serve_s * 1e3,
        serve_ms_off: off.serve_s * 1e3,
        endorse_per_s_on: on.endorsed as f64 / on.serve_s.max(1e-9),
        endorse_per_s_off: off.endorsed as f64 / off.serve_s.max(1e-9),
        overhead_fraction,
        allocs_per_req_on: on.serve_allocs as f64 / requests.max(1) as f64,
        allocs_per_req_off: off.serve_allocs as f64 / requests.max(1) as f64,
        telemetry_allocs_total: on.serve_allocs.saturating_sub(off.serve_allocs),
        record_allocs,
        queue_wait_p50_nanos: snapshot.queue_wait_nanos.p50(),
        queue_wait_p99_nanos: snapshot.queue_wait_nanos.p99(),
        ecall_p50_nanos: snapshot.ecall_nanos.p50(),
        ecall_p99_nanos: snapshot.ecall_nanos.p99(),
        accepted,
        sample_count: snapshot.sample_lines().len(),
        trace_complete,
        trace_monotonic,
        round_trip_ok,
    }
}

/// One loader-scaling row of E17: the same scenario file loaded with a
/// different reader count.
#[derive(Debug, Clone)]
pub struct E17LoaderRow {
    /// Parallel chunk readers.
    pub readers: usize,
    /// Records loaded (identical across rows).
    pub records: u64,
    /// Best-of-repeats wall-clock load+parse time.
    pub load_ms: f64,
    /// Records parsed per wall-clock second (best repeat).
    pub records_per_s: f64,
    /// Records owned by the busiest chunk — the loader's critical path.
    pub max_chunk_records: u64,
    /// `records / max_chunk_records`: the deterministic parallel speedup
    /// the chunk partition admits (readers run concurrently, so the
    /// busiest chunk bounds the makespan). Unlike wall clock, this holds
    /// on any host, including single-core CI.
    pub det_speedup: f64,
    /// Wall-clock speedup versus the single-reader row (best-of-repeats).
    /// Only meaningful with as many idle cores as readers.
    pub wall_speedup: f64,
    /// Concatenated chunk records were bit-identical to the generator's
    /// ground truth: nothing lost, duplicated, or split.
    pub exactly_once: bool,
    /// Heap allocations per record across the whole `load_chunks` call
    /// (windows, output reservations, thread spawns — the per-record parse
    /// itself is allocation-free). Zero unless built with `count-allocs`.
    pub load_allocs_per_record: f64,
}

/// The E17 result: loader scaling plus the end-to-end replay-vs-in-process
/// serve comparison.
#[derive(Debug, Clone)]
pub struct E17Result {
    /// Records in the loader-scaling scenario file.
    pub parse_records: u64,
    /// Bytes in the loader-scaling scenario file.
    pub parse_bytes: u64,
    /// One row per reader count.
    pub loader_rows: Vec<E17LoaderRow>,
    /// Records in the (smaller) serve scenario.
    pub serve_records: u64,
    /// Sessions the serve harness established.
    pub serve_sessions: usize,
    /// Endorsements the replayed run produced.
    pub replay_endorsed: usize,
    /// Endorsements the in-process baseline produced (must equal).
    pub baseline_endorsed: usize,
    /// Replay wall-clock submit+drain ms (batched-per-shard ingest).
    pub replay_serve_ms: f64,
    /// Replayed records per wall-clock second through the gateway.
    pub ingest_records_per_s: f64,
    /// Endorsements per wall-clock second during replay.
    pub endorse_per_s: f64,
    /// Requests terminally rejected by quota during replay (counted, not
    /// dropped).
    pub quota_rejected: u64,
    /// Drain sweeps the replay pacing performed.
    pub drains: u64,
    /// Replay responses were bit-identical (session, tenant, and full
    /// outcome ciphertext) to the in-process per-record baseline.
    pub bit_identical: bool,
    /// Malformed lines the loader saw in the serve file (0 for a generated
    /// file).
    pub parse_errors: u64,
    /// The telemetry hub's `ingest parsed` counter after the replay —
    /// wired from the loader summaries, so it must equal `serve_records`.
    pub telemetry_ingest_parsed: u64,
    /// The hub's `ingest parse_error` counter after the replay.
    pub telemetry_ingest_parse_errors: u64,
    /// The hub's `ingest quota_rejected` counter after the replay.
    pub telemetry_ingest_quota_rejected: u64,
}

/// Runs E17: million-device replay ingest.
///
/// Phase 1 (loader scaling) generates a `parse_records`-record scenario
/// file and loads it with each reader count in `reader_counts`
/// (best-of-`repeats` wall clock), verifying the chunked readers
/// reproduce the generator's records exactly once. Phase 2 (end-to-end)
/// generates a smaller serve scenario (`serve_sessions` devices per
/// tenant × 2 tenants, abuse-burst mix), replays it through a
/// [`crate::ingest::ReplayHarness`] on the batched-per-shard path with
/// bounded in-flight admission, and replays the *same records* through a
/// fresh same-seed harness on the per-record baseline path with the same
/// drain cadence — at `shards: 1` the two must produce bit-identical
/// responses. Loader accounting is mirrored into the gateway's telemetry
/// ingest counters, observable like live traffic.
///
/// Scenario files live in the OS temp directory and are removed before
/// returning.
#[must_use]
pub fn e17_replay_ingest(
    parse_records: u64,
    reader_counts: &[usize],
    repeats: usize,
    serve_sessions: usize,
    serve_rounds: usize,
    seed: [u8; 32],
) -> E17Result {
    use crate::alloc_track::AllocSnapshot;
    use crate::ingest::{ingest, IngestConfig, IngestMode, Pacing, ReplayHarness};
    use glimmer_workloads::replay::{
        generate_scenario_file, load_chunks, FileSource, ParseSummary, ReplayRecord, ScenarioMix,
        ScenarioSpec, CHUNK_EXCESS,
    };

    let dir = std::env::temp_dir();
    let pid = std::process::id();

    // ---- Phase 1: loader scaling over a large diurnal scenario. ----
    let parse_spec = ScenarioSpec {
        tenants: 4,
        devices_per_tenant: 250_000,
        records: parse_records,
        mix: ScenarioMix::Diurnal {
            period: (parse_records / 8).max(2),
        },
        seed: u64::from_le_bytes(seed[..8].try_into().unwrap()),
    };
    let parse_path = dir.join(format!("glimmer-e17-{pid}-parse.scenario"));
    let parse_info = generate_scenario_file(&parse_path, &parse_spec).expect("generate scenario");
    let truth = parse_spec.records_vec();

    let mut loader_rows: Vec<E17LoaderRow> = Vec::with_capacity(reader_counts.len());
    for &readers in reader_counts {
        let source = FileSource::open(&parse_path).expect("open scenario");
        let mut best_s = f64::INFINITY;
        let mut exactly_once = true;
        let mut max_chunk_records = 0u64;
        let mut load_allocs = 0u64;
        for repeat in 0..repeats.max(1) {
            let allocs_before = AllocSnapshot::now();
            let start = Instant::now();
            let loads = load_chunks(&source, readers, CHUNK_EXCESS).expect("load scenario");
            let elapsed = start.elapsed().as_secs_f64();
            load_allocs = AllocSnapshot::now().allocations_since(&allocs_before);
            best_s = best_s.min(elapsed);
            if repeat == 0 {
                max_chunk_records = loads.iter().map(|l| l.summary.records).max().unwrap_or(0);
                let flat: Vec<ReplayRecord> = loads
                    .iter()
                    .flat_map(|l| l.records.iter().copied())
                    .collect();
                exactly_once = flat == truth && loads.iter().all(|l| l.summary.parse_errors == 0);
            }
        }
        let single_ms = loader_rows.first().map_or(best_s * 1e3, |row| row.load_ms);
        loader_rows.push(E17LoaderRow {
            readers,
            records: parse_info.records,
            load_ms: best_s * 1e3,
            records_per_s: parse_info.records as f64 / best_s.max(1e-9),
            max_chunk_records,
            det_speedup: parse_info.records as f64 / max_chunk_records.max(1) as f64,
            wall_speedup: single_ms / (best_s * 1e3).max(1e-9),
            exactly_once,
            load_allocs_per_record: load_allocs as f64 / parse_info.records.max(1) as f64,
        });
    }
    let _ = std::fs::remove_file(&parse_path);

    // ---- Phase 2: end-to-end replay vs in-process baseline. ----
    let serve_spec = ScenarioSpec {
        tenants: 2,
        devices_per_tenant: serve_sessions as u64,
        records: (serve_sessions * serve_rounds * 2) as u64,
        mix: ScenarioMix::AbuseBurst {
            abusive_fraction: 0.5,
            period: 16,
            burst_len: 4,
        },
        seed: u64::from_le_bytes(seed[8..16].try_into().unwrap()),
    };
    let serve_path = dir.join(format!("glimmer-e17-{pid}-serve.scenario"));
    let serve_info = generate_scenario_file(&serve_path, &serve_spec).expect("generate serve");
    let source = FileSource::open(&serve_path).expect("open serve");
    let loads = load_chunks(&source, 4, CHUNK_EXCESS).expect("load serve");
    let _ = std::fs::remove_file(&serve_path);
    let summary = loads.iter().fold(ParseSummary::default(), |mut a, l| {
        a.merge(&l.summary);
        a
    });
    let replayed: Vec<ReplayRecord> = loads
        .into_iter()
        .flat_map(|l| l.records.into_iter())
        .collect();

    // Both drivers share one pacing so their drain cadence — and therefore
    // their response stream — is comparable bit-for-bit at `shards: 1`.
    let pacing = |mode| IngestConfig {
        mode,
        window: 64,
        max_in_flight: 256,
        pacing: Pacing::Unpaced,
    };
    let build = |records: &[ReplayRecord]| {
        ReplayHarness::build(
            records,
            serve_spec.tenants,
            1, // deterministic single-shard mode: the bit-identity bar
            2,
            8,
            1024,
            seed,
        )
    };

    // Replay side: records from the *file*, batched-per-shard admission,
    // loader accounting mirrored into the telemetry ingest counters.
    let mut replay_harness = build(&replayed);
    let telemetry = replay_harness.gateway.telemetry_handle();
    telemetry.record_ingest_parsed(summary.records);
    telemetry.record_ingest_parse_errors(summary.parse_errors);
    let serve_start = Instant::now();
    let replay_report = ingest(
        &mut replay_harness,
        &replayed,
        &pacing(IngestMode::BatchedPerShard),
    )
    .expect("replay ingest");
    let replay_elapsed = serve_start.elapsed().as_secs_f64();
    let snapshot = replay_harness.gateway.telemetry();

    // Baseline side: the *same* records regenerated in process (the
    // exactly-once check above proved file and generator agree), per-record
    // admission, same cadence, fresh same-seed harness.
    let baseline_records = serve_spec.records_vec();
    let mut baseline_harness = build(&baseline_records);
    let baseline_report = ingest(
        &mut baseline_harness,
        &baseline_records,
        &pacing(IngestMode::PerRecord),
    )
    .expect("baseline ingest");

    let bit_identical = replay_report.response_keys() == baseline_report.response_keys();

    E17Result {
        parse_records: parse_info.records,
        parse_bytes: parse_info.bytes,
        loader_rows,
        serve_records: serve_info.records,
        serve_sessions: replay_harness.session_count(),
        replay_endorsed: replay_report.endorsed(),
        baseline_endorsed: baseline_report.endorsed(),
        replay_serve_ms: replay_elapsed * 1e3,
        ingest_records_per_s: serve_info.records as f64 / replay_elapsed.max(1e-9),
        endorse_per_s: replay_report.endorsed() as f64 / replay_elapsed.max(1e-9),
        quota_rejected: replay_report.quota_rejected,
        drains: replay_report.drains,
        bit_identical,
        parse_errors: summary.parse_errors,
        telemetry_ingest_parsed: snapshot.ingest_parsed,
        telemetry_ingest_parse_errors: snapshot.ingest_parse_errors,
        telemetry_ingest_quota_rejected: snapshot.ingest_quota_rejected,
    }
}

/// The E18 result: incremental + streamed checkpoints.
#[derive(Debug, Clone)]
pub struct E18Result {
    /// Pool slots in the ratio gateway (one tenant, one session per slot).
    pub slots: usize,
    /// Slots the delta actually re-exported (the dirty set).
    pub dirty_slots: usize,
    /// Slots the delta skipped wholesale — no barrier, no seal, no ECALL.
    pub skipped_slots: usize,
    /// ECALLs one full checkpoint consumed (one `EXPORT_STATE` per slot).
    pub full_ecalls: u64,
    /// ECALLs one delta checkpoint consumed (dirty slots only).
    pub delta_ecalls: u64,
    /// `full_ecalls / delta_ecalls` — the E18 bar is ≥ 10x at 5% dirty.
    pub ecall_reduction: f64,
    /// Best-of-repeats wall-clock ms for a full checkpoint.
    pub full_ms: f64,
    /// Best-of-repeats wall-clock ms for a delta against the same base.
    pub delta_ms: f64,
    /// `full_ms / delta_ms` — the E18 bar is ≥ 5x at 5% dirty.
    pub wall_speedup: f64,
    /// Serialized full-snapshot size.
    pub full_bytes: usize,
    /// Serialized delta size (scales with the dirty set, not the pool).
    pub delta_bytes: usize,
    /// Wall-clock ms for the slot-at-a-time streamed full capture.
    pub streamed_ms: f64,
    /// Requests endorsed by drains issued *while* the streamed capture was
    /// in flight — proof that serving continued during housekeeping.
    pub served_during_capture: u64,
    /// The telemetry hub's `checkpoint_slots_total{outcome=exported}`
    /// counter after all checkpoint activity.
    pub telemetry_slots_exported: u64,
    /// The hub's `checkpoint_slots_total{outcome=skipped}` counter.
    pub telemetry_slots_skipped: u64,
    /// A fresh checkpoint of the chain-restored gateway was byte-identical
    /// to one from the equivalently full-snapshot-restored gateway.
    pub chain_restore_identical: bool,
    /// Post-restore serving produced identical responses on both paths.
    pub chain_tail_identical: bool,
}

/// Runs E18: incremental, streamed checkpoints.
///
/// Phase 1 (the ratio gateway) serves one round across `slots` single-slot
/// sessions so every slot holds state, takes a full checkpoint as the chain
/// base, then re-serves only `dirty` devices and captures a
/// [`glimmer_gateway::Gateway::checkpoint_delta`] against the base. ECALLs
/// and best-of-`repeats` wall clock are measured for both paths: the delta
/// must touch only the dirty slots, so both scale with the dirty count,
/// not the pool size.
///
/// Phase 2 re-captures the same gateway with
/// [`glimmer_gateway::Gateway::checkpoint_streamed`], driving
/// `overlap_requests` live requests through the gateway from inside the
/// [`glimmer_gateway::CrashPoint::MidStreamExport`] hook — each one
/// submitted and drained while the capture is mid-flight, proving
/// housekeeping no longer stops the world.
///
/// Phase 3 (bit-identity) runs two identically-seeded fixtures on a
/// [`glimmer_gateway::ManualClock`]: run A checkpoints base + delta, run B
/// takes full snapshots at the same two points, both crash, and run A
/// restores through [`glimmer_gateway::Gateway::restore_chain_with_clock`]
/// while run B restores from the full snapshot. A fresh checkpoint from
/// either restored gateway must be byte-for-byte identical, and both must
/// serve the remaining workload identically.
#[must_use]
pub fn e18_incremental_checkpoint(
    slots: usize,
    dirty: usize,
    dimension: usize,
    repeats: usize,
    overlap_requests: usize,
    seed: [u8; 32],
) -> E18Result {
    use glimmer_gateway::{
        CrashHooks, CrashPoint, Gateway, GatewayConfig, ManualClock, SnapshotChain, TenantConfig,
    };
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    const APP: &str = "iot-telemetry.example";
    assert!(dirty >= 1 && dirty <= slots, "dirty must be in 1..=slots");
    let total_rounds = 2 + overlap_requests;
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: slots,
            requests_per_device: total_rounds,
            dimension,
            misbehaving_fraction: 0.0,
        }],
        seed,
    );
    let devices = &workload.tenants[0].devices;
    let client_ids: Vec<u64> = devices.iter().map(|d| d.device_id).collect();
    let blinding = BlindingService::new([81u8; 32]);
    let mask_rounds: Vec<Vec<glimmer_core::blinding::MaskShare>> = (0..total_rounds)
        .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, dimension))
        .collect();
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let config = GatewayConfig {
        slots_per_tenant: slots,
        shards: 4,
        max_batch: 256,
        max_queue_depth: (slots * total_rounds).max(256),
        ..GatewayConfig::default()
    };
    let tenants = vec![TenantConfig::new(
        APP,
        GlimmerDescriptor::iot_default(Vec::new()),
        material.secret_bytes(),
    )];
    let contribution = |device: usize, round: usize| Contribution {
        app_id: APP.to_string(),
        client_id: devices[device].device_id,
        round: round as u64,
        payload: ContributionPayload::IotReadings {
            samples: devices[device].requests[round].clone(),
        },
    };
    let mut avs = AttestationService::new([82u8; 32]);
    let gateway =
        Gateway::new(config, tenants, &mut avs, &mut Drbg::from_seed([83u8; 32])).unwrap();
    let approved = gateway.measurement(APP).unwrap();
    let mut sessions: Vec<(u64, IotDeviceSession)> = Vec::with_capacity(slots);
    for (i, _) in devices.iter().enumerate() {
        let (sid, offer) = gateway.open_session(APP).unwrap();
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        for round in &mask_rounds {
            gateway.install_mask(sid, &round[i]).unwrap();
        }
        sessions.push((sid, session));
    }
    let endorsed = |responses: &[glimmer_gateway::GatewayResponse]| {
        responses
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                )
            })
            .count() as u64
    };
    let total_ecalls = |gateway: &Gateway| -> u64 {
        gateway
            .stats()
            .slots
            .iter()
            .map(|row| row.stats.ecalls)
            .sum()
    };
    // Round 0 for every device: every slot ends up dirty and stateful.
    for (i, (sid, session)) in sessions.iter_mut().enumerate() {
        let request = session.encrypt_request(contribution(i, 0), PrivateData::None);
        gateway.submit(*sid, request).unwrap();
    }
    let served = endorsed(&gateway.drain_all().unwrap());
    assert_eq!(served, slots as u64, "honest round 0 must fully endorse");

    // --- Full-checkpoint cost: every slot pays its EXPORT_STATE. ---
    let mut full_ms = f64::INFINITY;
    let mut full_ecalls = 0u64;
    let mut base = None;
    for _ in 0..repeats.max(1) {
        let before = total_ecalls(&gateway);
        let start = Instant::now();
        let snapshot = gateway.checkpoint().unwrap();
        full_ms = full_ms.min(start.elapsed().as_secs_f64() * 1e3);
        full_ecalls = total_ecalls(&gateway) - before;
        base = Some(snapshot);
    }
    let base = base.unwrap();
    let full_bytes = base.to_bytes().len();

    // --- Dirty a 5%-ish subset, then measure the delta. ---
    for (i, (sid, session)) in sessions.iter_mut().enumerate().take(dirty) {
        let request = session.encrypt_request(contribution(i, 1), PrivateData::None);
        gateway.submit(*sid, request).unwrap();
    }
    assert_eq!(endorsed(&gateway.drain_all().unwrap()), dirty as u64);
    let mut delta_ms = f64::INFINITY;
    let mut delta_ecalls = 0u64;
    let mut delta = None;
    for _ in 0..repeats.max(1) {
        let before = total_ecalls(&gateway);
        let start = Instant::now();
        let captured = gateway.checkpoint_delta(&base.chain_base()).unwrap();
        delta_ms = delta_ms.min(start.elapsed().as_secs_f64() * 1e3);
        delta_ecalls = total_ecalls(&gateway) - before;
        delta = Some(captured);
    }
    let delta = delta.unwrap();
    let delta_bytes = delta.to_bytes().len();
    let dirty_slots = delta.tenants[0]
        .slots
        .iter()
        .filter(|s| s.sealed_state.is_some())
        .count();
    let skipped_slots = slots - dirty_slots;

    // --- Streamed capture with live traffic from inside the hook. ---
    type EncryptFn<'a> =
        Box<dyn Fn(&mut IotDeviceSession, usize, usize) -> Vec<u8> + Send + Sync + 'a>;
    struct ServeDuringCapture<'a> {
        gateway: &'a Gateway,
        // (dense device index, sid, device session, next round) for the
        // device the hook keeps serving; rounds_left bounds the traffic.
        lane: Mutex<(usize, u64, IotDeviceSession, usize, usize)>,
        served: AtomicU64,
        encrypt: EncryptFn<'a>,
    }
    impl CrashHooks for ServeDuringCapture<'_> {
        fn reached(&self, point: CrashPoint) -> bool {
            if point == CrashPoint::MidStreamExport {
                let mut lane = self.lane.lock().unwrap();
                let (device, sid, ref mut session, ref mut round, ref mut left) = *lane;
                if *left > 0 {
                    *left -= 1;
                    let request = (self.encrypt)(session, device, *round);
                    *round += 1;
                    self.gateway.submit(sid, request).unwrap();
                    let drained = self.gateway.drain_all().unwrap();
                    let endorsed = drained
                        .iter()
                        .filter(|r| {
                            matches!(
                                r.outcome,
                                glimmer_core::protocol::BatchOutcome::Reply { endorsed: true, .. }
                            )
                        })
                        .count() as u64;
                    self.served.fetch_add(endorsed, Ordering::Relaxed);
                }
            }
            false // observe, never crash
        }
    }
    // Device 0 already served rounds 0 and 1; its masks run to
    // `total_rounds`, leaving exactly `overlap_requests` rounds for the
    // hook to burn mid-capture.
    let (sid0, session0) = sessions.swap_remove(0);
    let hooks = ServeDuringCapture {
        gateway: &gateway,
        lane: Mutex::new((0, sid0, session0, 2, overlap_requests)),
        served: AtomicU64::new(0),
        encrypt: Box::new(|session, device, round| {
            session.encrypt_request(contribution(device, round), PrivateData::None)
        }),
    };
    let start = Instant::now();
    let streamed = gateway.checkpoint_streamed_with_hooks(&hooks).unwrap();
    let streamed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        streamed.tenants[0].slots.len(),
        slots,
        "streamed capture must cover the whole pool"
    );
    let served_during_capture = hooks.served.load(Ordering::Relaxed);
    let telemetry = gateway.telemetry();
    drop(hooks);
    drop(gateway);

    // --- Bit-identity: chain restore vs full-snapshot restore. ---
    let (chain_restore_identical, chain_tail_identical) = {
        let fixture_config = || GatewayConfig {
            slots_per_tenant: 4,
            shards: 1, // deterministic serial drain order: the identity bar
            max_batch: 64,
            max_queue_depth: 256,
            ..GatewayConfig::default()
        };
        let fixture_material =
            ServiceKeyMaterial::generate(&mut Drbg::from_seed([84u8; 32])).unwrap();
        let fixture_tenants = || {
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                fixture_material.secret_bytes(),
            )]
        };
        let fixture_blinding = BlindingService::new([85u8; 32]);
        let fixture_devices = 4usize;
        let fixture_dim = 8usize;
        let fixture_ids: Vec<u64> = (0..fixture_devices as u64).collect();
        let fixture_masks: Vec<Vec<glimmer_core::blinding::MaskShare>> = (0..2)
            .map(|round| fixture_blinding.zero_sum_masks(round, &fixture_ids, fixture_dim))
            .collect();
        let fixture_samples = |device: usize, round: usize| {
            vec![0.1 + 0.08 * device as f64 + 0.04 * round as f64; fixture_dim]
        };
        // One deterministic pre-crash run: serve round 0 everywhere, hand
        // the gateway to `ops` for its two checkpoint calls (serving the
        // dirtying round between them), and return everything the restore
        // needs. Identical seeds make run A and run B the same machine.
        type CheckpointOps<'o> = dyn FnMut(&Gateway, &mut dyn FnMut(&Gateway)) + 'o;
        let run = |ops: &mut CheckpointOps<'_>| {
            let clock = std::sync::Arc::new(ManualClock::new());
            let mut avs = AttestationService::new([86u8; 32]);
            let mut rng = Drbg::from_seed([87u8; 32]);
            let gateway = Gateway::with_clock(
                fixture_config(),
                fixture_tenants(),
                &mut avs,
                &mut Drbg::from_seed([88u8; 32]),
                clock.clone(),
            )
            .unwrap();
            let approved = gateway.measurement(APP).unwrap();
            let mut device_sessions: Vec<(u64, IotDeviceSession)> = Vec::new();
            for i in 0..fixture_devices {
                let (sid, offer) = gateway.open_session(APP).unwrap();
                let (accept, session) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                gateway.complete_session(sid, &accept).unwrap();
                for round in &fixture_masks {
                    gateway.install_mask(sid, &round[i]).unwrap();
                }
                device_sessions.push((sid, session));
            }
            let mut serve = |gateway: &Gateway, pick: &mut dyn FnMut(usize) -> Option<usize>| {
                for (i, (sid, session)) in device_sessions.iter_mut().enumerate() {
                    let Some(round) = pick(i) else { continue };
                    let request = session.encrypt_request(
                        Contribution {
                            app_id: APP.to_string(),
                            client_id: i as u64,
                            round: round as u64,
                            payload: ContributionPayload::IotReadings {
                                samples: fixture_samples(i, round),
                            },
                        },
                        PrivateData::None,
                    );
                    gateway.submit(*sid, request).unwrap();
                }
                gateway.drain_all().unwrap()
            };
            serve(&gateway, &mut |_| Some(0));
            // `ops` checkpoints, then asks us to serve the dirtying round
            // (devices 0..2 at round 1), then checkpoints again.
            ops(&gateway, &mut |gateway| {
                serve(gateway, &mut |i| (i < 2).then_some(1));
            });
            drop(gateway);
            (avs, clock, device_sessions)
        };
        // Post-restore tail: devices 2.. still owe round 1.
        let tail = |gateway: &Gateway,
                    device_sessions: &mut [(u64, IotDeviceSession)]|
         -> Vec<(u64, String)> {
            for (i, (sid, session)) in device_sessions.iter_mut().enumerate().skip(2) {
                let request = session.encrypt_request(
                    Contribution {
                        app_id: APP.to_string(),
                        client_id: i as u64,
                        round: 1,
                        payload: ContributionPayload::IotReadings {
                            samples: fixture_samples(i, 1),
                        },
                    },
                    PrivateData::None,
                );
                gateway.submit(*sid, request).unwrap();
            }
            gateway
                .drain_all()
                .unwrap()
                .iter()
                .map(|r| (r.session_id, format!("{:?}", r.outcome)))
                .collect()
        };

        // Run A: base + delta.
        let mut base_a = None;
        let mut delta_a = None;
        let (mut avs_a, clock_a, mut sessions_a) = run(&mut |gateway, dirty_round| {
            let base = gateway.checkpoint().unwrap();
            dirty_round(gateway);
            delta_a = Some(gateway.checkpoint_delta(&base.chain_base()).unwrap());
            base_a = Some(base);
        });
        // Run B: full snapshots at the same two points (same epoch
        // sequence).
        let mut full_b = None;
        let (mut avs_b, clock_b, mut sessions_b) = run(&mut |gateway, dirty_round| {
            let _ = gateway.checkpoint().unwrap();
            dirty_round(gateway);
            full_b = Some(gateway.checkpoint().unwrap());
        });

        let base_a = base_a.unwrap();
        let delta_a = delta_a.unwrap();
        let restored_a = Gateway::restore_chain_with_clock(
            fixture_config(),
            fixture_tenants(),
            SnapshotChain {
                base: &base_a,
                deltas: std::slice::from_ref(&delta_a),
            },
            &mut avs_a,
            &mut Drbg::from_seed([88u8; 32]),
            clock_a,
        )
        .unwrap();
        let restored_b = Gateway::restore_with_clock(
            fixture_config(),
            fixture_tenants(),
            &full_b.unwrap(),
            &mut avs_b,
            &mut Drbg::from_seed([88u8; 32]),
            clock_b,
        )
        .unwrap();
        let identical = restored_a.checkpoint().unwrap().to_bytes()
            == restored_b.checkpoint().unwrap().to_bytes();
        let tail_a = tail(&restored_a, &mut sessions_a);
        let tail_b = tail(&restored_b, &mut sessions_b);
        let tail_identical = tail_a == tail_b
            && !tail_a.is_empty()
            && tail_a
                .iter()
                .any(|(_, outcome)| outcome.contains("endorsed: true"));
        (identical, tail_identical)
    };

    E18Result {
        slots,
        dirty_slots,
        skipped_slots,
        full_ecalls,
        delta_ecalls,
        ecall_reduction: full_ecalls as f64 / (delta_ecalls as f64).max(1.0),
        full_ms,
        delta_ms,
        wall_speedup: full_ms / delta_ms.max(1e-9),
        full_bytes,
        delta_bytes,
        streamed_ms,
        served_during_capture,
        telemetry_slots_exported: telemetry.checkpoint_slots_exported,
        telemetry_slots_skipped: telemetry.checkpoint_slots_skipped,
        chain_restore_identical,
        chain_tail_identical,
    }
}

/// One row of the E19 socket front-door experiment.
#[derive(Debug, Clone)]
pub struct E19Row {
    /// Concurrent device sessions, each on its own real TCP connection.
    pub sessions: usize,
    /// Requests each session submits.
    pub requests_per_session: usize,
    /// Pool slots (one tenant, `shards: 1` for determinism).
    pub slots: usize,
    /// Requests that produced endorsements (identical on both paths).
    pub endorsed: usize,
    /// Requests rejected by validation (identical on both paths).
    pub rejected: usize,
    /// Wall-clock ms for the in-process blocking driver.
    pub blocking_ms: f64,
    /// Wall-clock ms for the socket path: the same traffic over real
    /// loopback TCP, every connection served by ONE front-door thread.
    pub socket_ms: f64,
    /// OS threads serving the sockets added beyond the in-process baseline
    /// (shard workers included in the baseline) — measured from
    /// `/proc/self/status` mid-serving where available, `None` elsewhere.
    /// The front door spawns exactly one thread (executor + epoll reactor),
    /// so this must be `Some(1)` on Linux.
    pub extra_frontend_threads: Option<usize>,
    /// Sessions simultaneously live once every handshake completed (the
    /// concurrency actually achieved over real sockets).
    pub peak_live_sessions: usize,
    /// Client-issued `Drain` requests needed to collect every reply (the
    /// periodic drainer is off, so the drain order is client-controlled).
    pub drain_calls: u64,
    /// Whether the socket path's drain-sequence-ordered replies
    /// `(session_id, outcome)` were bit-identical — ciphertext bytes
    /// included — to the in-process blocking driver's drain order.
    pub identical_outputs: bool,
}

/// Runs E19: the real socket front door versus the in-process blocking
/// driver, same traffic, same seeds. Phase A is E15's blocking lifecycle
/// (open all → handshake all in device order → masks round-major → each
/// session's stream via `submit_many` → drain-to-empty). Phase B serves an
/// identically-seeded gateway behind [`glimmer_gateway::net::serve`] and
/// drives one `GatewayClient` per session over loopback TCP in lockstep —
/// at most one request outstanding globally, in the exact order Phase A
/// issued its calls — with the server's periodic drainer disabled so reply
/// draining happens only on explicit client `Drain` requests. At
/// `shards: 1` both paths then present each enclave the same sequence of
/// randomness-consuming operations, so sorting the socket replies by the
/// server's global drain sequence must reproduce Phase A's reply stream
/// byte-for-byte.
///
/// One extra connection opens and then goes silent for the whole run: a
/// hung client must cost the front door nothing but its fd.
///
/// # Panics
///
/// Panics if the front door cannot come up (unsupported target) or any
/// lifecycle step fails — E19 is only meaningful on Linux.
#[must_use]
pub fn e19_socket_frontdoor(
    sessions: usize,
    requests_per_session: usize,
    slots: usize,
    seed: [u8; 32],
) -> E19Row {
    use glimmer_core::protocol::BatchOutcome;
    use glimmer_gateway::frontend::AsyncGateway;
    use glimmer_gateway::net::{GatewayClient, ReplyEnvelope};
    use glimmer_gateway::{Gateway, GatewayConfig, NetConfig, TenantConfig};
    use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
    use std::net::TcpStream;

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let workload = GatewayTrafficWorkload::generate(
        &[TenantTrafficSpec {
            name: APP.to_string(),
            devices: sessions,
            requests_per_device: requests_per_session,
            dimension,
            misbehaving_fraction: 0.2,
        }],
        seed,
    );
    let client_ids: Vec<u64> = workload.tenants[0]
        .devices
        .iter()
        .map(|d| d.device_id)
        .collect();
    let blinding = BlindingService::new([31u8; 32]);
    let mask_rounds: Vec<Vec<glimmer_core::blinding::MaskShare>> = (0..requests_per_session)
        .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, dimension))
        .collect();
    let mut rng = Drbg::from_seed(seed);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let config = || GatewayConfig {
        slots_per_tenant: slots,
        // Deterministic single-shard mode, like E15: the bit-identical
        // claim needs one FIFO command stream per enclave.
        shards: 1,
        max_batch: 256,
        max_queue_depth: (sessions * requests_per_session).max(256),
        placement_session_weight: 4,
        platform_config: PlatformConfig::default(),
        // Timer policies off for the comparison run: an idle timeout or a
        // stale sweep firing mid-experiment on a slow host would perturb
        // the op order whose determinism is under test (both have their
        // own ManualClock-driven tests).
        evict_stale_period: None,
        net: NetConfig {
            idle_timeout: None,
            drain_interval: None,
            ..NetConfig::default()
        },
        ..GatewayConfig::default()
    };
    let tenants = || {
        let mut tenant = TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        );
        tenant.quota = glimmer_gateway::TenantQuota {
            max_sessions: sessions.max(1024),
            max_queued: (sessions * requests_per_session).max(4096),
            endorsement_budget: None,
        };
        vec![tenant]
    };
    let contribution =
        |device: &glimmer_workloads::gateway::DeviceTraffic, round: usize| Contribution {
            app_id: APP.to_string(),
            client_id: device.device_id,
            round: round as u64,
            payload: ContributionPayload::IotReadings {
                samples: device.requests[round].clone(),
            },
        };
    let machine_seed = [101u8; 32];
    let device_seed = [102u8; 32];
    let expected_replies = workload.total_requests();
    let streams = workload.session_streams();

    // --- Phase A: the in-process blocking driver (E15's phase structure,
    // bit-for-bit). ---
    let mut avs = AttestationService::new([17u8; 32]);
    let gateway = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    let blocking_start = Instant::now();
    let approved = gateway.measurement(APP).unwrap();
    let opened: Vec<(u64, glimmer_core::channel::ChannelOffer)> = (0..sessions)
        .map(|_| gateway.open_session(APP).unwrap())
        .collect();
    let mut device_rng = Drbg::from_seed(device_seed);
    let mut device_sessions = Vec::with_capacity(sessions);
    for (sid, offer) in opened {
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut device_rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        device_sessions.push((sid, session));
    }
    for round in &mask_rounds {
        for (i, (sid, _)) in device_sessions.iter().enumerate() {
            gateway.install_mask(*sid, &round[i]).unwrap();
        }
    }
    for stream in &streams {
        let device = &workload.tenants[stream.tenant].devices[stream.device];
        let (sid, session) = &mut device_sessions[stream.device];
        let requests: Vec<Vec<u8>> = stream
            .requests
            .iter()
            .map(|&round| session.encrypt_request(contribution(device, round), PrivateData::None))
            .collect();
        gateway.submit_many(*sid, requests).unwrap();
    }
    let blocking_responses = gateway.drain_all().unwrap();
    let blocking_ms = blocking_start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(blocking_responses.len(), expected_replies);
    drop(gateway);

    // --- Phase B: the same traffic over real loopback TCP. ---
    let mut avs = AttestationService::new([17u8; 32]);
    let gateway = Gateway::new(
        config(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed(machine_seed),
    )
    .unwrap();
    // Baseline AFTER the shard workers exist: growth from here on is what
    // serving sockets costs in threads (exactly the front-door thread).
    let baseline_threads = os_threads();
    let gateway = std::sync::Arc::new(gateway);
    let server = glimmer_gateway::net::serve(
        AsyncGateway::from_arc(std::sync::Arc::clone(&gateway)),
        None,
    )
    .expect("E19 needs the socket front door (Linux)");
    let addr = server.addr();

    let socket_start = Instant::now();
    // A hung connection: accepted, registered, then silent forever. The
    // reactor must carry it for free while 1000 live neighbours are served.
    let hung = TcpStream::connect(addr).unwrap();

    let mut clients: Vec<GatewayClient> = (0..sessions)
        .map(|_| {
            let mut client = GatewayClient::connect(addr).unwrap();
            client
                .set_read_timeout(Some(std::time::Duration::from_secs(120)))
                .unwrap();
            client
        })
        .collect();
    // Lockstep lifecycle in device order — each call is one round trip, so
    // the server observes exactly the op order Phase A issued.
    let mut opened = Vec::with_capacity(sessions);
    for client in &mut clients {
        opened.push(client.open_session(APP).unwrap());
    }
    let mut device_rng = Drbg::from_seed(device_seed);
    let mut socket_sessions = Vec::with_capacity(sessions);
    for (client, (sid, offer)) in clients.iter_mut().zip(&opened) {
        let (accept, session) =
            IotDeviceSession::connect(offer, &avs, &approved, &mut device_rng).unwrap();
        client.complete_session(*sid, &accept).unwrap();
        socket_sessions.push((*sid, session));
    }
    let threads_mid_serving = os_threads();
    // Every session's handshake completed and nothing has drained: this is
    // the moment all N TCP-backed sessions are provably live at once.
    let peak_live_sessions = gateway.live_sessions();
    for round in &mask_rounds {
        for (i, client) in clients.iter_mut().enumerate() {
            client
                .install_mask(socket_sessions[i].0, &round[i])
                .unwrap();
        }
    }
    for stream in &streams {
        let device = &workload.tenants[stream.tenant].devices[stream.device];
        let (sid, session) = &mut socket_sessions[stream.device];
        let requests: Vec<Vec<u8>> = stream
            .requests
            .iter()
            .map(|&round| session.encrypt_request(contribution(device, round), PrivateData::None))
            .collect();
        clients[stream.device].submit_many(*sid, requests).unwrap();
    }
    // Client-controlled draining: ask until every reply has been routed.
    let mut drain_calls = 0u64;
    let mut routed_total = 0u64;
    while routed_total < expected_replies as u64 {
        routed_total += clients[0].drain().unwrap();
        drain_calls += 1;
        if routed_total < expected_replies as u64 {
            // The shard worker is still processing; yield rather than spin.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    // Collect each connection's pushed replies and reassemble the global
    // drain order from the server-stamped sequence numbers.
    let mut envelopes: Vec<ReplyEnvelope> = Vec::with_capacity(expected_replies);
    for (i, client) in clients.iter_mut().enumerate() {
        let expected = streams
            .iter()
            .filter(|s| s.device == i)
            .map(|s| s.requests.len())
            .sum::<usize>();
        for _ in 0..expected {
            let envelope = client.next_reply().unwrap();
            assert_eq!(
                envelope.session_id, socket_sessions[i].0,
                "reply routed to the wrong connection"
            );
            envelopes.push(envelope);
        }
    }
    let socket_ms = socket_start.elapsed().as_secs_f64() * 1e3;
    envelopes.sort_by_key(|e| e.drain_seq);
    assert_eq!(envelopes.len(), expected_replies);
    // Every sequence number is accounted for: nothing was dropped or
    // double-routed on the way to the sockets.
    assert!(envelopes
        .iter()
        .enumerate()
        .all(|(i, e)| e.drain_seq == i as u64));

    let identical_outputs = blocking_responses.len() == envelopes.len()
        && blocking_responses
            .iter()
            .zip(envelopes.iter())
            .all(|(b, s)| b.session_id == s.session_id && b.outcome == s.outcome);
    let endorsed = envelopes
        .iter()
        .filter(|e| matches!(e.outcome, BatchOutcome::Reply { endorsed: true, .. }))
        .count();
    let rejected = expected_replies - endorsed;
    let extra_frontend_threads = match (baseline_threads, threads_mid_serving) {
        (Some(before), Some(during)) => Some(during.saturating_sub(before)),
        _ => None,
    };

    drop(hung);
    drop(clients);
    server.stop();

    E19Row {
        sessions,
        requests_per_session,
        slots,
        endorsed,
        rejected,
        blocking_ms,
        socket_ms,
        extra_frontend_threads,
        peak_live_sessions,
        drain_calls,
        identical_outputs,
    }
}

/// E20 result: live rebalancing recovers a deliberately skewed fleet.
#[derive(Debug, Clone)]
pub struct E20Report {
    /// Worker shards in the fleet.
    pub shards: usize,
    /// Pool slots (and sessions — one device per slot).
    pub slots: usize,
    /// Requests submitted per session.
    pub requests_per_session: usize,
    /// Total requests served in each run.
    pub requests: usize,
    /// Endorsements in the even-placement baseline run.
    pub endorsed_even: usize,
    /// Endorsements in the skewed-then-rebalanced run.
    pub endorsed_rebalanced: usize,
    /// Critical-path drain cycles (busiest shard) with even placement.
    pub even_critical_cycles: u64,
    /// Critical-path drain cycles with every slot piled on one shard and
    /// no rebalancing — the congestion the rebalancer must undo.
    pub skewed_critical_cycles: u64,
    /// Critical-path drain cycles after the rebalancer spread the skewed
    /// fleet back out, queued work migrating live with each slot.
    pub rebalanced_critical_cycles: u64,
    /// `skewed_critical_cycles / even_critical_cycles` — how bad the pile-up
    /// was (≈ `shards` when the even placement is balanced).
    pub skew_ratio: f64,
    /// `rebalanced_critical_cycles / even_critical_cycles` — the recovery
    /// bar (the bin asserts ≤ 1.5).
    pub recovery_ratio: f64,
    /// Migrations the rebalancer executed to drain the hot shard.
    pub migrations: usize,
    /// Queued requests that travelled live with the migrated slots.
    pub queued_moved: usize,
    /// Wall time of the skewed run's rebalance loop (migrations only, no
    /// drains).
    pub rebalance_ms: f64,
    /// Whether the rebalanced run's replies are bit-identical (as a set;
    /// drain order legitimately shifts with placement) to the unmigrated
    /// even run's.
    pub replies_identical: bool,
}

/// Runs E20: three identically-seeded single-tenant fleets.
///
/// 1. **Even** — slots in their natural round-robin placement, every
///    session submits, drain. This is the balanced baseline.
/// 2. **Skewed** — every slot is first migrated onto shard 0, so the whole
///    workload queues on one worker; drained without rebalancing, its
///    critical path is the sum the baseline had spread `shards` wide.
/// 3. **Rebalanced** — same skewed start, but after the (identical)
///    submissions a [`Rebalancer`](glimmer_gateway::Rebalancer) ticks until
///    its plan is empty, migrating hot slots — queued work and all — onto
///    idle shards before anything drains.
///
/// Identical seeds make the three fleets' enclaves, sessions, and
/// ciphertexts bit-identical, so the runs differ only in slot placement:
/// replies must match the even run bit for bit (no lost or duplicated
/// endorsements across live migration), and the rebalanced critical path
/// must land back near the even baseline.
#[must_use]
pub fn e20_live_rebalance(
    shards: usize,
    slots_per_shard: usize,
    requests_per_session: usize,
    seed: [u8; 32],
) -> E20Report {
    use glimmer_gateway::{Gateway, GatewayConfig, RebalanceConfig, Rebalancer, TenantConfig};

    const APP: &str = "iot-telemetry.example";
    let dimension = 8usize;
    let slots = shards * slots_per_shard;
    let sessions = slots;

    // One fixture per run, identically seeded: returns the gateway and
    // every request pre-encrypted in submission order.
    let build = || {
        let mut rng = Drbg::from_seed(seed);
        let mut avs = AttestationService::new([20u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let gateway = Gateway::new(
            GatewayConfig {
                slots_per_tenant: slots,
                shards,
                max_batch: 256,
                max_queue_depth: (sessions * requests_per_session).max(256),
                placement_session_weight: 4,
                platform_config: PlatformConfig::default(),
                ..GatewayConfig::default()
            },
            vec![TenantConfig::new(
                APP,
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            )],
            &mut avs,
            &mut rng,
        )
        .unwrap();

        let approved = gateway.measurement(APP).unwrap();
        let client_ids: Vec<u64> = (0..sessions as u64).collect();
        let blinding = BlindingService::new([21u8; 32]);
        let mask_rounds: Vec<_> = (0..requests_per_session as u64)
            .map(|round| blinding.zero_sum_masks(round, &client_ids, dimension))
            .collect();
        let mut device_sessions = Vec::with_capacity(sessions);
        for (i, client_id) in client_ids.iter().enumerate() {
            let (sid, offer) = gateway.open_session(APP).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
            gateway.complete_session(sid, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(sid, &round[i]).unwrap();
            }
            device_sessions.push((sid, *client_id, session));
        }
        let mut encrypted: Vec<(u64, Vec<u8>)> =
            Vec::with_capacity(sessions * requests_per_session);
        for round in 0..requests_per_session as u64 {
            for (sid, client_id, session) in &mut device_sessions {
                let contribution = Contribution {
                    app_id: APP.to_string(),
                    client_id: *client_id,
                    round,
                    payload: ContributionPayload::IotReadings {
                        samples: vec![0.3; dimension],
                    },
                };
                encrypted.push((
                    *sid,
                    session.encrypt_request(contribution, PrivateData::None),
                ));
            }
        }
        (gateway, device_sessions, encrypted)
    };

    // Piles every slot onto shard 0 before any traffic arrives — the
    // deliberate skew. (Dogfoods the same migration path the rebalancer
    // uses, just without queued work yet.)
    let consolidate = |gateway: &Gateway| {
        for load in gateway.slot_loads() {
            if load.shard != 0 {
                gateway.migrate_slot(APP, load.slot_id, 0).unwrap();
            }
        }
    };

    let serve = |gateway: &Gateway, encrypted: Vec<(u64, Vec<u8>)>| {
        for (sid, ciphertext) in encrypted {
            gateway.submit(sid, ciphertext).unwrap();
        }
        gateway.drain_all().unwrap()
    };

    // Replies as a comparable set: (session id, endorsed, decrypted reply).
    // Sorted because drain order legitimately depends on slot placement; the
    // *set* may not. Compared after decryption because transport nonces are
    // drawn from the platform RNG, which the migration's sealed export also
    // advances — the reply *contents* (endorsements included) must still be
    // bit-identical.
    let reply_set = |responses: &[glimmer_gateway::GatewayResponse],
                     devices: &[(u64, u64, IotDeviceSession)]| {
        let mut set: Vec<(u64, bool, String)> = responses
            .iter()
            .map(|r| {
                let glimmer_core::protocol::BatchOutcome::Reply {
                    endorsed,
                    ciphertext,
                } = &r.outcome
                else {
                    panic!("unexpected outcome {:?}", r.outcome);
                };
                let (_, _, session) = devices
                    .iter()
                    .find(|(sid, _, _)| *sid == r.session_id)
                    .expect("reply for unknown session");
                let decrypted = session.decrypt_response(ciphertext).unwrap();
                (r.session_id, *endorsed, format!("{decrypted:?}"))
            })
            .collect();
        set.sort();
        set
    };

    // Run 1: even placement.
    let (even_gateway, even_devices, encrypted) = build();
    let even_responses = serve(&even_gateway, encrypted);
    let even_set = reply_set(&even_responses, &even_devices);
    let even_critical_cycles = even_gateway.stats().critical_path_drain_cycles();

    // Run 2: skewed, never rebalanced — the congestion baseline.
    let (skewed_gateway, _skewed_devices, encrypted) = build();
    consolidate(&skewed_gateway);
    let skewed_responses = serve(&skewed_gateway, encrypted);
    let skewed_critical_cycles = skewed_gateway.stats().critical_path_drain_cycles();
    assert_eq!(
        even_responses.len(),
        skewed_responses.len(),
        "skew must not change how many replies are served"
    );

    // Run 3: skewed, then rebalanced with the work still queued.
    let (rebalanced_gateway, rebalanced_devices, encrypted) = build();
    consolidate(&rebalanced_gateway);
    for (sid, ciphertext) in encrypted {
        rebalanced_gateway.submit(sid, ciphertext).unwrap();
    }
    let mut rebalancer = Rebalancer::new(RebalanceConfig {
        min_imbalance: 1,
        cooldown_ticks: 0,
        max_moves_per_tick: 1,
    });
    let mut migrations = 0usize;
    let mut queued_moved = 0usize;
    let rebalance_start = Instant::now();
    loop {
        let reports = rebalancer.tick(&rebalanced_gateway).unwrap();
        if reports.is_empty() {
            break;
        }
        migrations += reports.len();
        queued_moved += reports.iter().map(|r| r.queued_moved).sum::<usize>();
    }
    let rebalance_ms = rebalance_start.elapsed().as_secs_f64() * 1e3;
    let rebalanced_responses = rebalanced_gateway.drain_all().unwrap();
    let rebalanced_set = reply_set(&rebalanced_responses, &rebalanced_devices);
    let rebalanced_critical_cycles = rebalanced_gateway.stats().critical_path_drain_cycles();

    let endorsed = |set: &[(u64, bool, String)]| set.iter().filter(|(_, e, _)| *e).count();

    E20Report {
        shards,
        slots,
        requests_per_session,
        requests: sessions * requests_per_session,
        endorsed_even: endorsed(&even_set),
        endorsed_rebalanced: endorsed(&rebalanced_set),
        even_critical_cycles,
        skewed_critical_cycles,
        rebalanced_critical_cycles,
        skew_ratio: skewed_critical_cycles as f64 / even_critical_cycles.max(1) as f64,
        recovery_ratio: rebalanced_critical_cycles as f64 / even_critical_cycles.max(1) as f64,
        migrations,
        queued_moved,
        rebalance_ms,
        replies_identical: even_set == rebalanced_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEED: [u8; 32] = [99u8; 32];

    #[test]
    fn e1_federated_beats_single_user() {
        let rows = e1_federated_prediction(&[16], SEED);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].federated_trending);
        assert!(!rows[0].single_user_trending);
        assert!(rows[0].federated_top1 >= rows[0].single_user_top1);
    }

    #[test]
    fn e2_blinded_sums_are_exact_and_masked() {
        let rows = e2_secure_aggregation(&[4, 8], &[16], SEED);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!(row.max_abs_error < 1e-5, "{}", row.max_abs_error);
            assert!(row.masked_fraction > 0.95);
        }
    }

    #[test]
    fn e3_unprotected_round_is_poisoned_and_e4_protected_recovers() {
        let users = 12;
        let unprotected =
            e3_e4_poisoning_sweep(users, &[0.1], &[AttackKind::OutOfRange538], false, SEED);
        let protected =
            e3_e4_poisoning_sweep(users, &[0.1], &[AttackKind::OutOfRange538], true, SEED);
        assert_eq!(unprotected.len(), 1);
        assert_eq!(protected.len(), 1);
        // Unprotected: the 538 contribution skews the model heavily.
        assert!(unprotected[0].l2_from_honest > 1.0);
        assert!(unprotected[0].out_of_range_fraction > 0.0);
        assert_eq!(unprotected[0].rejected, 0);
        // Protected: the poisoned contribution is rejected and quality recovers.
        assert!(protected[0].rejected >= 1);
        assert!(protected[0].l2_from_honest < unprotected[0].l2_from_honest);
        assert_eq!(protected[0].out_of_range_fraction, 0.0);
        assert!(protected[0].trending_top1);
    }

    #[test]
    fn e5_overhead_scales_with_dimension() {
        let rows = e5_overhead(&[16, 256], 2, SEED);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].enclave_cycles_per_contribution > 0);
        assert!(rows[1].enclave_cycles_per_contribution >= rows[0].enclave_cycles_per_contribution);
        assert!(rows[0].ecalls_single >= 1);
        assert!(rows[0].estimated_cycles_split > rows[0].enclave_cycles_per_contribution);
    }

    #[test]
    fn e6_stronger_predicates_catch_more_attacks() {
        let rows = e6_validation_spectrum(16, SEED);
        assert_eq!(rows.len(), 12);
        let find = |level: &str, attack: &str| {
            rows.iter()
                .find(|r| r.level == level && r.attack == attack)
                .unwrap()
        };
        // The 538 attack is caught by every level.
        assert_eq!(
            find("range-only", "out-of-range-538").attack_success_rate,
            0.0
        );
        // The in-range bias slips past the range check but not retraining.
        assert_eq!(find("range-only", "in-range-bias").attack_success_rate, 1.0);
        assert!(find("retrain", "in-range-bias").attack_success_rate < 0.5);
        // Honest contributions pass everywhere.
        for r in &rows {
            assert!(r.honest_acceptance_rate > 0.9, "{} {}", r.level, r.attack);
        }
        // Cost increases with invasiveness.
        assert!(
            find("retrain", "fabricated").mean_predicate_cost
                > find("range-only", "fabricated").mean_predicate_cost
        );
    }

    #[test]
    fn e7_bot_detection_matches_raw_upload_with_one_bit() {
        let result = e7_bot_detection(30, 0.4, SEED);
        assert_eq!(result.sessions, 30);
        assert!(result.bots > 0);
        assert!(result.glimmer_accuracy > 0.8);
        // Same detector, same accuracy as uploading everything.
        assert!((result.glimmer_accuracy - result.raw_upload_accuracy).abs() < 1e-9);
        // But orders of magnitude less data leaves the client.
        assert!(result.glimmer_bytes_per_session < 120);
        assert!(result.raw_bytes_per_session > 200);
        // The auditor's budget bound is enforced.
        assert!(result.auditor_rejections > 0);
        assert_eq!(result.capacity_bound_bits, 32);
    }

    #[test]
    fn e8_remote_glimmer_filters_bad_devices() {
        let result = e8_glimmer_as_a_service(6, 5, SEED);
        assert_eq!(result.devices, 6);
        assert_eq!(result.endorsed + result.rejected, 6);
        assert!(result.endorsed > 0);
        assert!(result.host_enclave_cycles > 0);
        assert!(result.remote_ms_per_device > 0.0);
        assert!(result.local_ms_per_contribution > 0.0);
    }

    #[test]
    fn e11_pooled_gateway_beats_per_device_hosting() {
        let row = e11_gateway_serving(8, 4, 2, SEED);
        assert_eq!(row.sessions, 8);
        assert_eq!(row.endorsed + row.rejected, 8 * 4);
        assert!(row.endorsed > 0);
        // The pool amortizes enclave build + attestation. The simulated
        // enclave-cycle metric is deterministic, so it is asserted always:
        // batching must cut per-request enclave cost by at least an order of
        // magnitude.
        assert!(
            row.pooled_drain_cycles_per_req * 10.0 < row.per_device_cycles_per_req,
            "batched drains did not amortize: {} vs {}",
            row.pooled_drain_cycles_per_req,
            row.per_device_cycles_per_req
        );
        // Wall-clock speedup is reported but not asserted: both timed
        // regions are dominated by identical device-side handshake crypto,
        // and the enclave costs pooling amortizes are *simulated* cycles
        // that consume no wall-clock in this simulator. The steady-state
        // Criterion bench (benches/gateway.rs) is the wall-clock
        // demonstration; this experiment's deterministic cycle metric is
        // the architectural one.
        assert!(row.per_device_ms > 0.0 && row.pooled_ms > 0.0);
    }

    #[test]
    fn e12_sharding_scales_the_cycle_critical_path() {
        let rows = e12_shard_scaling(&[1, 4], 4, 1, 2, SEED);
        assert_eq!(rows.len(), 2);
        // Sharding must not change what is computed: identical endorsement
        // counts and bit-identical total enclave cycles.
        assert_eq!(rows[0].endorsed, rows[1].endorsed);
        assert_eq!(rows[0].endorsed, rows[0].requests, "honest traffic");
        assert_eq!(rows[0].total_drain_cycles, rows[1].total_drain_cycles);
        assert!(rows[0].total_drain_cycles > 0);
        // With one shard the critical path IS the total.
        assert_eq!(rows[0].critical_path_cycles, rows[0].total_drain_cycles);
        assert!((rows[0].cycle_speedup_vs_serial - 1.0).abs() < 1e-12);
        // The acceptance bar: at 4 shards the (deterministic) serving
        // critical path is at least halved — in practice ~quartered, since
        // the 4 slots balance across the 4 shards.
        assert!(
            rows[1].cycle_speedup_vs_serial >= 2.0,
            "4-shard critical path did not reach 2x: {:.2}x (total {} critical {})",
            rows[1].cycle_speedup_vs_serial,
            rows[1].total_drain_cycles,
            rows[1].critical_path_cycles
        );
        assert!(rows[1].cycle_parallelism >= 2.0);
    }

    #[test]
    fn e13_batched_admission_cuts_commands_without_changing_results() {
        let rows = e13_batched_hot_path(8, 4, &[4, 16], 2, SEED);
        assert_eq!(rows.len(), 4);
        let base = &rows[0];
        assert_eq!(base.mode, "submit");
        // The per-request baseline pays exactly one shard-queue command per
        // request.
        assert_eq!(base.submit_commands, base.requests as u64);
        assert!(base.endorsed > 0);
        assert!(base.total_drain_cycles > 0);
        for row in &rows {
            // Batching admission must not change what is computed: identical
            // endorsement counts and — the determinism bar — bit-identical
            // total enclave cycles at `shards: 1`.
            assert_eq!(row.endorsed, base.endorsed, "{}", row.mode);
            assert_eq!(
                row.total_drain_cycles, base.total_drain_cycles,
                "{} drain cycles diverged",
                row.mode
            );
            assert_eq!(row.requests, base.requests);
        }
        // The acceptance bar: every batched path with batch >= 4 issues at
        // least 2x fewer shard-queue commands than per-request submission
        // (at one shard it is ~batch-x: one SubmitMany per call).
        for row in &rows[1..] {
            assert!(row.batch >= 4);
            assert!(
                row.submit_commands * 2 <= base.submit_commands,
                "{}: {} commands vs baseline {}",
                row.mode,
                row.submit_commands,
                base.submit_commands
            );
            assert!(row.command_reduction >= 2.0);
        }
        // The allocation bar is asserted by the dedicated E13 binary (a
        // single-purpose process), not here: under `count-allocs` the
        // global counters would also see every *other* test running in
        // this process, so the per-region deltas are only trustworthy in
        // the binary. Without the feature the column must read zero.
        if !crate::alloc_track::counting_enabled() {
            assert!(rows.iter().all(|r| r.allocs_per_req == 0.0));
        }
    }

    #[test]
    fn e14_restore_cuts_provisioning_ecalls_without_changing_outcomes() {
        let row = e14_restart_recovery(8, 4, 4, SEED);
        assert!(row.pre_endorsed > 0, "pre-crash traffic must endorse");
        // Recovery changes cost, never outcomes.
        assert_eq!(row.post_endorsed_cold, row.post_endorsed_restore);
        // Zero re-provisioning on restore: one IMPORT_STATE ECALL per slot.
        assert_eq!(row.restore_ready_ecalls, row.slots as u64);
        // The acceptance bar: >=10x fewer provisioning ECALLs than a cold
        // rebuild (which pays per-slot provisioning plus per-session
        // handshakes and mask installs).
        assert!(
            row.ecall_reduction >= 10.0,
            "got only {:.1}x",
            row.ecall_reduction
        );
        assert!(row.snapshot_bytes > 0);
    }

    #[test]
    fn e15_async_frontend_reproduces_blocking_outputs_bit_for_bit() {
        let row = e15_async_frontend(16, 3, 2, SEED);
        assert_eq!(row.sessions, 16);
        assert_eq!(row.endorsed + row.rejected, 16 * 3);
        assert!(row.endorsed > 0, "honest majority must endorse");
        assert!(row.rejected > 0, "misbehaving fraction must reject");
        // The determinism bar: the async front-end changes costs, never
        // outcomes — reply sequences identical down to the ciphertexts.
        assert!(row.identical_outputs);
        // All sessions were live at once on one executor...
        assert_eq!(row.peak_live_sessions, 16);
        // ...which spawned no threads of its own (measurable on Linux).
        if let Some(extra) = row.extra_frontend_threads {
            assert_eq!(extra, 0, "executor must not spawn threads");
        }
        // Scheduling-event counts are timing-dependent — a completion the
        // worker delivers before the task's first poll resolves inline and
        // consumes no wake — so only the guaranteed floor is asserted:
        // every task (16 sessions plus the submitter/drainer) is scheduled
        // once at spawn and polled at least once.
        const TASKS: usize = 16 + 1;
        assert!(row.executor_wakeups as usize >= TASKS);
        assert!(row.executor_polls as usize >= TASKS);
        // A pop never polls without a push: polls cannot exceed wakeups.
        assert!(row.executor_polls <= row.executor_wakeups);
    }

    #[test]
    fn e16_telemetry_observes_without_steering() {
        let report = e16_telemetry(8, 4, 2, 1, SEED);
        assert_eq!(report.requests, 32);
        assert!(report.endorsed > 0, "honest majority must endorse");
        // Every submit in this workload is well-formed, so admission
        // accepted exactly the request count — and the typed counter made
        // it into the exposition snapshot.
        assert_eq!(report.accepted, 32);
        assert!(report.sample_count > 0);
        // The ManualClock sub-check: a sampled trace carried all five
        // stages with the exact injected timestamps, monotonically.
        assert!(report.trace_complete, "trace missing stages or timestamps");
        assert!(report.trace_monotonic);
        // Text and JSON renderings parse back to the identical samples,
        // with the p50/p99 series present for ECALL and queue-wait.
        assert!(report.round_trip_ok);
        assert!(report.ecall_p99_nanos >= report.ecall_p50_nanos);
        assert!(report.queue_wait_p99_nanos >= report.queue_wait_p50_nanos);
        // The timing and allocation bars (overhead within 5%, recording
        // allocation-free) are asserted by the dedicated E16 binary: wall
        // clock is too noisy for a unit test, and under `count-allocs` the
        // global counters would also see every other test in this process.
        // Without the feature the allocation columns must read zero.
        assert!(report.serve_ms_on > 0.0 && report.serve_ms_off > 0.0);
        if !crate::alloc_track::counting_enabled() {
            assert_eq!(report.record_allocs, 0);
            assert_eq!(report.telemetry_allocs_total, 0);
            assert_eq!(report.allocs_per_req_on, 0.0);
            assert_eq!(report.allocs_per_req_off, 0.0);
        }
    }

    #[test]
    fn e17_replay_ingest_is_exact_and_bit_identical() {
        let result = e17_replay_ingest(4_000, &[1, 4], 1, 6, 3, SEED);
        assert_eq!(result.parse_records, 4_000);
        assert!(result.parse_bytes > 0);
        assert_eq!(result.loader_rows.len(), 2);
        for row in &result.loader_rows {
            assert_eq!(row.records, 4_000);
            assert!(
                row.exactly_once,
                "readers={} lost or duplicated",
                row.readers
            );
        }
        // The chunk partition's critical path shrinks with reader count —
        // the deterministic speedup bar holds even on a single-core host.
        let four = &result.loader_rows[1];
        assert_eq!(four.readers, 4);
        assert!(
            four.det_speedup >= 2.0,
            "4-reader critical path speedup {:.2} < 2",
            four.det_speedup
        );
        // End-to-end: the replayed file drives the gateway to the exact
        // same response stream as the in-process per-record baseline.
        assert_eq!(result.serve_records, 36);
        // The harness provisions sessions only for devices the scenario
        // actually names, so the count is bounded by (not necessarily
        // equal to) tenants × devices_per_tenant.
        assert!(result.serve_sessions > 0 && result.serve_sessions <= 12);
        assert!(result.bit_identical, "replay diverged from baseline");
        assert_eq!(result.replay_endorsed, result.baseline_endorsed);
        assert!(result.replay_endorsed > 0, "honest records must endorse");
        assert_eq!(result.parse_errors, 0);
        // Loader accounting surfaced through the telemetry hub.
        assert_eq!(result.telemetry_ingest_parsed, 36);
        assert_eq!(result.telemetry_ingest_parse_errors, 0);
        assert_eq!(
            result.telemetry_ingest_quota_rejected,
            result.quota_rejected
        );
    }

    #[test]
    fn e18_delta_checkpoints_scale_with_dirty_slots() {
        // 16 slots, 1 dirty: the ECALL ratio is exact and deterministic
        // (16 EXPORT_STATEs vs 1), the wall-clock ratio is reported but
        // only loosely gated here (the bin asserts the full 5x bar at the
        // 40-slot scale).
        let r = e18_incremental_checkpoint(16, 1, 16, 2, 4, SEED);
        assert_eq!(r.slots, 16);
        assert_eq!(r.dirty_slots, 1, "exactly the re-served slot is dirty");
        assert_eq!(r.skipped_slots, 15);
        assert_eq!(r.full_ecalls, 16);
        assert_eq!(r.delta_ecalls, 1);
        assert!(r.ecall_reduction >= 10.0);
        assert!(r.full_ms > 0.0 && r.delta_ms > 0.0);
        assert!(r.delta_bytes < r.full_bytes, "deltas must be smaller");
        assert!(
            r.served_during_capture > 0,
            "no request was served during the streamed capture"
        );
        assert!(r.chain_restore_identical, "chain restore diverged");
        assert!(r.chain_tail_identical, "post-restore serving diverged");
        // Telemetry saw both the forced exports and the delta skips.
        assert!(r.telemetry_slots_exported > 0);
        assert_eq!(r.telemetry_slots_skipped, 15 * 2, "15 skips x 2 repeats");
    }

    #[test]
    fn e20_rebalancing_recovers_a_skewed_fleet() {
        // 2 shards, 4 slots, all piled on shard 0: the skewed critical path
        // is the whole workload, the rebalanced one must come back to the
        // even baseline (the planner's end state here is exactly even, so
        // the 1.5x bin bar is met with margin).
        let r = e20_live_rebalance(2, 2, 2, SEED);
        assert_eq!(r.slots, 4);
        assert!(r.skew_ratio > 1.5, "skew too mild: {:.2}", r.skew_ratio);
        assert!(
            r.recovery_ratio <= 1.5,
            "recovery bar missed: {:.2}",
            r.recovery_ratio
        );
        assert!(r.migrations > 0);
        assert!(r.queued_moved > 0, "no queued work travelled");
        assert!(r.replies_identical, "replies diverged across migration");
        assert_eq!(r.endorsed_even, r.endorsed_rebalanced);
    }

    #[test]
    fn e9_blinding_defeats_inversion() {
        let result = e9_model_inversion(10, SEED);
        assert!(result.raw_precision > 0.9);
        assert!(result.raw_recall > 0.9);
        assert!(result.blinded_precision < 0.5);
    }

    #[test]
    fn e10_all_shipped_glimmers_are_verifiable_and_small() {
        let rows = e10_tcb_accounting();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.verifiable, "{}", row.name);
            assert_eq!(row.violations, 0);
            assert!(row.descriptor_bytes < 4096, "{}", row.descriptor_bytes);
            assert!(row.epc_kib < 1024);
        }
        // The retrain Glimmer has a larger TCB than the range-only one.
        let range = rows.iter().find(|r| r.name.contains("range-only")).unwrap();
        let retrain = rows.iter().find(|r| r.name.contains("retrain")).unwrap();
        assert!(retrain.descriptor_bytes > range.descriptor_bytes);
    }
}
