//! Experiment harness for the Glimmers reproduction.
//!
//! The paper (HotOS 2017) has no measurement tables; its figures are
//! architecture and scenario illustrations. EXPERIMENTS.md therefore defines
//! ten experiments (E1–E10) derived from the figures, worked examples, and
//! quantitative claims, and this crate implements each one as a reusable
//! function plus a binary that prints the corresponding table. The Criterion
//! benches under `benches/` cover the micro-benchmarks (crypto, enclave
//! transitions, blinding, validation, end-to-end pipeline).

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::*;
