//! Experiment harness for the Glimmers reproduction.
//!
//! The paper (HotOS 2017) has no measurement tables; its figures are
//! architecture and scenario illustrations. This crate therefore defines
//! the experiments derived from the figures, worked examples, and
//! quantitative claims — E1–E10 from the paper plus E11 (the gateway
//! serving comparison), E12 (shard-per-core runtime scaling), E13 (the
//! batched, allocation-lean hot path), E14 (restart recovery: cold
//! rebuild vs sealed checkpoint restore), E15 (the async session
//! front-end: ≥1000 concurrent sessions on one executor thread,
//! bit-identical to the blocking driver), and E16 (the telemetry layer:
//! serving overhead with observability on vs off, allocation-free
//! recording, deterministic sampled traces, round-tripping exposition
//! formats), E17 (million-device replay ingest: a chunked parallel
//! scenario loader feeding the batched hot path, bit-identical to the
//! in-process driver), and E18 (incremental + streamed checkpoints:
//! per-slot dirty epochs make delta captures scale with the dirty set,
//! streamed capture overlaps serving, and chain restore is byte-identical
//! to full-snapshot restore) — and implements each one as a
//! reusable function plus a binary that prints the corresponding table.
//! The Criterion benches under `benches/` cover the micro-benchmarks
//! (crypto, enclave transitions, blinding, validation, end-to-end
//! pipeline).

// `deny`, not `forbid`: the opt-in `count-allocs` feature installs a
// counting global allocator, whose `GlobalAlloc` impl is necessarily
// `unsafe` and carries a scoped `allow` (see `alloc_track`).
#![deny(unsafe_code)]

pub mod alloc_track;
pub mod experiments;
pub mod ingest;
pub mod report;

pub use experiments::*;
pub use ingest::{ingest, IngestConfig, IngestMode, IngestReport, Pacing, ReplayHarness};
pub use report::BenchReport;
