//! Experiment harness for the Glimmers reproduction.
//!
//! The paper (HotOS 2017) has no measurement tables; its figures are
//! architecture and scenario illustrations. This crate therefore defines
//! twelve experiments derived from the figures, worked examples, and
//! quantitative claims — E1–E10 from the paper plus E11 (the gateway
//! serving comparison) and E12 (shard-per-core runtime scaling) — and
//! implements each one as a reusable function plus a binary that prints
//! the corresponding table. The Criterion benches under `benches/` cover
//! the micro-benchmarks (crypto, enclave transitions, blinding,
//! validation, end-to-end pipeline).

#![forbid(unsafe_code)]

pub mod experiments;

pub use experiments::*;
