//! Property-based tests for the wire format.

use glimmer_wire::snapshot::{crc32, SnapshotFrame, SNAPSHOT_VERSION};
use glimmer_wire::{Decoder, Encoder, Frame, WireError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn varint_round_trip(v in any::<u64>()) {
        let mut enc = Encoder::new();
        enc.put_varint(v);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        prop_assert_eq!(dec.get_varint().unwrap(), v);
        prop_assert!(dec.is_exhausted());
    }

    #[test]
    fn mixed_sequence_round_trip(
        a in any::<u8>(),
        b in any::<u64>(),
        c in any::<i64>(),
        d in any::<f64>(),
        s in "[a-zA-Z0-9 ]{0,40}",
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        flag in any::<bool>(),
        vals in proptest::collection::vec(any::<u64>(), 0..32),
    ) {
        let mut enc = Encoder::new();
        enc.put_u8(a);
        enc.put_u64(b);
        enc.put_i64(c);
        enc.put_f64(d);
        enc.put_str(&s);
        enc.put_bytes(&bytes);
        enc.put_bool(flag);
        enc.put_u64_vec(&vals);
        let encoded = enc.into_bytes();

        let mut dec = Decoder::new(&encoded);
        prop_assert_eq!(dec.get_u8().unwrap(), a);
        prop_assert_eq!(dec.get_u64().unwrap(), b);
        prop_assert_eq!(dec.get_i64().unwrap(), c);
        let decoded_f = dec.get_f64().unwrap();
        prop_assert!(decoded_f == d || (decoded_f.is_nan() && d.is_nan()));
        prop_assert_eq!(dec.get_str().unwrap(), s);
        prop_assert_eq!(dec.get_bytes().unwrap(), bytes);
        prop_assert_eq!(dec.get_bool().unwrap(), flag);
        prop_assert_eq!(dec.get_u64_vec().unwrap(), vals);
        dec.finish().unwrap();
    }

    #[test]
    fn borrowed_decodes_agree_with_owned(
        s in "[a-zA-Z0-9 àéïöü]{0,40}",
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut enc = Encoder::new();
        enc.put_str(&s);
        enc.put_bytes(&bytes);
        let encoded = enc.into_bytes();

        let mut owned = Decoder::new(&encoded);
        let mut borrowed = Decoder::new(&encoded);
        prop_assert_eq!(owned.get_str().unwrap(), borrowed.get_str_ref().unwrap());
        prop_assert_eq!(owned.get_bytes().unwrap(), borrowed.get_bytes_ref().unwrap());
        borrowed.finish().unwrap();

        // On arbitrary garbage, the two paths agree on success/failure.
        let mut owned = Decoder::new(&bytes);
        let mut borrowed = Decoder::new(&bytes);
        prop_assert_eq!(owned.get_bytes().ok(), borrowed.get_bytes_ref().ok().map(<[u8]>::to_vec));
        let mut owned = Decoder::new(&bytes);
        let mut borrowed = Decoder::new(&bytes);
        prop_assert_eq!(owned.get_str().ok(), borrowed.get_str_ref().ok().map(str::to_string));
    }

    #[test]
    fn frame_round_trip(msg_type in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let frame = Frame::new(msg_type, payload);
        prop_assert_eq!(Frame::from_bytes(&frame.to_bytes()).unwrap(), frame);
    }

    #[test]
    fn decoder_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, decoding returns a Result rather than panicking.
        let mut dec = Decoder::new(&garbage);
        let _ = dec.get_varint();
        let _ = dec.get_bytes();
        let _ = dec.get_str();
        let _ = dec.get_u64_vec();
        let _ = Frame::from_bytes(&garbage);
    }

    #[test]
    fn truncated_frames_error(msg_type in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 1..128), cut in 1usize..64) {
        let frame = Frame::new(msg_type, payload);
        let bytes = frame.to_bytes();
        let cut = cut.min(bytes.len() - 1).max(1);
        let truncated = &bytes[..bytes.len() - cut];
        prop_assert!(Frame::from_bytes(truncated).is_err());
    }

    // --- Snapshot envelope (checkpoint/restore persistence format). ---

    #[test]
    fn snapshot_round_trip(
        kind in any::<u16>(),
        epoch in any::<u64>(),
        created in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = SnapshotFrame { kind, epoch, created_at_nanos: created, payload };
        let bytes = frame.to_bytes();
        prop_assert_eq!(SnapshotFrame::from_bytes(&bytes).unwrap(), frame);
    }

    #[test]
    fn snapshot_with_structured_payload_round_trips(
        // A payload shaped like what the gateway snapshots: an arbitrary
        // session table (id, tenant, slot, opened_at rows) plus quota-gauge
        // counters, encoded with the same Encoder primitives.
        sessions in proptest::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            0..64,
        ),
        gauges in proptest::collection::vec(any::<u64>(), 0..16),
        epoch in any::<u64>(),
    ) {
        let mut enc = Encoder::new();
        enc.put_varint(sessions.len() as u64);
        for (id, tenant, slot, opened) in &sessions {
            enc.put_u64(*id);
            enc.put_varint(*tenant);
            enc.put_varint(*slot);
            enc.put_u64(*opened);
        }
        enc.put_varint(gauges.len() as u64);
        for g in &gauges {
            enc.put_u64(*g);
        }
        let frame = SnapshotFrame { kind: 1, epoch, created_at_nanos: 0, payload: enc.into_bytes() };
        let decoded = SnapshotFrame::from_bytes(&frame.to_bytes()).unwrap();
        let mut dec = Decoder::new(&decoded.payload);
        let n = dec.get_varint().unwrap() as usize;
        let mut got = Vec::with_capacity(n);
        for _ in 0..n {
            got.push((
                dec.get_u64().unwrap(),
                dec.get_varint().unwrap(),
                dec.get_varint().unwrap(),
                dec.get_u64().unwrap(),
            ));
        }
        prop_assert_eq!(got, sessions);
        let m = dec.get_varint().unwrap() as usize;
        let mut got_gauges = Vec::with_capacity(m);
        for _ in 0..m {
            got_gauges.push(dec.get_u64().unwrap());
        }
        prop_assert_eq!(got_gauges, gauges);
        dec.finish().unwrap();
    }

    #[test]
    fn snapshot_truncation_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let frame = SnapshotFrame { kind: 1, epoch: 3, created_at_nanos: 9, payload };
        let bytes = frame.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // strictly < len
        prop_assert!(SnapshotFrame::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn snapshot_bit_flip_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let frame = SnapshotFrame { kind: 7, epoch: 11, created_at_nanos: 13, payload };
        let mut bytes = frame.to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        let err = SnapshotFrame::from_bytes(&bytes).expect_err("flip must be detected");
        prop_assert!(matches!(
            err,
            WireError::ChecksumMismatch { .. }
                | WireError::BadMagic
                | WireError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn snapshot_version_skew_is_a_typed_error(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        skew in 1u8..=255,
    ) {
        let frame = SnapshotFrame { kind: 1, epoch: 0, created_at_nanos: 0, payload };
        let mut bytes = frame.to_bytes();
        bytes[4] = SNAPSHOT_VERSION.wrapping_add(skew);
        prop_assert_eq!(
            SnapshotFrame::from_bytes(&bytes),
            Err(WireError::UnsupportedVersion(SNAPSHOT_VERSION.wrapping_add(skew)))
        );
    }

    #[test]
    fn snapshot_decode_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = SnapshotFrame::from_bytes(&garbage);
        let _ = crc32(&garbage);
    }
}
