//! The wire encoder.

/// Appends primitive values to a growable buffer in the wire format.
///
/// Integers are little-endian; variable-length integers use LEB128; byte
/// strings and UTF-8 strings are varint-length-prefixed.
///
/// # Examples
///
/// ```
/// use glimmer_wire::Encoder;
/// let mut enc = Encoder::new();
/// enc.put_u32(7);
/// enc.put_str("hi");
/// let bytes = enc.into_bytes();
/// assert_eq!(bytes.len(), 4 + 1 + 2);
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Creates an encoder with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder and returns the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The bytes written so far, without consuming the encoder.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Bytes the buffer can hold before reallocating.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Clears the encoder for reuse, keeping the allocated capacity.
    ///
    /// This is the allocation-free hot path: a long-lived encoder that is
    /// `reset` between messages stops allocating once it has grown to the
    /// workload's steady-state message size (see
    /// [`WireCodec::encode_into`](crate::WireCodec::encode_into)).
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a boolean as a single 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes an LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                break;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a varint-length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a varint-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Writes a fixed 32-byte array (no length prefix).
    pub fn put_array32(&mut self, bytes: &[u8; 32]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed vector of `u64` values.
    pub fn put_u64_vec(&mut self, values: &[u64]) {
        self.put_varint(values.len() as u64);
        for v in values {
            self.put_u64(*v);
        }
    }

    /// Writes a length-prefixed vector of `f64` values.
    pub fn put_f64_vec(&mut self, values: &[f64]) {
        self.put_varint(values.len() as u64);
        for v in values {
            self.put_f64(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_of_primitives() {
        let mut enc = Encoder::new();
        assert!(enc.is_empty());
        enc.put_u8(1);
        enc.put_u16(2);
        enc.put_u32(3);
        enc.put_u64(4);
        enc.put_i64(-5);
        enc.put_f64(1.5);
        enc.put_bool(true);
        assert_eq!(enc.len(), 1 + 2 + 4 + 8 + 8 + 8 + 1);
    }

    #[test]
    fn varint_sizes() {
        let sizes = [
            (0u64, 1usize),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::MAX, 10),
        ];
        for (value, expected) in sizes {
            let mut enc = Encoder::new();
            enc.put_varint(value);
            assert_eq!(enc.len(), expected, "varint({value})");
        }
    }

    #[test]
    fn reset_keeps_capacity_and_as_slice_views_without_consuming() {
        let mut enc = Encoder::with_capacity(4);
        enc.put_bytes(b"steady-state message body");
        let grown = enc.capacity();
        assert!(grown >= enc.len());
        assert_eq!(&enc.as_slice()[1..], b"steady-state message body");

        enc.reset();
        assert!(enc.is_empty());
        assert_eq!(enc.capacity(), grown, "reset must not shed capacity");
        enc.put_str("hi");
        assert_eq!(enc.as_slice(), &[2, b'h', b'i']);
        // Re-encoding something that fits never reallocates.
        assert_eq!(enc.capacity(), grown);
    }

    #[test]
    fn prefixed_collections() {
        let mut enc = Encoder::with_capacity(64);
        enc.put_bytes(b"abc");
        enc.put_str("de");
        enc.put_u64_vec(&[1, 2, 3]);
        enc.put_f64_vec(&[0.5]);
        enc.put_array32(&[7u8; 32]);
        enc.put_raw(b"xy");
        assert_eq!(enc.len(), (1 + 3) + (1 + 2) + (1 + 24) + (1 + 8) + 32 + 2);
        let bytes = enc.into_bytes();
        assert_eq!(&bytes[1..4], b"abc");
    }
}
