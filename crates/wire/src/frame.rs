//! Message framing.
//!
//! Every message that crosses the client/service trust boundary is wrapped in
//! a [`Frame`]: magic, version, a message-type tag, and a length-prefixed
//! payload. The runtime auditor of Section 4.1 parses frames (never raw
//! bytes) when it bounds what an encrypted validation predicate is allowed to
//! send back to the service.

use crate::{Decoder, Encoder, Result, WireError};

/// Magic bytes identifying a Glimmers frame.
pub const FRAME_MAGIC: [u8; 4] = *b"GLMR";

/// Current frame version.
pub const FRAME_VERSION: u8 = 1;

/// A framed wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Message type tag (namespaced by the protocol using the frame).
    pub msg_type: u16,
    /// Opaque payload bytes (themselves wire-encoded by the protocol).
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a frame.
    #[must_use]
    pub fn new(msg_type: u16, payload: Vec<u8>) -> Self {
        Frame { msg_type, payload }
    }

    /// Serializes the frame.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(4 + 1 + 2 + 5 + self.payload.len());
        enc.put_raw(&FRAME_MAGIC);
        enc.put_u8(FRAME_VERSION);
        enc.put_u16(self.msg_type);
        enc.put_bytes(&self.payload);
        enc.into_bytes()
    }

    /// Parses a frame, requiring the input to contain exactly one frame.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.get_raw(4)?;
        if magic != FRAME_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = dec.get_u8()?;
        if version != FRAME_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        let msg_type = dec.get_u16()?;
        let payload = dec.get_bytes()?;
        dec.finish()?;
        Ok(Frame { msg_type, payload })
    }

    /// Total serialized size of this frame in bytes.
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let frame = Frame::new(42, b"hello".to_vec());
        let bytes = frame.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes).unwrap(), frame);
        assert_eq!(frame.wire_len(), bytes.len());
    }

    #[test]
    fn empty_payload() {
        let frame = Frame::new(0, Vec::new());
        let parsed = Frame::from_bytes(&frame.to_bytes()).unwrap();
        assert!(parsed.payload.is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_trailing() {
        let frame = Frame::new(7, b"x".to_vec());
        let bytes = frame.to_bytes();

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(Frame::from_bytes(&bad_magic), Err(WireError::BadMagic));

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            Frame::from_bytes(&bad_version),
            Err(WireError::UnsupportedVersion(99))
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Frame::from_bytes(&trailing),
            Err(WireError::TrailingBytes(1))
        ));

        assert!(Frame::from_bytes(&bytes[..3]).is_err());
    }
}
