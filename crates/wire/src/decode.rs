//! The wire decoder.

use crate::{Result, WireError};

/// Maximum length accepted for a single length-prefixed field (16 MiB).
///
/// The bound exists so that a malicious peer cannot make the decoder attempt
/// an enormous allocation; the Glimmer's runtime auditor relies on this when
/// parsing untrusted frames.
pub const MAX_FIELD_LEN: u64 = 16 * 1024 * 1024;

/// Reads primitive values from a byte slice in the wire format.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    offset: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, offset: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.offset
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails with [`WireError::TrailingBytes`] unless the input is exhausted.
    pub fn finish(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.data[self.offset..self.offset + n];
        self.offset += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a 0/1 boolean byte, rejecting other values.
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::InvalidBool(other)),
        }
    }

    /// Reads an LEB128 varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        for i in 0..10 {
            let byte = self.get_u8()?;
            let part = (byte & 0x7F) as u64;
            // The 10th byte may only contribute one bit.
            if i == 9 && byte > 1 {
                return Err(WireError::VarintTooLong);
            }
            result |= part << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
        Err(WireError::VarintTooLong)
    }

    /// Reads `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>> {
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a fixed 32-byte array.
    pub fn get_array32(&mut self) -> Result<[u8; 32]> {
        let b = self.take(32)?;
        let mut out = [0u8; 32];
        out.copy_from_slice(b);
        Ok(out)
    }

    /// Reads a varint-length-prefixed byte string as a borrow of the input.
    ///
    /// This is the zero-copy fast path: the returned slice aliases the
    /// decoder's underlying buffer, so hot paths (the gateway's
    /// `PROCESS_BATCH` decoding) can hand ciphertexts onward without an
    /// allocation per field. Use [`Decoder::get_bytes`] when an owned copy
    /// is actually needed.
    pub fn get_bytes_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()?;
        if len > MAX_FIELD_LEN {
            return Err(WireError::LengthOverflow(len));
        }
        self.take(len as usize)
    }

    /// Reads a varint-length-prefixed UTF-8 string as a borrow of the input
    /// (zero-copy counterpart of [`Decoder::get_str`]).
    pub fn get_str_ref(&mut self) -> Result<&'a str> {
        let bytes = self.get_bytes_ref()?;
        core::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a varint-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        Ok(self.get_bytes_ref()?.to_vec())
    }

    /// Reads a varint-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        Ok(self.get_str_ref()?.to_string())
    }

    /// Reads a length-prefixed vector of `u64` values.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.get_varint()?;
        if len > MAX_FIELD_LEN / 8 {
            return Err(WireError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed vector of `f64` values.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>> {
        let len = self.get_varint()?;
        if len > MAX_FIELD_LEN / 8 {
            return Err(WireError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity(len as usize);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Encoder;

    #[test]
    fn primitive_round_trip() {
        let mut enc = Encoder::new();
        enc.put_u8(0xAB);
        enc.put_u16(0x1234);
        enc.put_u32(0xDEADBEEF);
        enc.put_u64(u64::MAX - 1);
        enc.put_i64(-42);
        enc.put_f64(3.5);
        enc.put_bool(false);
        enc.put_varint(300);
        enc.put_bytes(b"payload");
        enc.put_str("naïve");
        enc.put_u64_vec(&[9, 8]);
        enc.put_f64_vec(&[0.25, 0.75]);
        enc.put_array32(&[3u8; 32]);

        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u8().unwrap(), 0xAB);
        assert_eq!(dec.get_u16().unwrap(), 0x1234);
        assert_eq!(dec.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_f64().unwrap(), 3.5);
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.get_varint().unwrap(), 300);
        assert_eq!(dec.get_bytes().unwrap(), b"payload");
        assert_eq!(dec.get_str().unwrap(), "naïve");
        assert_eq!(dec.get_u64_vec().unwrap(), vec![9, 8]);
        assert_eq!(dec.get_f64_vec().unwrap(), vec![0.25, 0.75]);
        assert_eq!(dec.get_array32().unwrap(), [3u8; 32]);
        assert!(dec.is_exhausted());
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_and_invalid_data() {
        let mut dec = Decoder::new(&[0x01]);
        assert!(dec.get_u32().is_err());

        // Invalid boolean byte.
        let mut dec = Decoder::new(&[5]);
        assert_eq!(dec.get_bool(), Err(WireError::InvalidBool(5)));

        // Invalid UTF-8.
        let mut enc = Encoder::new();
        enc.put_bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str(), Err(WireError::InvalidUtf8));

        // Length prefix larger than the remaining data.
        let mut enc = Encoder::new();
        enc.put_varint(100);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_bytes().is_err());

        // Oversized length prefix is rejected before allocation.
        let mut enc = Encoder::new();
        enc.put_varint(MAX_FIELD_LEN + 1);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(dec.get_bytes(), Err(WireError::LengthOverflow(_))));

        // Trailing bytes are reported by finish().
        let dec = Decoder::new(&[1, 2, 3]);
        assert_eq!(dec.finish(), Err(WireError::TrailingBytes(3)));
    }

    #[test]
    fn borrowed_variants_agree_with_owned_and_outlive_the_decoder() {
        let mut enc = Encoder::new();
        enc.put_bytes(b"ciphertext-bytes");
        enc.put_str("naïve");
        enc.put_bytes(b"");
        let bytes = enc.into_bytes();

        // The borrows tie to the input buffer, not the decoder value: they
        // remain usable after the decoder itself is dropped.
        let (raw, s, empty) = {
            let mut dec = Decoder::new(&bytes);
            let raw = dec.get_bytes_ref().unwrap();
            let s = dec.get_str_ref().unwrap();
            let empty = dec.get_bytes_ref().unwrap();
            dec.finish().unwrap();
            (raw, s, empty)
        };
        assert_eq!(raw, b"ciphertext-bytes");
        assert_eq!(s, "naïve");
        assert!(empty.is_empty());

        // And the owned variants decode identically.
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_bytes().unwrap(), raw);
        assert_eq!(dec.get_str().unwrap(), s);

        // Error behaviour matches the owned paths.
        let mut truncated = Encoder::new();
        truncated.put_varint(100);
        let truncated = truncated.into_bytes();
        assert!(Decoder::new(&truncated).get_bytes_ref().is_err());

        let mut oversized = Encoder::new();
        oversized.put_varint(MAX_FIELD_LEN + 1);
        let oversized = oversized.into_bytes();
        assert!(matches!(
            Decoder::new(&oversized).get_bytes_ref(),
            Err(WireError::LengthOverflow(_))
        ));

        let mut invalid = Encoder::new();
        invalid.put_bytes(&[0xFF, 0xFE]);
        let invalid = invalid.into_bytes();
        assert_eq!(
            Decoder::new(&invalid).get_str_ref(),
            Err(WireError::InvalidUtf8)
        );
    }

    #[test]
    fn varint_edge_cases() {
        for value in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_varint(value);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_varint().unwrap(), value);
            assert!(dec.is_exhausted());
        }
        // An over-long varint (11 continuation bytes) is rejected.
        let mut dec = Decoder::new(&[0x80u8; 11]);
        assert_eq!(dec.get_varint(), Err(WireError::VarintTooLong));
        // A 10-byte varint whose final byte exceeds one bit is rejected.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x02);
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_varint(), Err(WireError::VarintTooLong));
    }
}
