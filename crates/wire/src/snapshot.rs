//! Versioned, CRC-guarded snapshot frames.
//!
//! A gateway restart must not rebuild every enclave from scratch: the
//! serving state (sealed per-slot enclave exports, the session table, quota
//! counters) is captured into a *snapshot* that a later process restores
//! from. Snapshot bytes live outside any trust boundary — on disk, in object
//! storage, copied between operator shells — so the envelope defends against
//! the failure modes persistence actually has: torn writes (truncation),
//! bit rot (corruption), and version skew between writer and reader. The
//! confidential parts of a snapshot are sealed *inside* the payload by the
//! enclaves themselves; the envelope's job is integrity and honest, typed
//! rejection.
//!
//! Layout (all little-endian, reusing the crate's [`Encoder`]/[`Decoder`]
//! primitives):
//!
//! ```text
//! magic "GSNP" | version u8 | kind u16 | epoch u64 | created_at u64
//!   | payload (varint-length-prefixed bytes) | crc32 u32
//! ```
//!
//! The CRC covers every byte before it, so any single-bit flip anywhere in
//! the frame is detected (CRC-32 detects all 1- and 2-bit errors at these
//! lengths) and surfaces as a typed [`WireError::ChecksumMismatch`] — never
//! a panic, never a silently wrong decode.
//!
//! The **header bytes** ([`SnapshotFrame::header_bytes`]) are the canonical
//! encoding of everything before the payload. Sealed blobs embedded in a
//! snapshot payload use them as their sealing AAD, which cryptographically
//! binds each blob to *this* snapshot: splicing a sealed enclave state from
//! epoch 3 into an epoch 4 snapshot fails AEAD authentication inside the
//! enclave, even though both blobs were sealed by the same enclave on the
//! same platform.

use crate::{Decoder, Encoder, Result, WireError};

/// Magic bytes identifying a Glimmers snapshot frame.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"GSNP";

/// Current snapshot envelope version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Length of the fixed header (`magic | version | kind | epoch | created_at`).
pub const SNAPSHOT_HEADER_LEN: usize = 4 + 1 + 2 + 8 + 8;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `bytes`.
///
/// Implemented bitwise — no lookup tables, no dependencies — because
/// snapshot framing is a cold path: it runs once per checkpoint/restore,
/// not per request.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The canonical header encoding for a snapshot with the given identity —
/// usable as sealing AAD *before* the payload exists (the payload embeds
/// blobs sealed under this very header, so the header cannot depend on it).
#[must_use]
pub fn header_bytes(kind: u16, epoch: u64, created_at_nanos: u64) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(SNAPSHOT_HEADER_LEN);
    enc.put_raw(&SNAPSHOT_MAGIC);
    enc.put_u8(SNAPSHOT_VERSION);
    enc.put_u16(kind);
    enc.put_u64(epoch);
    enc.put_u64(created_at_nanos);
    enc.into_bytes()
}

/// The canonical AAD for sealed blobs embedded in a *delta* snapshot: the
/// delta's own header followed by the canonical header bytes of the frame
/// it extends. Binding both identities into the AAD means a sealed blob
/// exported for delta N-on-base B authenticates only when restored as
/// exactly that link of the chain — splicing the delta onto a different
/// base (or reordering deltas) fails AEAD authentication inside the
/// enclave even if every frame's own CRC is intact.
#[must_use]
pub fn chained_header_bytes(
    kind: u16,
    epoch: u64,
    created_at_nanos: u64,
    base_header: &[u8],
) -> Vec<u8> {
    let mut bytes = header_bytes(kind, epoch, created_at_nanos);
    bytes.extend_from_slice(base_header);
    bytes
}

/// A framed snapshot: a kind tag (namespaced by the producing subsystem), a
/// monotonically increasing epoch, the producer's clock reading, and an
/// opaque payload, CRC-guarded end to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// Payload kind tag (e.g. the gateway's full-state snapshot).
    pub kind: u16,
    /// Checkpoint sequence number: each checkpoint a producer takes gets a
    /// fresh epoch, so sealed blobs can be bound to exactly one snapshot.
    pub epoch: u64,
    /// The producer's clock reading when the snapshot was captured, in
    /// nanoseconds (whatever clock the producer serves under — injected
    /// clocks keep this deterministic under test).
    pub created_at_nanos: u64,
    /// Opaque payload bytes (wire-encoded by the producing subsystem).
    pub payload: Vec<u8>,
}

impl SnapshotFrame {
    /// The canonical header bytes of this frame (see [`header_bytes`]).
    #[must_use]
    pub fn header_bytes(&self) -> Vec<u8> {
        header_bytes(self.kind, self.epoch, self.created_at_nanos)
    }

    /// Serializes the frame: header, length-prefixed payload, trailing CRC.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::with_capacity(SNAPSHOT_HEADER_LEN + 5 + self.payload.len() + 4);
        enc.put_raw(&self.header_bytes());
        enc.put_bytes(&self.payload);
        let crc = crc32(enc.as_slice());
        enc.put_u32(crc);
        enc.into_bytes()
    }

    /// Parses a frame, requiring the input to contain exactly one intact
    /// frame.
    ///
    /// # Errors
    ///
    /// Failure modes are all typed, in checking order: [`WireError::BadMagic`]
    /// and [`WireError::UnsupportedVersion`] identify frames from another
    /// format or era; [`WireError::ChecksumMismatch`] catches corruption
    /// anywhere else in the frame; [`WireError::UnexpectedEnd`] /
    /// [`WireError::TrailingBytes`] catch truncation and garbage. Nothing in
    /// this path panics on malformed input.
    ///
    /// # Examples
    ///
    /// ```
    /// use glimmer_wire::{SnapshotFrame, WireError};
    ///
    /// let frame = SnapshotFrame {
    ///     kind: 1,
    ///     epoch: 4,
    ///     created_at_nanos: 1_700_000_000,
    ///     payload: b"sealed enclave state".to_vec(),
    /// };
    /// let bytes = frame.to_bytes();
    /// assert_eq!(SnapshotFrame::from_bytes(&bytes).unwrap(), frame);
    ///
    /// // A single flipped bit anywhere fails closed with a typed error.
    /// let mut corrupt = bytes.clone();
    /// corrupt[10] ^= 0x01;
    /// assert!(matches!(
    ///     SnapshotFrame::from_bytes(&corrupt),
    ///     Err(WireError::ChecksumMismatch { .. })
    /// ));
    /// ```
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let magic = dec.get_raw(4)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = dec.get_u8()?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        // Verify the CRC before trusting any length prefix in the body: a
        // corrupted length would otherwise misreport truncation instead of
        // corruption.
        if bytes.len() < SNAPSHOT_HEADER_LEN + 1 + 4 {
            return Err(WireError::UnexpectedEnd {
                needed: SNAPSHOT_HEADER_LEN + 1 + 4,
                remaining: bytes.len(),
            });
        }
        let body_len = bytes.len() - 4;
        let mut crc_dec = Decoder::new(&bytes[body_len..]);
        let stored = crc_dec.get_u32()?;
        let actual = crc32(&bytes[..body_len]);
        if stored != actual {
            return Err(WireError::ChecksumMismatch {
                stored,
                computed: actual,
            });
        }
        let kind = dec.get_u16()?;
        let epoch = dec.get_u64()?;
        let created_at_nanos = dec.get_u64()?;
        let payload = dec.get_bytes()?;
        // Exactly the CRC must remain.
        if dec.remaining() != 4 {
            return Err(WireError::TrailingBytes(dec.remaining().saturating_sub(4)));
        }
        Ok(SnapshotFrame {
            kind,
            epoch,
            created_at_nanos,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> SnapshotFrame {
        SnapshotFrame {
            kind: 1,
            epoch: 7,
            created_at_nanos: 123_456_789,
            payload: b"session tables and sealed enclave state".to_vec(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn round_trip_and_header_binding() {
        let f = frame();
        let bytes = f.to_bytes();
        assert_eq!(SnapshotFrame::from_bytes(&bytes).unwrap(), f);
        // The header bytes are a strict prefix of the serialization and are
        // reproducible without the payload.
        assert_eq!(&bytes[..SNAPSHOT_HEADER_LEN], f.header_bytes().as_slice());
        assert_eq!(
            f.header_bytes(),
            header_bytes(f.kind, f.epoch, f.created_at_nanos)
        );
        // Different epochs produce different headers (the AAD separation the
        // sealing layer relies on).
        assert_ne!(header_bytes(1, 7, 0), header_bytes(1, 8, 0));
    }

    #[test]
    fn chained_headers_bind_both_links() {
        let base = header_bytes(1, 7, 100);
        let chained = chained_header_bytes(2, 8, 200, &base);
        // The delta's own header is a strict prefix; the base header trails.
        assert_eq!(&chained[..SNAPSHOT_HEADER_LEN], header_bytes(2, 8, 200));
        assert_eq!(&chained[SNAPSHOT_HEADER_LEN..], base.as_slice());
        // Any change to either link separates the AAD.
        assert_ne!(chained, chained_header_bytes(2, 9, 200, &base));
        assert_ne!(
            chained,
            chained_header_bytes(2, 8, 200, &header_bytes(1, 6, 100))
        );
    }

    #[test]
    fn empty_payload_round_trips() {
        let f = SnapshotFrame {
            kind: 0,
            epoch: 0,
            created_at_nanos: 0,
            payload: Vec::new(),
        };
        assert_eq!(SnapshotFrame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn every_single_bit_flip_is_rejected_with_a_typed_error() {
        let bytes = frame().to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                let err = SnapshotFrame::from_bytes(&corrupt)
                    .expect_err("corrupted frame must not decode");
                assert!(
                    matches!(
                        err,
                        WireError::ChecksumMismatch { .. }
                            | WireError::BadMagic
                            | WireError::UnsupportedVersion(_)
                    ),
                    "byte {i} bit {bit}: unexpected error {err:?}"
                );
            }
        }
    }

    #[test]
    fn truncation_is_rejected_at_every_length() {
        let bytes = frame().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotFrame::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes must be rejected"
            );
        }
        // Trailing garbage is rejected too (the CRC no longer trails).
        let mut long = bytes.clone();
        long.push(0);
        assert!(SnapshotFrame::from_bytes(&long).is_err());
    }

    #[test]
    fn version_skew_is_typed() {
        let mut bytes = frame().to_bytes();
        bytes[4] = SNAPSHOT_VERSION + 1;
        assert_eq!(
            SnapshotFrame::from_bytes(&bytes),
            Err(WireError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
    }
}
