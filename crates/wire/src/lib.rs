//! Self-describing binary wire format.
//!
//! Section 4.1 of the paper argues that input confidentiality can be audited
//! at runtime "by making the message format between the Glimmer and the
//! service public, and having a runtime auditor check that each message is
//! well formed". That argument only works if every byte that crosses the
//! trust boundary is encoded in a format the auditor can parse without
//! ambiguity. This crate is that format: a small, versioned, length-prefixed
//! binary encoding used by every protocol message in the reproduction
//! (contributions, endorsements, quotes, encrypted predicates, bot verdicts).
//!
//! The format is deliberately simple — no schema evolution magic, no
//! reflection — because the auditor and the formal-verification story of the
//! paper both benefit from a format that can be checked by a screenful of
//! code.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod decode;
pub mod encode;
pub mod frame;
pub mod snapshot;

pub use decode::Decoder;
pub use encode::Encoder;
pub use frame::{Frame, FRAME_MAGIC, FRAME_VERSION};
pub use snapshot::{SnapshotFrame, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the expected data.
    UnexpectedEnd {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeded the configured or sane maximum.
    LengthOverflow(u64),
    /// A varint used more than ten bytes.
    VarintTooLong,
    /// A string field was not valid UTF-8.
    InvalidUtf8,
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// The frame magic did not match.
    BadMagic,
    /// The frame version is not supported.
    UnsupportedVersion(u8),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
    /// A CRC-guarded frame failed its integrity check (snapshot corruption).
    ChecksumMismatch {
        /// The checksum stored in the frame.
        stored: u32,
        /// The checksum computed over the received bytes.
        computed: u32,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::UnexpectedEnd { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed}, have {remaining}"
                )
            }
            WireError::LengthOverflow(len) => write!(f, "length prefix too large: {len}"),
            WireError::VarintTooLong => write!(f, "varint longer than 10 bytes"),
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::InvalidBool(b) => write!(f, "invalid boolean byte: {b}"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported frame version: {v}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire operations.
pub type Result<T> = core::result::Result<T, WireError>;

/// Types that can be encoded to and decoded from the wire format.
///
/// # Examples
///
/// A protocol message implements the two mirror-image methods and inherits
/// the byte-level conveniences:
///
/// ```
/// use glimmer_wire::{Decoder, Encoder, WireCodec, WireError};
///
/// #[derive(Debug, PartialEq)]
/// struct Ping {
///     sequence: u64,
///     note: String,
/// }
///
/// impl WireCodec for Ping {
///     fn encode(&self, enc: &mut Encoder) {
///         enc.put_varint(self.sequence);
///         enc.put_str(&self.note);
///     }
///
///     fn decode(dec: &mut Decoder<'_>) -> glimmer_wire::Result<Self> {
///         Ok(Ping {
///             sequence: dec.get_varint()?,
///             note: dec.get_str()?,
///         })
///     }
/// }
///
/// let ping = Ping { sequence: 42, note: "hello".into() };
/// let bytes = ping.to_wire();
/// assert_eq!(Ping::from_wire(&bytes).unwrap(), ping);
/// // Truncation surfaces as a typed error, never a panic.
/// assert!(matches!(
///     Ping::from_wire(&bytes[..bytes.len() - 1]),
///     Err(WireError::UnexpectedEnd { .. })
/// ));
/// ```
pub trait WireCodec: Sized {
    /// Appends this value to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Reads a value of this type from `dec`.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] the underlying field reads produce — truncation
    /// ([`WireError::UnexpectedEnd`]), malformed varints, invalid UTF-8 or
    /// boolean bytes. Implementations must never panic on malformed input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Convenience: encodes into a fresh byte vector.
    fn to_wire(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Encodes into a reusable encoder: the encoder is [`Encoder::reset`]
    /// first, so afterwards it holds exactly this value's wire bytes
    /// ([`Encoder::as_slice`]) while keeping whatever capacity it had.
    ///
    /// Hot paths that encode the same message shape over and over (the
    /// gateway's batched drain loop) call this with a long-lived encoder and
    /// stop paying a heap allocation per message once the buffer has grown
    /// to the steady-state size.
    fn encode_into(&self, enc: &mut Encoder) {
        enc.reset();
        self.encode(enc);
    }

    /// Convenience: decodes from a byte slice, requiring full consumption.
    fn from_wire(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let cases: Vec<(WireError, &str)> = vec![
            (
                WireError::UnexpectedEnd {
                    needed: 4,
                    remaining: 1,
                },
                "needed 4",
            ),
            (WireError::LengthOverflow(1 << 40), "too large"),
            (WireError::VarintTooLong, "varint"),
            (WireError::InvalidUtf8, "UTF-8"),
            (WireError::InvalidBool(7), "7"),
            (WireError::BadMagic, "magic"),
            (WireError::UnsupportedVersion(9), "9"),
            (WireError::TrailingBytes(3), "3"),
            (
                WireError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[derive(Debug, PartialEq)]
    struct Sample {
        id: u64,
        name: String,
        payload: Vec<u8>,
        flag: bool,
        score: f64,
    }

    impl WireCodec for Sample {
        fn encode(&self, enc: &mut Encoder) {
            enc.put_varint(self.id);
            enc.put_str(&self.name);
            enc.put_bytes(&self.payload);
            enc.put_bool(self.flag);
            enc.put_f64(self.score);
        }

        fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
            Ok(Sample {
                id: dec.get_varint()?,
                name: dec.get_str()?,
                payload: dec.get_bytes()?,
                flag: dec.get_bool()?,
                score: dec.get_f64()?,
            })
        }
    }

    #[test]
    fn encode_into_replaces_contents_and_matches_to_wire() {
        let a = Sample {
            id: 1,
            name: "first".to_string(),
            payload: vec![9; 64],
            flag: false,
            score: 1.25,
        };
        let b = Sample {
            id: 2,
            name: "second".to_string(),
            payload: vec![7; 8],
            flag: true,
            score: -0.5,
        };
        let mut enc = Encoder::new();
        a.encode_into(&mut enc);
        assert_eq!(enc.as_slice(), a.to_wire().as_slice());
        let grown = enc.capacity();
        // Reusing the encoder for a smaller message keeps the capacity and
        // yields exactly the new message's bytes — no stale prefix.
        b.encode_into(&mut enc);
        assert_eq!(enc.as_slice(), b.to_wire().as_slice());
        assert_eq!(enc.capacity(), grown);
        assert_eq!(Sample::from_wire(enc.as_slice()).unwrap(), b);
    }

    #[test]
    fn codec_round_trip() {
        let sample = Sample {
            id: 123456789,
            name: "glimmer".to_string(),
            payload: vec![1, 2, 3, 255],
            flag: true,
            score: 0.75,
        };
        let bytes = sample.to_wire();
        assert_eq!(Sample::from_wire(&bytes).unwrap(), sample);
        // Trailing bytes are rejected.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(Sample::from_wire(&long), Err(WireError::TrailingBytes(1)));
        // Truncation is rejected.
        assert!(Sample::from_wire(&bytes[..bytes.len() - 1]).is_err());
    }
}
