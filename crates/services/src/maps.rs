//! The crowd-sourced photos-for-maps service.
//!
//! Photos are public contributions (not blinded), but the service still only
//! accepts photos endorsed by a Glimmer that checked — against the
//! contributor's *private* GPS track and camera fingerprint — that the photo
//! was plausibly taken where it claims (Sections 1 and 3).

use crate::{Result, ServiceError};
use glimmer_core::protocol::{ContributionPayload, EndorsedContribution};
use glimmer_core::signing::EndorsementVerifier;
use glimmer_wire::WireCodec;
use std::collections::HashMap;

/// A photo accepted by the service.
#[derive(Debug, Clone, PartialEq)]
pub struct PhotoRecord {
    /// The contributing client.
    pub client_id: u64,
    /// Hash of the photo contents.
    pub photo_hash: [u8; 32],
    /// Location the photo is filed under.
    pub lat: f64,
    /// Longitude the photo is filed under.
    pub lon: f64,
}

/// The maps service: verifies endorsements and indexes photos by location
/// cell.
pub struct MapsService {
    app_id: String,
    verifier: EndorsementVerifier,
    photos: Vec<PhotoRecord>,
    rejected: usize,
}

impl MapsService {
    /// Creates a service that accepts endorsements verifiable by `verifier`.
    #[must_use]
    pub fn new(app_id: impl Into<String>, verifier: EndorsementVerifier) -> Self {
        MapsService {
            app_id: app_id.into(),
            verifier,
            photos: Vec::new(),
            rejected: 0,
        }
    }

    /// Submits an endorsed photo contribution.
    pub fn submit(&mut self, endorsed: &EndorsedContribution) -> Result<()> {
        let result = self.check(endorsed);
        match result {
            Ok(record) => {
                self.photos.push(record);
                Ok(())
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    fn check(&self, endorsed: &EndorsedContribution) -> Result<PhotoRecord> {
        if endorsed.app_id != self.app_id {
            return Err(ServiceError::WrongTarget("app id"));
        }
        self.verifier
            .verify(endorsed)
            .map_err(|_| ServiceError::BadEndorsement)?;
        // Photos are public; they must arrive unblinded and decode as a photo
        // payload.
        if endorsed.blinded {
            return Err(ServiceError::Malformed("photo arrived blinded"));
        }
        let payload = ContributionPayload::from_wire(&endorsed.released_payload)
            .map_err(|_| ServiceError::Malformed("photo payload"))?;
        let ContributionPayload::Photo {
            photo_hash,
            claimed_lat,
            claimed_lon,
        } = payload
        else {
            return Err(ServiceError::Malformed("not a photo payload"));
        };
        Ok(PhotoRecord {
            client_id: endorsed.client_id,
            photo_hash,
            lat: claimed_lat,
            lon: claimed_lon,
        })
    }

    /// All accepted photos.
    #[must_use]
    pub fn photos(&self) -> &[PhotoRecord] {
        &self.photos
    }

    /// Contributions rejected so far.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of photos per rounded location cell (3 decimal places ≈ 100 m).
    #[must_use]
    pub fn coverage(&self) -> HashMap<(i64, i64), usize> {
        let mut out = HashMap::new();
        for p in &self.photos {
            let cell = (
                (p.lat * 1000.0).round() as i64,
                (p.lon * 1000.0).round() as i64,
            );
            *out.entry(cell).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::signing::{sign_endorsement, signing_key_from_secret, ServiceKeyMaterial};
    use glimmer_crypto::drbg::Drbg;

    fn material() -> ServiceKeyMaterial {
        ServiceKeyMaterial::generate(&mut Drbg::from_seed([72u8; 32])).unwrap()
    }

    fn endorsed_photo(
        material: &ServiceKeyMaterial,
        client_id: u64,
        lat: f64,
        lon: f64,
    ) -> EndorsedContribution {
        let payload = ContributionPayload::Photo {
            photo_hash: [client_id as u8; 32],
            claimed_lat: lat,
            claimed_lon: lon,
        };
        let mut e = EndorsedContribution {
            app_id: "crowdmaps.example".to_string(),
            client_id,
            round: 0,
            released_payload: payload.to_wire(),
            blinded: false,
            signature: Vec::new(),
        };
        let key = signing_key_from_secret(&material.secret_bytes()).unwrap();
        e.signature = sign_endorsement(&key, &e).unwrap();
        e
    }

    #[test]
    fn accepts_endorsed_photos_and_builds_coverage() {
        let m = material();
        let mut service = MapsService::new("crowdmaps.example", m.verifier());
        service
            .submit(&endorsed_photo(&m, 1, 43.6426, -79.3871))
            .unwrap();
        service
            .submit(&endorsed_photo(&m, 2, 43.6426, -79.3871))
            .unwrap();
        service
            .submit(&endorsed_photo(&m, 3, 48.8584, 2.2945))
            .unwrap();
        assert_eq!(service.photos().len(), 3);
        assert_eq!(service.rejected(), 0);
        let coverage = service.coverage();
        assert_eq!(coverage.len(), 2);
        assert!(coverage.values().any(|&c| c == 2));
    }

    #[test]
    fn rejects_unendorsed_blinded_or_wrong_payloads() {
        let m = material();
        let mut service = MapsService::new("crowdmaps.example", m.verifier());

        // Endorsement from an unknown key.
        let rogue = ServiceKeyMaterial::generate(&mut Drbg::from_seed([73u8; 32])).unwrap();
        assert_eq!(
            service.submit(&endorsed_photo(&rogue, 1, 43.0, -79.0)),
            Err(ServiceError::BadEndorsement)
        );

        // Wrong app id.
        let mut wrong_app = endorsed_photo(&m, 2, 43.0, -79.0);
        wrong_app.app_id = "other".to_string();
        assert!(matches!(
            service.submit(&wrong_app),
            Err(ServiceError::WrongTarget(_))
        ));

        // A blinded "photo" makes no sense.
        let mut blinded = endorsed_photo(&m, 3, 43.0, -79.0);
        blinded.blinded = true;
        let key = signing_key_from_secret(&m.secret_bytes()).unwrap();
        blinded.signature = sign_endorsement(&key, &blinded).unwrap();
        assert!(matches!(
            service.submit(&blinded),
            Err(ServiceError::Malformed(_))
        ));

        // A model update endorsed for the maps app is rejected as malformed.
        let mut model = endorsed_photo(&m, 4, 43.0, -79.0);
        model.released_payload = ContributionPayload::ModelUpdate { weights: vec![0.5] }.to_wire();
        model.signature = sign_endorsement(&key, &model).unwrap();
        assert!(matches!(
            service.submit(&model),
            Err(ServiceError::Malformed(_))
        ));

        assert_eq!(service.rejected(), 4);
        assert!(service.photos().is_empty());
    }
}
