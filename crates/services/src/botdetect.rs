//! The bot-detection web service (Section 4.1).
//!
//! The service keeps its detector secret (validation confidentiality): it
//! ships the detector to attested Glimmers encrypted under the channel key,
//! issues per-session challenges, and accepts back exactly one bit per
//! challenge, authenticated with the channel MAC key. For the E7 baseline it
//! can also classify raw uploaded signals server-side, which is what the
//! Glimmer design avoids.

use crate::{Result, ServiceError};
use glimmer_core::channel::{AttestedChannel, ChannelAccept, ChannelOffer};
use glimmer_core::confidential::{seal_predicate, BotVerdict, EncryptedPredicate};
use glimmer_core::protocol::frame_type;
use glimmer_core::validation::BotDetectorSpec;
use glimmer_crypto::drbg::Drbg;
use glimmer_crypto::schnorr::SigningKey;
use glimmer_wire::{Frame, WireCodec};
use sgx_sim::{AttestationService, Measurement};

/// One client session on the service side.
pub struct BotSession {
    channel: AttestedChannel,
    challenge: [u8; 32],
    verdict: Option<bool>,
}

impl BotSession {
    /// The challenge the Glimmer must echo in its verdict.
    #[must_use]
    pub fn challenge(&self) -> [u8; 32] {
        self.challenge
    }

    /// The verdict received for this session, if any.
    #[must_use]
    pub fn verdict(&self) -> Option<bool> {
        self.verdict
    }

    /// The attested Glimmer measurement for this session.
    #[must_use]
    pub fn glimmer_measurement(&self) -> Measurement {
        self.channel.glimmer_measurement
    }
}

/// The bot-detection service.
pub struct BotDetectionService {
    detector: BotDetectorSpec,
    signing_key: SigningKey,
    approved_glimmer: Measurement,
    rng: Drbg,
    verdicts_accepted: usize,
    verdicts_rejected: usize,
}

impl BotDetectionService {
    /// Creates the service with its secret detector, identity key, and the
    /// approved Glimmer measurement.
    #[must_use]
    pub fn new(
        detector: BotDetectorSpec,
        signing_key: SigningKey,
        approved_glimmer: Measurement,
        rng: Drbg,
    ) -> Self {
        BotDetectionService {
            detector,
            signing_key,
            approved_glimmer,
            rng,
            verdicts_accepted: 0,
            verdicts_rejected: 0,
        }
    }

    /// The verifying key clients must embed in their Glimmer descriptor.
    #[must_use]
    pub fn verifying_key_bytes(&self) -> Vec<u8> {
        self.signing_key.verifying_key().to_bytes()
    }

    /// Handles a channel offer from a client's Glimmer: verifies attestation
    /// and returns the handshake response plus the session state.
    pub fn accept_channel(
        &mut self,
        offer: &ChannelOffer,
        avs: &AttestationService,
    ) -> Result<(ChannelAccept, BotSession)> {
        let (accept, channel) = AttestedChannel::respond(
            offer,
            avs,
            &self.approved_glimmer,
            &self.signing_key,
            &mut self.rng,
        )
        .map_err(|e| ServiceError::Channel(e.to_string()))?;
        let mut challenge = [0u8; 32];
        self.rng.fill_bytes(&mut challenge);
        Ok((
            accept,
            BotSession {
                channel,
                challenge,
                verdict: None,
            },
        ))
    }

    /// Issues a fresh challenge for the next check on an existing session
    /// (one challenge per page load / verdict).
    pub fn issue_challenge(&mut self, session: &mut BotSession) -> [u8; 32] {
        let mut challenge = [0u8; 32];
        self.rng.fill_bytes(&mut challenge);
        session.challenge = challenge;
        challenge
    }

    /// Produces the encrypted detector for a session (validation
    /// confidentiality: the client host never sees the plaintext detector).
    pub fn encrypted_detector(&mut self, session: &BotSession) -> EncryptedPredicate {
        let mut nonce = [0u8; 12];
        self.rng.fill_bytes(&mut nonce);
        seal_predicate(
            &self.detector,
            &session.channel.keys.service_to_glimmer,
            nonce,
        )
    }

    /// Accepts a verdict frame from the client, verifying format, challenge
    /// binding, and MAC. Returns the single bit on success.
    pub fn accept_verdict(&mut self, session: &mut BotSession, frame: &Frame) -> Result<bool> {
        let result = Self::check_verdict(session, frame);
        match result {
            Ok(bit) => {
                self.verdicts_accepted += 1;
                session.verdict = Some(bit);
                Ok(bit)
            }
            Err(e) => {
                self.verdicts_rejected += 1;
                Err(e)
            }
        }
    }

    fn check_verdict(session: &BotSession, frame: &Frame) -> Result<bool> {
        if frame.msg_type != frame_type::BOT_VERDICT {
            return Err(ServiceError::Malformed("not a verdict frame"));
        }
        let verdict = BotVerdict::from_wire(&frame.payload)
            .map_err(|_| ServiceError::Malformed("verdict payload"))?;
        if !verdict.verify(&session.challenge, &session.channel.keys.mac_key) {
            return Err(ServiceError::BadEndorsement);
        }
        Ok(verdict.human)
    }

    /// The E7 baseline: classify raw signals server-side (no privacy).
    #[must_use]
    pub fn classify_raw(&self, signals: &[(String, f64)]) -> bool {
        self.detector.score(signals) > self.detector.threshold
    }

    /// Counts of accepted and rejected verdicts.
    #[must_use]
    pub fn verdict_counts(&self) -> (usize, usize) {
        (self.verdicts_accepted, self.verdicts_rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::host::{GlimmerClient, GlimmerDescriptor};
    use glimmer_core::protocol::PrivateData;
    use glimmer_crypto::dh::DhGroup;
    use sgx_sim::PlatformConfig;

    fn service_and_avs() -> (BotDetectionService, AttestationService, Drbg) {
        let mut rng = Drbg::from_seed([80u8; 32]);
        let signing_key = SigningKey::generate(DhGroup::default_group(), &mut rng).unwrap();
        let avs = AttestationService::new([81u8; 32]);
        // The approved measurement is filled in per test once the descriptor
        // (which embeds the verifying key) is known.
        let service = BotDetectionService::new(
            BotDetectorSpec::example(),
            signing_key,
            Measurement::zero(),
            rng.fork("service"),
        );
        (service, avs, rng)
    }

    fn human_signals() -> Vec<(String, f64)> {
        vec![
            ("mouse_entropy".to_string(), 0.9),
            ("keystroke_variance".to_string(), 0.8),
            ("js_fidelity".to_string(), 1.0),
            ("focus_changes".to_string(), 0.5),
            ("request_rate".to_string(), 0.1),
            ("headless_markers".to_string(), 0.0),
        ]
    }

    #[test]
    fn end_to_end_confidential_bot_check() {
        let (mut service, mut avs, mut rng) = service_and_avs();
        let descriptor = GlimmerDescriptor::bot_detection_default(service.verifying_key_bytes(), 8);
        service.approved_glimmer = descriptor.measurement();

        let mut client =
            GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
        client.provision_platform(&mut avs);

        // Handshake.
        let offer = client.start_channel().unwrap();
        let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
        client.complete_channel(&accept).unwrap();

        // Encrypted detector delivery.
        let encrypted = service.encrypted_detector(&session);
        client.install_encrypted_predicate(&encrypted).unwrap();

        // Confidential check: human signals → verdict bit arrives, verified.
        let frame = client
            .confidential_check(
                session.challenge(),
                PrivateData::BotSignals {
                    signals: human_signals(),
                },
            )
            .unwrap();
        // The frame is tiny: challenge + bit + MAC, nothing else.
        assert!(frame.payload.len() < 100);
        let verdict = service.accept_verdict(&mut session, &frame).unwrap();
        assert!(verdict);
        assert_eq!(session.verdict(), Some(true));
        assert_eq!(service.verdict_counts(), (1, 0));
        assert_eq!(session.glimmer_measurement(), client.measurement());
        assert!(service.classify_raw(&human_signals()));
    }

    #[test]
    fn forged_and_replayed_verdicts_are_rejected() {
        let (mut service, mut avs, mut rng) = service_and_avs();
        let descriptor = GlimmerDescriptor::bot_detection_default(service.verifying_key_bytes(), 8);
        service.approved_glimmer = descriptor.measurement();
        let mut client =
            GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
        client.provision_platform(&mut avs);
        let offer = client.start_channel().unwrap();
        let (accept, mut session) = service.accept_channel(&offer, &avs).unwrap();
        client.complete_channel(&accept).unwrap();
        let encrypted = service.encrypted_detector(&session);
        client.install_encrypted_predicate(&encrypted).unwrap();

        // A verdict forged by the host without the channel MAC key.
        let forged = BotVerdict::new(session.challenge(), true, &[0u8; 32]).to_frame();
        assert_eq!(
            service.accept_verdict(&mut session, &forged),
            Err(ServiceError::BadEndorsement)
        );

        // A verdict for the wrong challenge (replay from another session).
        let genuine = client
            .confidential_check(
                [9u8; 32],
                PrivateData::BotSignals {
                    signals: human_signals(),
                },
            )
            .unwrap();
        assert!(service.accept_verdict(&mut session, &genuine).is_err());

        // A frame of the wrong type.
        let wrong_type = Frame::new(frame_type::REJECTION, vec![]);
        assert!(matches!(
            service.accept_verdict(&mut session, &wrong_type),
            Err(ServiceError::Malformed(_))
        ));
        assert_eq!(service.verdict_counts(), (0, 3));
    }

    #[test]
    fn unattested_clients_cannot_open_sessions() {
        let (mut service, avs, mut rng) = service_and_avs();
        let descriptor = GlimmerDescriptor::bot_detection_default(service.verifying_key_bytes(), 8);
        service.approved_glimmer = descriptor.measurement();
        let mut client =
            GlimmerClient::new(descriptor, PlatformConfig::default(), &mut rng).unwrap();
        // Platform never provisioned with the AVS → no quote can be produced.
        assert!(client.start_channel().is_err());

        // A quote from a different (unapproved) enclave is rejected.
        let other_descriptor = GlimmerDescriptor::keyboard_default();
        let mut other =
            GlimmerClient::new(other_descriptor, PlatformConfig::default(), &mut rng).unwrap();
        let mut avs2 = avs;
        other.provision_platform(&mut avs2);
        let offer = other.start_channel().unwrap();
        assert!(matches!(
            service.accept_channel(&offer, &avs2),
            Err(ServiceError::Channel(_))
        ));
    }
}
