//! Service-side components.
//!
//! Every scenario in the paper has a cloud service on the far side of the
//! trust boundary. These services never see raw private data; they verify
//! Glimmer endorsements, aggregate blinded contributions, ship encrypted
//! predicates, and check 1-bit verdicts.
//!
//! * [`keyboard`] — the predictive-keyboard aggregation service of Figure 1.
//! * [`maps`] — the crowd-sourced photos-for-maps service.
//! * [`botdetect`] — the bot-detection web service of Section 4.1.
//! * [`iot`] — the IoT telemetry service fed through glimmer-as-a-service
//!   (Section 4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod botdetect;
pub mod iot;
pub mod keyboard;
pub mod maps;

pub use botdetect::{BotDetectionService, BotSession};
pub use iot::IotTelemetryService;
pub use keyboard::{KeyboardService, KeyboardServiceConfig, RoundOutcome};
pub use maps::{MapsService, PhotoRecord};

/// Errors returned by the services.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The endorsement signature did not verify.
    BadEndorsement,
    /// The contribution targets the wrong application or round.
    WrongTarget(&'static str),
    /// A private contribution arrived unblinded.
    NotBlinded,
    /// The contribution payload could not be decoded.
    Malformed(&'static str),
    /// The aggregation round has no contributions.
    EmptyRound,
    /// A channel or attestation step failed.
    Channel(String),
    /// The client already contributed to this round.
    Duplicate(u64),
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::BadEndorsement => write!(f, "endorsement signature invalid"),
            ServiceError::WrongTarget(what) => write!(f, "wrong target: {what}"),
            ServiceError::NotBlinded => write!(f, "private contribution was not blinded"),
            ServiceError::Malformed(what) => write!(f, "malformed contribution: {what}"),
            ServiceError::EmptyRound => write!(f, "no contributions in round"),
            ServiceError::Channel(msg) => write!(f, "channel error: {msg}"),
            ServiceError::Duplicate(client) => {
                write!(f, "duplicate contribution from client {client}")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Result alias for service operations.
pub type Result<T> = core::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        for (err, needle) in [
            (ServiceError::BadEndorsement, "signature"),
            (ServiceError::WrongTarget("app"), "app"),
            (ServiceError::NotBlinded, "blinded"),
            (ServiceError::Malformed("payload"), "payload"),
            (ServiceError::EmptyRound, "no contributions"),
            (ServiceError::Channel("x".into()), "x"),
            (ServiceError::Duplicate(3), "3"),
        ] {
            assert!(err.to_string().contains(needle));
        }
    }
}
