//! The IoT telemetry service (Section 4.2).
//!
//! Devices without TEEs route their readings through a remote Glimmer host;
//! the service only accepts endorsed, blinded readings and aggregates them
//! per round, exactly like the keyboard service but over sensor vectors.

use crate::{Result, ServiceError};
use glimmer_core::protocol::EndorsedContribution;
use glimmer_core::signing::EndorsementVerifier;
use glimmer_federated::fixed::{add_vectors, decode_weights};
use std::collections::HashSet;

/// Aggregated telemetry for one round.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySummary {
    /// Round number.
    pub round: u64,
    /// Number of devices whose readings were accepted.
    pub devices: usize,
    /// Per-sample mean across accepted devices.
    pub mean_readings: Vec<f64>,
}

/// The service-side telemetry aggregator.
pub struct IotTelemetryService {
    app_id: String,
    verifier: EndorsementVerifier,
    round: u64,
    dimension: usize,
    accumulator: Vec<u64>,
    devices: HashSet<u64>,
    rejected: usize,
}

impl IotTelemetryService {
    /// Creates the service for readings of `dimension` samples.
    #[must_use]
    pub fn new(app_id: impl Into<String>, verifier: EndorsementVerifier, dimension: usize) -> Self {
        IotTelemetryService {
            app_id: app_id.into(),
            verifier,
            round: 0,
            dimension,
            accumulator: vec![0u64; dimension],
            devices: HashSet::new(),
            rejected: 0,
        }
    }

    /// The current round.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Devices accepted this round.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.devices.len()
    }

    /// Devices rejected this round.
    #[must_use]
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Submits one endorsed reading vector.
    pub fn submit(&mut self, endorsed: &EndorsedContribution) -> Result<()> {
        let result = self.check_and_add(endorsed);
        if result.is_err() {
            self.rejected += 1;
        }
        result
    }

    fn check_and_add(&mut self, endorsed: &EndorsedContribution) -> Result<()> {
        if endorsed.app_id != self.app_id {
            return Err(ServiceError::WrongTarget("app id"));
        }
        if endorsed.round != self.round {
            return Err(ServiceError::WrongTarget("round"));
        }
        if self.devices.contains(&endorsed.client_id) {
            return Err(ServiceError::Duplicate(endorsed.client_id));
        }
        self.verifier
            .verify(endorsed)
            .map_err(|_| ServiceError::BadEndorsement)?;
        if !endorsed.blinded {
            return Err(ServiceError::NotBlinded);
        }
        let vector = endorsed
            .blinded_vector()
            .map_err(|_| ServiceError::Malformed("blinded vector"))?;
        if vector.len() != self.dimension {
            return Err(ServiceError::Malformed("dimension mismatch"));
        }
        self.accumulator = add_vectors(&self.accumulator, &vector);
        self.devices.insert(endorsed.client_id);
        Ok(())
    }

    /// Applies a dropout correction from the blinding service so the masks of
    /// devices that did not submit still cancel.
    pub fn apply_dropout_correction(&mut self, correction: &[u64]) -> Result<()> {
        if correction.len() != self.dimension {
            return Err(ServiceError::Malformed("correction dimension"));
        }
        self.accumulator = add_vectors(&self.accumulator, correction);
        Ok(())
    }

    /// Closes the round, returning the per-sample mean across devices.
    pub fn finalize_round(&mut self) -> Result<TelemetrySummary> {
        if self.devices.is_empty() {
            return Err(ServiceError::EmptyRound);
        }
        let n = self.devices.len() as f64;
        let mean_readings = decode_weights(&self.accumulator)
            .into_iter()
            .map(|v| v / n)
            .collect();
        let summary = TelemetrySummary {
            round: self.round,
            devices: self.devices.len(),
            mean_readings,
        };
        self.round += 1;
        self.accumulator = vec![0u64; self.dimension];
        self.devices.clear();
        self.rejected = 0;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::blinding::BlindingService;
    use glimmer_core::signing::{sign_endorsement, signing_key_from_secret, ServiceKeyMaterial};
    use glimmer_crypto::drbg::Drbg;
    use glimmer_federated::fixed::encode_weights;
    use glimmer_wire::Encoder;

    fn material() -> ServiceKeyMaterial {
        ServiceKeyMaterial::generate(&mut Drbg::from_seed([90u8; 32])).unwrap()
    }

    fn endorsed(
        m: &ServiceKeyMaterial,
        client: u64,
        round: u64,
        vector: &[u64],
    ) -> EndorsedContribution {
        let mut enc = Encoder::new();
        enc.put_u64_vec(vector);
        let mut e = EndorsedContribution {
            app_id: "iot-telemetry.example".to_string(),
            client_id: client,
            round,
            released_payload: enc.into_bytes(),
            blinded: true,
            signature: Vec::new(),
        };
        let key = signing_key_from_secret(&m.secret_bytes()).unwrap();
        e.signature = sign_endorsement(&key, &e).unwrap();
        e
    }

    #[test]
    fn aggregates_blinded_readings() {
        let m = material();
        let mut service = IotTelemetryService::new("iot-telemetry.example", m.verifier(), 4);
        let devices: Vec<u64> = vec![10, 20, 30];
        let masks = BlindingService::new([3u8; 32]).zero_sum_masks(0, &devices, 4);
        let readings = [
            vec![0.1, 0.2, 0.3, 0.4],
            vec![0.2, 0.3, 0.4, 0.5],
            vec![0.3, 0.4, 0.5, 0.6],
        ];
        for ((d, mask), r) in devices.iter().zip(&masks).zip(&readings) {
            let blinded = mask.blind(&encode_weights(r));
            service.submit(&endorsed(&m, *d, 0, &blinded)).unwrap();
        }
        assert_eq!(service.accepted(), 3);
        let summary = service.finalize_round().unwrap();
        assert_eq!(summary.devices, 3);
        for (i, expected) in [0.2, 0.3, 0.4, 0.5].iter().enumerate() {
            assert!((summary.mean_readings[i] - expected).abs() < 1e-6);
        }
        assert_eq!(service.current_round(), 1);
        assert!(service.finalize_round().is_err());
    }

    #[test]
    fn rejects_bad_submissions() {
        let m = material();
        let mut service = IotTelemetryService::new("iot-telemetry.example", m.verifier(), 3);
        let vector = encode_weights(&[0.1, 0.2, 0.3]);

        let rogue = ServiceKeyMaterial::generate(&mut Drbg::from_seed([91u8; 32])).unwrap();
        assert_eq!(
            service.submit(&endorsed(&rogue, 1, 0, &vector)),
            Err(ServiceError::BadEndorsement)
        );

        let mut unblinded = endorsed(&m, 2, 0, &vector);
        unblinded.blinded = false;
        let key = signing_key_from_secret(&m.secret_bytes()).unwrap();
        unblinded.signature = sign_endorsement(&key, &unblinded).unwrap();
        assert_eq!(service.submit(&unblinded), Err(ServiceError::NotBlinded));

        assert!(matches!(
            service.submit(&endorsed(&m, 3, 5, &vector)),
            Err(ServiceError::WrongTarget(_))
        ));
        assert!(matches!(
            service.submit(&endorsed(&m, 4, 0, &vector[..2])),
            Err(ServiceError::Malformed(_))
        ));

        service.submit(&endorsed(&m, 5, 0, &vector)).unwrap();
        assert_eq!(
            service.submit(&endorsed(&m, 5, 0, &vector)),
            Err(ServiceError::Duplicate(5))
        );
        assert_eq!(service.rejected(), 5);
        assert_eq!(service.accepted(), 1);
    }
}
