//! The predictive-keyboard aggregation service (Figure 1).
//!
//! The service publishes a vocabulary and model schema, issues per-round
//! blinding masks through the blinding service, and accepts contributions for
//! each round. In **protected** mode it only accepts endorsed, blinded
//! contributions whose Glimmer signature verifies; in **unprotected** mode
//! (the Figure 1c baseline the paper attacks) it accepts any blinded vector —
//! which is exactly what lets a single malicious client poison the global
//! model undetected.

use crate::{Result, ServiceError};
use glimmer_core::protocol::EndorsedContribution;
use glimmer_core::signing::EndorsementVerifier;
use glimmer_federated::aggregation::FederatedRound;
use glimmer_federated::{GlobalModel, ModelSchema};
use std::collections::HashSet;

/// Configuration of a keyboard service instance.
#[derive(Debug, Clone)]
pub struct KeyboardServiceConfig {
    /// The application id clients must target.
    pub app_id: String,
    /// Whether endorsements are required (protected mode).
    pub require_endorsements: bool,
    /// Whether private contributions must be blinded.
    pub require_blinding: bool,
}

impl Default for KeyboardServiceConfig {
    fn default() -> Self {
        KeyboardServiceConfig {
            app_id: "nextwordpredictive.com".to_string(),
            require_endorsements: true,
            require_blinding: true,
        }
    }
}

/// Summary of one completed aggregation round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The round number.
    pub round: u64,
    /// Contributions accepted into the aggregate.
    pub accepted: usize,
    /// Contributions rejected (bad endorsement, duplicate, wrong target).
    pub rejected: usize,
    /// The resulting global model.
    pub model: GlobalModel,
}

/// The service-side aggregator.
pub struct KeyboardService {
    config: KeyboardServiceConfig,
    schema: ModelSchema,
    verifier: Option<EndorsementVerifier>,
    round: u64,
    accumulator: FederatedRound,
    contributors: HashSet<u64>,
    rejected: usize,
}

impl KeyboardService {
    /// Creates a service for a schema. `verifier` must be provided when
    /// endorsements are required.
    #[must_use]
    pub fn new(
        config: KeyboardServiceConfig,
        schema: ModelSchema,
        verifier: Option<EndorsementVerifier>,
    ) -> Self {
        let accumulator = FederatedRound::new(&schema);
        KeyboardService {
            config,
            schema,
            verifier,
            round: 0,
            accumulator,
            contributors: HashSet::new(),
            rejected: 0,
        }
    }

    /// The schema clients must train against.
    #[must_use]
    pub fn schema(&self) -> &ModelSchema {
        &self.schema
    }

    /// The current round number.
    #[must_use]
    pub fn current_round(&self) -> u64 {
        self.round
    }

    /// Number of contributions accepted so far this round.
    #[must_use]
    pub fn accepted(&self) -> usize {
        self.accumulator.contributors()
    }

    /// Accepts (or rejects) one endorsed contribution.
    pub fn submit(&mut self, endorsed: &EndorsedContribution) -> Result<()> {
        let result = self.check_and_add(endorsed);
        if result.is_err() {
            self.rejected += 1;
        }
        result
    }

    fn check_and_add(&mut self, endorsed: &EndorsedContribution) -> Result<()> {
        if endorsed.app_id != self.config.app_id {
            return Err(ServiceError::WrongTarget("app id"));
        }
        if endorsed.round != self.round {
            return Err(ServiceError::WrongTarget("round"));
        }
        if self.contributors.contains(&endorsed.client_id) {
            return Err(ServiceError::Duplicate(endorsed.client_id));
        }
        if self.config.require_endorsements {
            let verifier = self.verifier.as_ref().ok_or(ServiceError::WrongTarget(
                "service has no verifier configured",
            ))?;
            verifier
                .verify(endorsed)
                .map_err(|_| ServiceError::BadEndorsement)?;
        }
        if self.config.require_blinding && !endorsed.blinded {
            return Err(ServiceError::NotBlinded);
        }
        let vector = endorsed
            .blinded_vector()
            .map_err(|_| ServiceError::Malformed("blinded vector"))?;
        self.accumulator
            .add(&vector)
            .map_err(|_| ServiceError::Malformed("dimension mismatch"))?;
        self.contributors.insert(endorsed.client_id);
        Ok(())
    }

    /// Applies a dropout correction from the blinding service (the sum of the
    /// masks of clients who did not submit), so the remaining masks cancel.
    pub fn apply_dropout_correction(&mut self, correction: &[u64]) -> Result<()> {
        self.accumulator
            .add_correction(correction)
            .map_err(|_| ServiceError::Malformed("correction dimension"))
    }

    /// Closes the current round, returning the aggregated model, and starts
    /// the next one.
    pub fn finalize_round(&mut self) -> Result<RoundOutcome> {
        let model = self
            .accumulator
            .finalize()
            .map_err(|_| ServiceError::EmptyRound)?;
        let outcome = RoundOutcome {
            round: self.round,
            accepted: self.accumulator.contributors(),
            rejected: self.rejected,
            model,
        };
        self.round += 1;
        self.accumulator = FederatedRound::new(&self.schema);
        self.contributors.clear();
        self.rejected = 0;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::blinding::BlindingService;
    use glimmer_core::protocol::EndorsedContribution;
    use glimmer_core::signing::{sign_endorsement, signing_key_from_secret, ServiceKeyMaterial};
    use glimmer_crypto::drbg::Drbg;
    use glimmer_federated::fixed::encode_weights;
    use glimmer_federated::Vocabulary;
    use glimmer_wire::Encoder;

    fn schema() -> ModelSchema {
        let vocab = Vocabulary::new(["a", "b", "c"]);
        ModelSchema::dense(vocab, &["a", "b", "c"])
    }

    fn material() -> ServiceKeyMaterial {
        ServiceKeyMaterial::generate(&mut Drbg::from_seed([70u8; 32])).unwrap()
    }

    fn endorsed(
        material: &ServiceKeyMaterial,
        client_id: u64,
        round: u64,
        vector: &[u64],
        blinded: bool,
    ) -> EndorsedContribution {
        let mut enc = Encoder::new();
        enc.put_u64_vec(vector);
        let mut e = EndorsedContribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id,
            round,
            released_payload: enc.into_bytes(),
            blinded,
            signature: Vec::new(),
        };
        let key = signing_key_from_secret(&material.secret_bytes()).unwrap();
        e.signature = sign_endorsement(&key, &e).unwrap();
        e
    }

    #[test]
    fn protected_round_accepts_valid_endorsements_and_unblinds_the_sum() {
        let s = schema();
        let m = material();
        let mut service = KeyboardService::new(
            KeyboardServiceConfig::default(),
            s.clone(),
            Some(m.verifier()),
        );
        assert_eq!(service.current_round(), 0);
        assert_eq!(service.schema().dimension(), s.dimension());

        // Three clients contribute 0.3 each per slot, blinded with zero-sum masks.
        let clients: Vec<u64> = vec![1, 2, 3];
        let masks = BlindingService::new([1u8; 32]).zero_sum_masks(0, &clients, s.dimension());
        for (i, &c) in clients.iter().enumerate() {
            let raw = encode_weights(&vec![0.3; s.dimension()]);
            let blinded = masks[i].blind(&raw);
            service.submit(&endorsed(&m, c, 0, &blinded, true)).unwrap();
        }
        assert_eq!(service.accepted(), 3);
        let outcome = service.finalize_round().unwrap();
        assert_eq!(outcome.accepted, 3);
        assert_eq!(outcome.rejected, 0);
        for w in &outcome.model.weights {
            assert!((w - 0.3).abs() < 1e-6, "{w}");
        }
        // The next round starts empty.
        assert_eq!(service.current_round(), 1);
        assert!(service.finalize_round().is_err());
    }

    #[test]
    fn protected_round_rejects_bad_submissions() {
        let s = schema();
        let m = material();
        let mut service = KeyboardService::new(
            KeyboardServiceConfig::default(),
            s.clone(),
            Some(m.verifier()),
        );
        let vector = encode_weights(&vec![0.5; s.dimension()]);

        // Unsigned / wrongly signed contribution.
        let rogue = ServiceKeyMaterial::generate(&mut Drbg::from_seed([71u8; 32])).unwrap();
        let bad_sig = endorsed(&rogue, 1, 0, &vector, true);
        assert_eq!(service.submit(&bad_sig), Err(ServiceError::BadEndorsement));

        // Unblinded private contribution.
        let unblinded = endorsed(&m, 2, 0, &vector, false);
        assert_eq!(service.submit(&unblinded), Err(ServiceError::NotBlinded));

        // Wrong app id.
        let mut wrong_app = endorsed(&m, 3, 0, &vector, true);
        wrong_app.app_id = "other".to_string();
        assert_eq!(
            service.submit(&wrong_app),
            Err(ServiceError::WrongTarget("app id"))
        );

        // Wrong round.
        let wrong_round = endorsed(&m, 3, 9, &vector, true);
        assert!(matches!(
            service.submit(&wrong_round),
            Err(ServiceError::WrongTarget(_))
        ));

        // Duplicate client.
        let ok = endorsed(&m, 4, 0, &vector, true);
        service.submit(&ok).unwrap();
        let dup = endorsed(&m, 4, 0, &vector, true);
        assert_eq!(service.submit(&dup), Err(ServiceError::Duplicate(4)));

        // Wrong dimension.
        let short = endorsed(&m, 5, 0, &vector[..2], true);
        assert!(matches!(
            service.submit(&short),
            Err(ServiceError::Malformed(_))
        ));

        // Malformed payload bytes.
        let mut garbage = endorsed(&m, 6, 0, &vector, true);
        garbage.released_payload = vec![0xFF];
        let key = signing_key_from_secret(&m.secret_bytes()).unwrap();
        garbage.signature = sign_endorsement(&key, &garbage).unwrap();
        assert!(matches!(
            service.submit(&garbage),
            Err(ServiceError::Malformed(_))
        ));

        let outcome = service.finalize_round().unwrap();
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 7);
    }

    #[test]
    fn unprotected_mode_accepts_anything_signed_or_not() {
        let s = schema();
        let config = KeyboardServiceConfig {
            require_endorsements: false,
            require_blinding: false,
            ..KeyboardServiceConfig::default()
        };
        let mut service = KeyboardService::new(config, s.clone(), None);
        // The paper's 538 attack sails through in unprotected mode.
        let mut enc = Encoder::new();
        enc.put_u64_vec(&encode_weights(&vec![538.0; s.dimension()]));
        let poisoned = EndorsedContribution {
            app_id: "nextwordpredictive.com".to_string(),
            client_id: 1,
            round: 0,
            released_payload: enc.into_bytes(),
            blinded: true,
            signature: Vec::new(),
        };
        service.submit(&poisoned).unwrap();
        let outcome = service.finalize_round().unwrap();
        assert!(outcome.model.weights.iter().all(|w| *w > 500.0));
    }
}
