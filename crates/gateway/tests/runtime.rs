//! Shard-per-core runtime invariants: the `&self` gateway handle really is
//! safe to share across threads, concurrent serving neither loses nor
//! duplicates nor cross-routes endorsements, shutdown drains in-flight work,
//! sharding does not change what is computed (only who computes it), and
//! stale-pending eviction follows the injected clock rather than wall time.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{
    BatchOutcome, Contribution, ContributionPayload, PrivateData, ProcessResponse,
};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{
    Gateway, GatewayConfig, GatewayError, ManualClock, QuotaResource, TenantConfig, TenantQuota,
};
use sgx_sim::AttestationService;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const DIM: usize = 4;

// The tentpole claim, stated to the compiler: the gateway handle is a
// shared-reference API safe to hand to any number of threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gateway>();
    assert_send_sync::<glimmer_gateway::GatewayResponse>();
};

struct Setup {
    gateway: Gateway,
    avs: AttestationService,
    rng: Drbg,
}

fn setup(shards: usize, slots_per_tenant: usize) -> Setup {
    setup_with(GatewayConfig {
        slots_per_tenant,
        shards,
        ..GatewayConfig::default()
    })
}

fn setup_with(config: GatewayConfig) -> Setup {
    let mut rng = Drbg::from_seed([80u8; 32]);
    let mut avs = AttestationService::new([81u8; 32]);
    let iot_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let kb_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let gateway = Gateway::new(
        config,
        vec![
            TenantConfig::new(
                IOT,
                GlimmerDescriptor::iot_default(Vec::new()),
                iot_material.secret_bytes(),
            ),
            TenantConfig::new(
                KEYBOARD,
                GlimmerDescriptor::keyboard_range_only(),
                kb_material.secret_bytes(),
            ),
        ],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    Setup { gateway, avs, rng }
}

/// One established device session plus everything needed to submit honest
/// contributions and recognize its replies.
struct Device {
    tenant: &'static str,
    session_id: u64,
    client_id: u64,
    session: IotDeviceSession,
}

/// Opens `per_tenant` sessions for both tenants, binds per-round masks, and
/// returns the devices. `rounds` masks are installed per device.
fn connect_devices(s: &mut Setup, per_tenant: usize, rounds: usize) -> Vec<Device> {
    let mut devices = Vec::new();
    for tenant in [IOT, KEYBOARD] {
        let dim = if tenant == IOT { DIM } else { 8 };
        let approved = s.gateway.measurement(tenant).unwrap();
        let client_ids: Vec<u64> = (0..per_tenant as u64).collect();
        let blinding = BlindingService::new([82u8; 32]);
        let mask_rounds: Vec<_> = (0..rounds as u64)
            .map(|round| blinding.zero_sum_masks(round, &client_ids, dim))
            .collect();
        for (i, client_id) in client_ids.iter().enumerate() {
            let (session_id, offer) = s.gateway.open_session(tenant).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &s.avs, &approved, &mut s.rng).unwrap();
            s.gateway.complete_session(session_id, &accept).unwrap();
            for round in &mask_rounds {
                s.gateway.install_mask(session_id, &round[i]).unwrap();
            }
            devices.push(Device {
                tenant,
                session_id,
                client_id: *client_id,
                session,
            });
        }
    }
    devices
}

fn contribution(tenant: &str, client_id: u64, round: u64) -> Contribution {
    let dim = if tenant == IOT { DIM } else { 8 };
    Contribution {
        app_id: tenant.to_string(),
        client_id,
        round,
        payload: if tenant == IOT {
            ContributionPayload::IotReadings {
                samples: vec![0.25; dim],
            }
        } else {
            ContributionPayload::ModelUpdate {
                weights: vec![0.5; dim],
            }
        },
    }
}

#[test]
fn concurrent_submit_and_drain_neither_loses_nor_duplicates_nor_cross_routes() {
    const ROUNDS: usize = 3;
    const PER_TENANT: usize = 4;
    let mut s = setup(4, 2);
    assert_eq!(s.gateway.shard_count(), 4);
    let devices = connect_devices(&mut s, PER_TENANT, ROUNDS);
    let expected_total = devices.len() * ROUNDS;
    let expected_tenant: HashMap<u64, &'static str> =
        devices.iter().map(|d| (d.session_id, d.tenant)).collect();

    // Partition the devices into owned per-thread chunks: each submitter
    // thread exclusively owns its devices (encryption needs `&mut`), while
    // all threads share the one `&Gateway` handle.
    let mut chunks: Vec<Vec<Device>> = Vec::new();
    let mut iter = devices.into_iter();
    loop {
        let chunk: Vec<Device> = iter.by_ref().take(2).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let gateway = &s.gateway;
    let submitted = AtomicUsize::new(0);
    let responses = Mutex::new(Vec::new());
    let devices_back: Mutex<Vec<Device>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        // Four submitter threads, submitting concurrently with each other
        // and with the drainer.
        for mut chunk in chunks {
            let submitted = &submitted;
            let devices_back = &devices_back;
            scope.spawn(move || {
                // Interleave rounds across this thread's devices.
                for round in 0..ROUNDS {
                    for device in chunk.iter_mut() {
                        let request = device.session.encrypt_request(
                            contribution(device.tenant, device.client_id, round as u64),
                            PrivateData::None,
                        );
                        gateway.submit(device.session_id, request).unwrap();
                        submitted.fetch_add(1, Ordering::SeqCst);
                    }
                }
                devices_back.lock().unwrap().extend(chunk);
            });
        }
        // One drainer thread racing the submitters: keeps sweeping until
        // every submitted request has come back.
        let responses = &responses;
        scope.spawn(move || {
            let mut collected = 0usize;
            let mut sweeps = 0usize;
            while collected < expected_total {
                sweeps += 1;
                assert!(sweeps < 100_000, "drain loop did not converge");
                let batch = gateway.drain().unwrap();
                collected += batch.len();
                responses.lock().unwrap().extend(batch);
                // Let submitters make progress between empty sweeps.
                if collected < expected_total {
                    std::thread::yield_now();
                }
            }
        });
    });

    let devices = devices_back.into_inner().unwrap();
    assert_eq!(submitted.load(Ordering::SeqCst), expected_total);
    let responses = responses.into_inner().unwrap();
    // Nothing lost, nothing duplicated: exactly `ROUNDS` replies per session.
    assert_eq!(responses.len(), expected_total);
    let mut per_session: HashMap<u64, usize> = HashMap::new();
    for response in &responses {
        *per_session.entry(response.session_id).or_default() += 1;
        // No cross-tenant leak: the reply is labelled with the tenant the
        // session belongs to.
        assert_eq!(
            &*response.tenant, expected_tenant[&response.session_id],
            "response for session {} routed under the wrong tenant",
            response.session_id
        );
    }
    assert_eq!(per_session.len(), devices.len());
    assert!(per_session.values().all(|n| *n == ROUNDS));

    // Every reply decrypts under its own device's channel keys (a reply
    // produced by another tenant's enclave, or another session's keys, would
    // fail AEAD opening) and every honest contribution was endorsed.
    let mut devices: HashMap<u64, Device> =
        devices.into_iter().map(|d| (d.session_id, d)).collect();
    for response in &responses {
        let BatchOutcome::Reply {
            ciphertext,
            endorsed,
        } = &response.outcome
        else {
            panic!("unexpected outcome {:?}", response.outcome);
        };
        assert!(endorsed);
        let device = devices.get_mut(&response.session_id).unwrap();
        let ProcessResponse::Endorsed(endorsement) =
            device.session.decrypt_response(ciphertext).unwrap()
        else {
            panic!("honest contribution was not endorsed");
        };
        assert_eq!(endorsement.client_id, device.client_id);
        assert_eq!(endorsement.app_id, device.tenant);
    }

    // The merged stats agree with what the threads observed.
    let stats = s.gateway.stats();
    assert_eq!(stats.total_endorsed(), expected_total as u64);
    assert_eq!(stats.total_items(), expected_total as u64);
    for (name, tenant) in &stats.tenants {
        assert_eq!(tenant.submitted, (PER_TENANT * ROUNDS) as u64, "{name}");
        assert_eq!(tenant.endorsed, (PER_TENANT * ROUNDS) as u64, "{name}");
        assert_eq!(tenant.failed, 0, "{name}");
        assert_eq!(tenant.rejected, 0, "{name}");
    }
    // Every shard owns at least one slot at this shape (4 slots, 4 shards).
    let shards: std::collections::BTreeSet<usize> =
        stats.slots.iter().map(|row| row.shard).collect();
    assert_eq!(shards.len(), 4);
}

#[test]
fn submit_many_rejects_atomically_and_reservations_roll_back() {
    // One slot, shallow queue, tight endorsement budget: every admission
    // limit is reachable with small groups.
    let mut rng = Drbg::from_seed([85u8; 32]);
    let mut avs = AttestationService::new([86u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut tenant = TenantConfig::new(
        IOT,
        GlimmerDescriptor::iot_default(Vec::new()),
        material.secret_bytes(),
    );
    tenant.quota = TenantQuota {
        max_sessions: 4,
        max_queued: 16,
        endorsement_budget: Some(5),
    };
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: 1,
            max_queue_depth: 4,
            ..GatewayConfig::default()
        },
        vec![tenant],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    let approved = gateway.measurement(IOT).unwrap();
    let (sid, offer) = gateway.open_session(IOT).unwrap();
    let (accept, mut session) =
        IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
    gateway.complete_session(sid, &accept).unwrap();
    let blinding = BlindingService::new([87u8; 32]);
    for round in 0..6u64 {
        gateway
            .install_mask(sid, &blinding.zero_sum_masks(round, &[0], DIM)[0])
            .unwrap();
    }
    let mut encrypt = |round: u64| {
        session.encrypt_request(
            Contribution {
                app_id: IOT.to_string(),
                client_id: 0,
                round,
                payload: ContributionPayload::IotReadings {
                    samples: vec![0.25; DIM],
                },
            },
            PrivateData::None,
        )
    };

    // A group deeper than the slot queue rejects whole: nothing enqueued,
    // the queued-quota and budget reservations rolled back.
    let too_deep: Vec<Vec<u8>> = (0..5).map(&mut encrypt).collect();
    assert!(matches!(
        gateway.submit_many(sid, too_deep),
        Err(GatewayError::Backpressure { depth: 0, .. })
    ));
    assert_eq!(gateway.queued(IOT).unwrap(), 0);

    // A group that would cross the endorsement budget mid-batch rejects
    // whole, before anything is enqueued.
    let over_budget: Vec<Vec<u8>> = (0..6).map(&mut encrypt).collect();
    assert!(matches!(
        gateway.submit_many(sid, over_budget),
        Err(GatewayError::QuotaExceeded {
            resource: QuotaResource::Endorsements,
            ..
        })
    ));
    assert_eq!(gateway.queued(IOT).unwrap(), 0);

    // A fitting group admits whole; the released reservations above left no
    // residue, so exactly the budget remains.
    let fitting: Vec<Vec<u8>> = (0..4).map(&mut encrypt).collect();
    gateway.submit_many(sid, fitting).unwrap();
    assert_eq!(gateway.queued(IOT).unwrap(), 4);
    // One more single request would exceed the queue depth.
    assert!(matches!(
        gateway.submit(sid, encrypt(4)),
        Err(GatewayError::Backpressure { .. })
    ));
    let responses = gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 4);
    assert!(responses
        .iter()
        .all(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. })));

    // Four endorsements are spent; a final group of one still fits ...
    gateway.submit_many(sid, vec![encrypt(4)]).unwrap();
    assert_eq!(gateway.drain_all().unwrap().len(), 1);
    // ... and the budget is now exhausted for groups and singles alike.
    assert!(matches!(
        gateway.submit_many(sid, vec![encrypt(5)]),
        Err(GatewayError::QuotaExceeded {
            resource: QuotaResource::Endorsements,
            ..
        })
    ));
    let stats = gateway.stats();
    let (_, iot) = &stats.tenants[0];
    assert_eq!(iot.endorsed, 5);
    assert_eq!(iot.submitted, 5);
    // Throttles counted one per rejected request: 5 + 6 + 1 + 1.
    assert_eq!(iot.throttled, 13);
    // Two SubmitMany commands and one (rejected-before-send) submit: the
    // admitted five requests cost two shard-queue commands.
    assert_eq!(stats.submit_commands, 2);
}

#[test]
fn submit_batch_atomic_rejection_counts_every_request_throttled() {
    // Two slots, shallow queues. A batch whose second slot-group trips
    // backpressure must reject whole — and the throttled stat must count
    // every request in the batch, exactly as the same rejection would
    // record arriving per-request.
    let mut rng = Drbg::from_seed([88u8; 32]);
    let mut avs = AttestationService::new([89u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let gateway = Gateway::new(
        GatewayConfig {
            slots_per_tenant: 2,
            max_queue_depth: 4,
            ..GatewayConfig::default()
        },
        vec![TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    let approved = gateway.measurement(IOT).unwrap();
    let mut establish = || {
        let (sid, offer) = gateway.open_session(IOT).unwrap();
        let (accept, _device) =
            IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
        gateway.complete_session(sid, &accept).unwrap();
        sid
    };
    let on_slot0 = establish();
    let on_slot1 = establish();
    assert_ne!(
        gateway.session_slot(on_slot0).unwrap(),
        gateway.session_slot(on_slot1).unwrap()
    );

    // 3 requests fit slot 0; 5 overflow slot 1's depth of 4.
    let mut batch: Vec<(u64, Vec<u8>)> = Vec::new();
    for _ in 0..3 {
        batch.push((on_slot0, vec![0u8; 16]));
    }
    for _ in 0..5 {
        batch.push((on_slot1, vec![0u8; 16]));
    }
    assert!(matches!(
        gateway.submit_batch(batch),
        Err(GatewayError::Backpressure { .. })
    ));
    // Nothing enqueued, no shard command issued, and all 8 requests of the
    // rejected batch are visible as throttled.
    assert_eq!(gateway.queued(IOT).unwrap(), 0);
    let stats = gateway.stats();
    assert_eq!(stats.submit_commands, 0);
    let (_, iot) = &stats.tenants[0];
    assert_eq!(iot.throttled, 8);
    assert_eq!(iot.submitted, 0);
}

#[test]
fn mixed_submit_and_submit_many_stress_neither_loses_nor_duplicates() {
    const ROUNDS: usize = 4;
    const PER_TENANT: usize = 4;
    let mut s = setup(4, 2);
    let devices = connect_devices(&mut s, PER_TENANT, ROUNDS);
    let expected_total = devices.len() * ROUNDS;

    let mut chunks: Vec<Vec<Device>> = Vec::new();
    let mut iter = devices.into_iter();
    loop {
        let chunk: Vec<Device> = iter.by_ref().take(2).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }

    let gateway = &s.gateway;
    let responses = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        // Submitter threads alternate admission paths: even threads stream
        // each device's rounds through one submit_many group, odd threads
        // submit per-request — racing each other and the drainer.
        for (i, mut chunk) in chunks.into_iter().enumerate() {
            scope.spawn(move || {
                for device in chunk.iter_mut() {
                    if i % 2 == 0 {
                        let group: Vec<Vec<u8>> = (0..ROUNDS)
                            .map(|round| {
                                device.session.encrypt_request(
                                    contribution(device.tenant, device.client_id, round as u64),
                                    PrivateData::None,
                                )
                            })
                            .collect();
                        gateway.submit_many(device.session_id, group).unwrap();
                    } else {
                        for round in 0..ROUNDS {
                            let request = device.session.encrypt_request(
                                contribution(device.tenant, device.client_id, round as u64),
                                PrivateData::None,
                            );
                            gateway.submit(device.session_id, request).unwrap();
                        }
                    }
                }
            });
        }
        let responses = &responses;
        scope.spawn(move || {
            let mut collected = 0usize;
            let mut sweeps = 0usize;
            while collected < expected_total {
                sweeps += 1;
                assert!(sweeps < 100_000, "drain loop did not converge");
                let batch = gateway.drain().unwrap();
                collected += batch.len();
                responses.lock().unwrap().extend(batch);
                if collected < expected_total {
                    std::thread::yield_now();
                }
            }
        });
    });

    // Nothing lost, nothing duplicated, everything endorsed, regardless of
    // which admission path carried the request.
    let responses = responses.into_inner().unwrap();
    assert_eq!(responses.len(), expected_total);
    let mut per_session: HashMap<u64, usize> = HashMap::new();
    for response in &responses {
        assert!(matches!(
            response.outcome,
            BatchOutcome::Reply { endorsed: true, .. }
        ));
        *per_session.entry(response.session_id).or_default() += 1;
    }
    assert_eq!(per_session.len(), 2 * PER_TENANT);
    assert!(per_session.values().all(|n| *n == ROUNDS));
    let stats = s.gateway.stats();
    assert_eq!(stats.total_endorsed(), expected_total as u64);
    // The submit_many threads moved whole device streams per command, so
    // the command count sits well below one per request.
    assert!(stats.submit_commands < expected_total as u64);
}

#[test]
fn batched_and_per_request_admission_agree_bit_for_bit() {
    // The same deterministic workload admitted per-request and in
    // submit_batch chunks must produce identical per-session outcomes and
    // identical total enclave cycles at `shards: 1` — batching moves
    // requests in bigger groups, it never changes what is computed.
    const ROUNDS: usize = 2;
    let run = |chunk_size: Option<usize>| {
        let mut s = setup(1, 4);
        let mut devices = connect_devices(&mut s, 4, ROUNDS);
        let mut requests: Vec<(u64, Vec<u8>)> = Vec::new();
        for round in 0..ROUNDS {
            for device in &mut devices {
                let request = device.session.encrypt_request(
                    contribution(device.tenant, device.client_id, round as u64),
                    PrivateData::None,
                );
                requests.push((device.session_id, request));
            }
        }
        match chunk_size {
            None => {
                for (sid, request) in requests {
                    s.gateway.submit(sid, request).unwrap();
                }
            }
            Some(chunk_size) => {
                let mut iter = requests.into_iter().peekable();
                while iter.peek().is_some() {
                    let chunk: Vec<(u64, Vec<u8>)> = iter.by_ref().take(chunk_size).collect();
                    s.gateway.submit_batch(chunk).unwrap();
                }
            }
        }
        let mut outcomes: Vec<(u64, bool)> = s
            .gateway
            .drain_all()
            .unwrap()
            .into_iter()
            .map(|r| {
                (
                    r.session_id,
                    matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. }),
                )
            })
            .collect();
        outcomes.sort_unstable();
        let stats = s.gateway.stats();
        (outcomes, stats.total_drain_cycles(), stats.submit_commands)
    };
    let (per_request, per_request_cycles, per_request_commands) = run(None);
    let (batched, batched_cycles, batched_commands) = run(Some(4));
    assert_eq!(per_request, batched);
    assert_eq!(per_request_cycles, batched_cycles);
    assert!(per_request_cycles > 0);
    // 16 requests: 16 per-request commands vs 4 chunks (each chunk spans
    // both tenants but lands on one shard) — at least 2x fewer, the E13 bar.
    assert_eq!(per_request_commands, 16);
    assert!(batched_commands * 2 <= per_request_commands);
}

#[test]
fn placement_steers_new_sessions_away_from_deep_queues() {
    // Two slots, one shard. Old placement ordered by (sessions, depth) and
    // would pin the next session to whichever slot has fewest sessions, no
    // matter how deep its queue; the weighted score must instead send it to
    // the busier-by-sessions but idle slot.
    let mut s = setup(1, 2);
    let approved = s.gateway.measurement(IOT).unwrap();
    let (s1, _) = s.gateway.open_session(IOT).unwrap();
    let (s2, _) = s.gateway.open_session(IOT).unwrap();
    let (s3, offer) = s.gateway.open_session(IOT).unwrap();
    let slot_of = |gateway: &Gateway, sid: u64| gateway.session_slot(sid).unwrap();
    // Ties resolve by id: s1 -> slot 0, s2 -> slot 1, s3 -> slot 0.
    assert_eq!(slot_of(&s.gateway, s1), 0);
    assert_eq!(slot_of(&s.gateway, s2), 1);
    assert_eq!(slot_of(&s.gateway, s3), 0);
    // Keep only s3 on slot 0, established, with a deep queue of (garbage)
    // requests — undecryptable ciphertexts still occupy queue depth.
    let (accept, _device) =
        IotDeviceSession::connect(&offer, &s.avs, &approved, &mut s.rng).unwrap();
    s.gateway.complete_session(s3, &accept).unwrap();
    s.gateway.close_session(s1).unwrap();
    for _ in 0..12 {
        s.gateway.submit(s3, vec![0u8; 24]).unwrap();
    }

    // slot 0: 1 session + 12 queued (score 16); slot 1: 1 session, idle
    // (score 4) -> slot 1, growing it to two sessions.
    let (s5, _) = s.gateway.open_session(IOT).unwrap();
    assert_eq!(slot_of(&s.gateway, s5), 1);
    // slot 1 now has MORE sessions (2 vs 1) but scores 8 against slot 0's
    // 16: the depth-aware policy keeps steering around the hot slot where
    // the session-count policy would have flipped back to slot 0.
    let (s6, _) = s.gateway.open_session(IOT).unwrap();
    assert_eq!(slot_of(&s.gateway, s6), 1);

    // Draining the backlog rebalances: slot 0 (1 session, empty queue,
    // score 4) beats slot 1 (3 sessions, score 12) for the next open.
    let drained = s.gateway.drain_all().unwrap();
    assert_eq!(drained.len(), 12);
    assert!(drained
        .iter()
        .all(|r| matches!(r.outcome, BatchOutcome::Failed(_))));
    let (s7, _) = s.gateway.open_session(IOT).unwrap();
    assert_eq!(slot_of(&s.gateway, s7), 0);
}

#[test]
fn shutdown_drains_in_flight_work() {
    const ROUNDS: usize = 2;
    let mut s = setup(2, 2);
    let mut devices = connect_devices(&mut s, 3, ROUNDS);
    for round in 0..ROUNDS {
        for device in &mut devices {
            let request = device.session.encrypt_request(
                contribution(device.tenant, device.client_id, round as u64),
                PrivateData::None,
            );
            s.gateway.submit(device.session_id, request).unwrap();
        }
    }
    // Nothing drained yet: every request is still in-flight inside the
    // runtime when shutdown begins.
    assert_eq!(s.gateway.queued(IOT).unwrap(), 3 * ROUNDS);
    let responses = s.gateway.shutdown().unwrap();
    assert_eq!(responses.len(), devices.len() * ROUNDS);
    assert!(responses
        .iter()
        .all(|r| matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. })));
}

#[test]
fn sharding_changes_who_computes_not_what() {
    // The same deterministic workload served at 1 and 4 shards must produce
    // identical outcomes per session and identical total enclave cycles —
    // sharding only redistributes the work. (This is the property that lets
    // `shards: 1` stand in as the reproducible mode for E11.)
    const ROUNDS: usize = 2;
    let run = |shards: usize| {
        let mut s = setup(shards, 4);
        let mut devices = connect_devices(&mut s, 4, ROUNDS);
        for round in 0..ROUNDS {
            for device in &mut devices {
                let request = device.session.encrypt_request(
                    contribution(device.tenant, device.client_id, round as u64),
                    PrivateData::None,
                );
                s.gateway.submit(device.session_id, request).unwrap();
            }
        }
        let mut outcomes: Vec<(u64, String, bool)> = s
            .gateway
            .drain_all()
            .unwrap()
            .into_iter()
            .map(|r| {
                let endorsed = matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. });
                (r.session_id, r.tenant.to_string(), endorsed)
            })
            .collect();
        outcomes.sort();
        (outcomes, s.gateway.stats().total_drain_cycles())
    };
    let (serial_outcomes, serial_cycles) = run(1);
    let (sharded_outcomes, sharded_cycles) = run(4);
    assert_eq!(serial_outcomes, sharded_outcomes);
    assert_eq!(serial_cycles, sharded_cycles);
    assert!(serial_cycles > 0);
}

#[test]
fn core_pinning_is_opt_in_honestly_reported_and_serving_neutral() {
    const ROUNDS: usize = 2;
    let run = |pin_cores: bool| {
        let mut s = setup_with(GatewayConfig {
            slots_per_tenant: 2,
            shards: 2,
            pin_cores,
            ..GatewayConfig::default()
        });
        let mut devices = connect_devices(&mut s, 3, ROUNDS);
        for round in 0..ROUNDS {
            for device in &mut devices {
                let request = device.session.encrypt_request(
                    contribution(device.tenant, device.client_id, round as u64),
                    PrivateData::None,
                );
                s.gateway.submit(device.session_id, request).unwrap();
            }
        }
        let mut outcomes: Vec<(u64, String, bool)> = s
            .gateway
            .drain_all()
            .unwrap()
            .into_iter()
            .map(|r| {
                let endorsed = matches!(r.outcome, BatchOutcome::Reply { endorsed: true, .. });
                (r.session_id, r.tenant.to_string(), endorsed)
            })
            .collect();
        outcomes.sort();
        // `stats` round-trips every shard, so each worker is past its
        // pre-receive pinning attempt and the count is final.
        let cycles = s.gateway.stats().total_drain_cycles();
        (outcomes, cycles, s.gateway.pinned_workers())
    };

    let (unpinned_outcomes, unpinned_cycles, unpinned_count) = run(false);
    // Off by default means exactly zero affinity calls succeed.
    assert_eq!(unpinned_count, 0);

    let (pinned_outcomes, pinned_cycles, pinned_count) = run(true);
    assert!(pinned_count <= 2);
    if glimmer_gateway::pinning_supported() {
        // A scratch-thread probe tells us whether this host's cpuset allows
        // pinning at all; if it does, every worker must have pinned (all
        // target cores exist: shard_id modulo the detected core count).
        let probe = std::thread::spawn(|| glimmer_gateway::pin_to_core(0))
            .join()
            .unwrap();
        if probe {
            assert_eq!(pinned_count, 2, "pinning supported but workers not pinned");
        }
    } else {
        assert_eq!(pinned_count, 0);
    }

    // Pinning relocates work, it must never change it.
    assert_eq!(unpinned_outcomes, pinned_outcomes);
    assert_eq!(unpinned_cycles, pinned_cycles);
}

#[test]
fn eviction_follows_the_injected_clock() {
    let clock = Arc::new(ManualClock::new());
    let mut rng = Drbg::from_seed([83u8; 32]);
    let mut avs = AttestationService::new([84u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let gateway = Gateway::with_clock(
        GatewayConfig::default(),
        vec![TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )],
        &mut avs,
        &mut rng,
        clock.clone(),
    )
    .unwrap();

    // Two abandoned handshakes, opened thirty (manual) seconds apart.
    let (early, _) = gateway.open_session(IOT).unwrap();
    clock.advance(Duration::from_secs(30));
    let (late, _) = gateway.open_session(IOT).unwrap();
    // An established session never becomes stale, however old.
    let approved = gateway.measurement(IOT).unwrap();
    let (established, offer) = gateway.open_session(IOT).unwrap();
    let (accept, _device) = IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
    gateway.complete_session(established, &accept).unwrap();

    // Time has not advanced past the cutoff for anyone: nothing to evict.
    assert!(gateway
        .evict_stale_pending(Duration::from_secs(45))
        .is_empty());
    // Fifteen more seconds: only the early session has aged 45s.
    clock.advance(Duration::from_secs(15));
    assert_eq!(
        gateway.evict_stale_pending(Duration::from_secs(45)),
        vec![early]
    );
    // Another thirty: now the late one has aged past the cutoff too.
    clock.advance(Duration::from_secs(30));
    assert_eq!(
        gateway.evict_stale_pending(Duration::from_secs(45)),
        vec![late]
    );
    // The established session survived every sweep; the evicted ids are gone.
    assert_eq!(gateway.live_sessions(), 1);
    assert!(matches!(
        gateway.submit(early, vec![0u8; 16]),
        Err(GatewayError::UnknownSession(_))
    ));
}
