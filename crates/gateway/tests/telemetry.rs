//! Telemetry-layer integration contract: sampled traces are deterministic
//! under the injected [`ManualClock`] (every pipeline stage stamped with an
//! exact, monotonic timestamp), snapshots taken under concurrent load never
//! regress and never tear, and the two export renderings (Prometheus-style
//! text and JSON) round-trip to the identical sample map.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::telemetry::{parse_exposition, parse_json_samples};
use glimmer_gateway::{
    AdmitReason, AsyncGateway, Gateway, GatewayConfig, ManualClock, SessionExecutor,
    TelemetryConfig, TenantConfig, TraceStage,
};
use sgx_sim::AttestationService;
use std::sync::Arc;

const APP: &str = "iot-telemetry.example";
const DIM: usize = 4;

struct Setup {
    gateway: Gateway,
    clock: Arc<ManualClock>,
    avs: AttestationService,
    rng: Drbg,
}

fn setup(telemetry: TelemetryConfig) -> Setup {
    let mut rng = Drbg::from_seed([90u8; 32]);
    let mut avs = AttestationService::new([91u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let clock = Arc::new(ManualClock::new());
    let gateway = Gateway::with_clock(
        GatewayConfig {
            slots_per_tenant: 1,
            shards: 1,
            telemetry,
            ..GatewayConfig::default()
        },
        vec![TenantConfig::new(
            APP,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )],
        &mut avs,
        &mut rng,
        Arc::clone(&clock) as Arc<dyn glimmer_gateway::Clock>,
    )
    .unwrap();
    Setup {
        gateway,
        clock,
        avs,
        rng,
    }
}

/// Opens `n` established sessions with a round-0 mask installed on each.
fn connect(s: &mut Setup, n: usize) -> Vec<(u64, IotDeviceSession, u64)> {
    let approved = s.gateway.measurement(APP).unwrap();
    let client_ids: Vec<u64> = (0..n as u64).collect();
    let masks = BlindingService::new([92u8; 32]).zero_sum_masks(0, &client_ids, DIM);
    let mut devices = Vec::new();
    for (i, client_id) in client_ids.iter().enumerate() {
        let (session_id, offer) = s.gateway.open_session(APP).unwrap();
        let (accept, session) =
            IotDeviceSession::connect(&offer, &s.avs, &approved, &mut s.rng).unwrap();
        s.gateway.complete_session(session_id, &accept).unwrap();
        s.gateway.install_mask(session_id, &masks[i]).unwrap();
        devices.push((session_id, session, *client_id));
    }
    devices
}

fn ciphertext(session: &mut IotDeviceSession, client_id: u64, round: u64) -> Vec<u8> {
    session.encrypt_request(
        Contribution {
            app_id: APP.to_string(),
            client_id,
            round,
            payload: ContributionPayload::IotReadings {
                samples: vec![0.25; DIM],
            },
        },
        PrivateData::None,
    )
}

#[test]
fn manual_clock_trace_stamps_all_five_stages_deterministically() {
    let mut s = setup(TelemetryConfig {
        // Sample every submit: the test needs *this* request traced.
        trace_sample_interval: 1,
        ..TelemetryConfig::default()
    });
    let mut devices = connect(&mut s, 1);
    let (session_id, ref mut session, client_id) = devices[0];
    let request = ciphertext(session, client_id, 0);

    // Admission happens on the caller thread at exactly t=1_000...
    s.clock.advance_nanos(1_000);
    s.gateway.submit(session_id, request).unwrap();
    // ...and the FIFO stats round-trip guarantees the worker processed the
    // enqueue (stamping `Enqueued`) before the clock moves again.
    let stats = s.gateway.stats();
    assert_eq!(stats.tenants[0].1.submitted, 1);
    s.clock.advance_nanos(1_500);
    let replies = s.gateway.drain().unwrap();
    assert_eq!(replies.len(), 1);

    let snapshot = s.gateway.telemetry();
    let trace = snapshot
        .traces
        .iter()
        .find(|t| t.trace_id != 0)
        .expect("interval 1 must have traced the submit");
    assert_eq!(trace.session_id, session_id);
    assert!(trace.is_complete());
    assert!(trace.is_monotonic());
    // Exact stage timings, not just ordering: admission and enqueue at
    // t=1000, the whole drain (start, ECALL, reply delivery) at t=2500.
    assert_eq!(trace.stage(TraceStage::Admitted), Some(1_000));
    assert_eq!(trace.stage(TraceStage::Enqueued), Some(1_000));
    assert_eq!(trace.stage(TraceStage::DrainStart), Some(2_500));
    assert_eq!(trace.stage(TraceStage::EcallDone), Some(2_500));
    assert_eq!(trace.stage(TraceStage::ReplyDelivered), Some(2_500));

    // The derived histograms see the same deterministic durations.
    assert_eq!(snapshot.queue_wait_nanos.count, 1);
    assert_eq!(snapshot.queue_wait_nanos.sum, 1_500);
    assert_eq!(snapshot.queue_wait_nanos.max, 1_500);
    assert_eq!(snapshot.ecall_nanos.count, 1);
    assert_eq!(snapshot.ecall_nanos.sum, 0);
    assert_eq!(snapshot.batch_size.count, 1);
    assert_eq!(snapshot.batch_size.sum, 1);
    // The live gauge sampled at drain time saw the one queued request, both
    // in the snapshot and in the merged-on-read stats row.
    assert_eq!(snapshot.shard_queue_depth, vec![1]);
    assert_eq!(snapshot.shard_drain_sweeps, vec![1]);
    let stats = s.gateway.stats();
    assert_eq!(stats.slots[0].stats.last_drain_queue_depth, 1);
    assert_eq!(stats.last_drain_queue_depth_by_shard()[&0], 1);
}

#[test]
fn snapshots_under_concurrent_load_never_regress_or_tear() {
    const PER_DEVICE: usize = 200;
    let mut s = setup(TelemetryConfig::default());
    let mut devices = connect(&mut s, 2);

    // Pre-encrypt each device's schedule so the writer threads only submit.
    let mut schedules = Vec::new();
    for (session_id, session, client_id) in &mut devices {
        let requests: Vec<Vec<u8>> = (0..PER_DEVICE)
            .map(|round| ciphertext(session, *client_id, round as u64))
            .collect();
        schedules.push((*session_id, requests));
    }

    std::thread::scope(|scope| {
        for (session_id, requests) in schedules {
            let gateway = &s.gateway;
            scope.spawn(move || {
                for request in requests {
                    gateway.submit(session_id, request).unwrap();
                }
            });
        }

        // Race the scrape loop against the writers: every counter must be
        // monotone across snapshots, and every histogram must be internally
        // consistent (the buckets never lag the count — the no-torn-reads
        // ordering contract).
        let mut last_accepted = 0u64;
        let mut last_queue_wait = 0u64;
        loop {
            let _ = s.gateway.drain().unwrap();
            let snapshot = s.gateway.telemetry();
            let accepted = snapshot
                .admission
                .iter()
                .find(|(reason, _)| *reason == AdmitReason::Accepted)
                .map(|(_, n)| *n)
                .unwrap();
            assert!(accepted >= last_accepted, "accepted counter regressed");
            last_accepted = accepted;
            for (name, hist) in snapshot.histograms() {
                let bucket_total: u64 = hist.buckets.iter().sum();
                assert!(
                    bucket_total >= hist.count,
                    "{name}: buckets lag count (torn read)"
                );
                assert!(hist.count == 0 || hist.max > 0 || hist.sum == 0);
            }
            assert!(
                snapshot.queue_wait_nanos.count >= last_queue_wait,
                "queue-wait histogram regressed"
            );
            last_queue_wait = snapshot.queue_wait_nanos.count;
            if accepted == (2 * PER_DEVICE) as u64 {
                break;
            }
        }
    });

    // Everything submitted was eventually drained and counted exactly once
    // (sweeps are capped at `max_batch`, so drain until the queues are dry).
    while !s.gateway.drain().unwrap().is_empty() {}
    let snapshot = s.gateway.telemetry();
    assert_eq!(snapshot.batch_size.sum, (2 * PER_DEVICE) as u64);
}

#[test]
fn exposition_and_json_render_the_same_samples() {
    let mut s = setup(TelemetryConfig {
        trace_sample_interval: 4,
        ..TelemetryConfig::default()
    });
    let mut devices = connect(&mut s, 2);
    for round in 0..8u64 {
        for (session_id, session, client_id) in &mut devices {
            let request = ciphertext(session, *client_id, round);
            s.clock.advance_nanos(250);
            s.gateway.submit(*session_id, request).unwrap();
        }
        s.clock.advance_nanos(1_000);
        let _ = s.gateway.drain().unwrap();
    }
    // One typed rejection so the admission families and the journal render.
    let err = s.gateway.submit(999_999, vec![0u8; 8]).unwrap_err();
    let _ = err;
    let _ = s.gateway.checkpoint().unwrap();

    let snapshot = s.gateway.telemetry();
    assert_eq!(snapshot.checkpoint_nanos.count, 1);
    assert!(!snapshot.events.is_empty());

    let from_text = parse_exposition(&snapshot.render_prometheus()).unwrap();
    let from_json = parse_json_samples(&snapshot.render_json()).unwrap();
    assert_eq!(from_text, from_json, "the two renderings must agree");
    assert_eq!(from_text, snapshot.samples());

    // The quantile series the dashboards key on are present for both the
    // ECALL and queue-wait histograms.
    for key in [
        "glimmer_ecall_nanos_p50",
        "glimmer_ecall_nanos_p99",
        "glimmer_queue_wait_nanos_p50",
        "glimmer_queue_wait_nanos_p99",
    ] {
        assert!(from_text.contains_key(key), "missing sample {key}");
    }
    assert_eq!(from_text["glimmer_admission_total{reason=accepted}"], 16);
    assert_eq!(
        from_text["glimmer_admission_total{reason=unknown_session}"],
        1
    );
}

#[test]
fn async_front_end_serves_telemetry_and_feeds_executor_histograms() {
    let mut s = setup(TelemetryConfig::default());
    let mut devices = connect(&mut s, 1);
    let (session_id, ref mut session, client_id) = devices[0];
    let request = ciphertext(session, client_id, 0);

    let hub = s.gateway.telemetry_handle();
    let front = AsyncGateway::new(s.gateway);
    let mut executor = SessionExecutor::new();
    executor.attach_telemetry(Arc::clone(&hub));
    let seen = std::rc::Rc::new(std::cell::RefCell::new(None));
    {
        let front = front.clone();
        let seen = std::rc::Rc::clone(&seen);
        executor.spawn(async move {
            front.submit(session_id, request).await.unwrap();
            let replies = front.drain_replies().await.unwrap();
            assert_eq!(replies.len(), 1);
            *seen.borrow_mut() = Some(front.drain_telemetry().await);
        });
    }
    executor.run();
    let snapshot = seen.borrow_mut().take().expect("task ran to completion");
    let accepted = snapshot
        .admission
        .iter()
        .find(|(reason, _)| *reason == AdmitReason::Accepted)
        .map(|(_, n)| *n)
        .unwrap();
    assert_eq!(accepted, 1);
    // The executor recorded its scheduling histograms into the same hub the
    // snapshot was drawn from... but that snapshot was taken *inside* a
    // poll; a fresh one observes the completed polls.
    let after = hub.snapshot();
    assert!(after.executor_poll_nanos.count >= 1);
    assert!(after.executor_wake_nanos.count >= 1);
}
