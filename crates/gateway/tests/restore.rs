//! Crash-safe checkpoint/restore invariants, proven by deterministic
//! crash-fault injection.
//!
//! The matrix kills the gateway at every labelled [`CrashPoint`] between
//! checkpoint and restore and replays the E11 mixed-tenant workload. For
//! every point it asserts: no lost or duplicated endorsements, no
//! cross-tenant leakage, and — at `shards: 1` — a drain order bit-identical
//! to an uninterrupted run. Corrupted, truncated, spliced, cross-machine,
//! and cross-measurement snapshots must all fail closed with typed errors.
//! A determinism canary runs the checkpoint scenario twice and diffs the
//! snapshot bytes.

use glimmer_core::blinding::{BlindingService, MaskShare};
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{
    CrashAt, CrashPoint, Gateway, GatewayConfig, GatewayDelta, GatewayError, GatewaySnapshot,
    ManualClock, QuotaResource, SnapshotChain, TenantConfig, TenantQuota,
};
use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
use proptest::prelude::*;
use sgx_sim::{AttestationService, PlatformConfig};
use std::ops::Range;
use std::sync::{Arc, OnceLock};

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const DIM: usize = 4;
const DEVICES_PER_TENANT: usize = 2;
const ROUNDS: usize = 4;
const PRE_ROUNDS: usize = 2;

const GW_SEED: [u8; 32] = [90u8; 32];
const DEV_SEED: [u8; 32] = [91u8; 32];
const AVS_SEED: [u8; 32] = [92u8; 32];
const WORKLOAD_SEED: [u8; 32] = [93u8; 32];
const MATERIAL_SEED: [u8; 32] = [94u8; 32];

fn config() -> GatewayConfig {
    GatewayConfig {
        slots_per_tenant: 2,
        // Deterministic single-shard mode: the matrix compares drain order
        // bit-for-bit against an uninterrupted run.
        shards: 1,
        max_batch: 64,
        max_queue_depth: 256,
        placement_session_weight: 4,
        platform_config: PlatformConfig::default(),
        ..GatewayConfig::default()
    }
}

fn tenant_configs() -> Vec<TenantConfig> {
    let mut rng = Drbg::from_seed(MATERIAL_SEED);
    let iot_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let kb_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    vec![
        TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            iot_material.secret_bytes(),
        ),
        TenantConfig::new(
            KEYBOARD,
            GlimmerDescriptor::keyboard_range_only(),
            kb_material.secret_bytes(),
        ),
    ]
}

fn workload() -> GatewayTrafficWorkload {
    GatewayTrafficWorkload::generate(
        &[
            TenantTrafficSpec {
                name: IOT.to_string(),
                devices: DEVICES_PER_TENANT,
                requests_per_device: ROUNDS,
                dimension: DIM,
                misbehaving_fraction: 0.25,
            },
            TenantTrafficSpec {
                name: KEYBOARD.to_string(),
                devices: DEVICES_PER_TENANT,
                requests_per_device: ROUNDS,
                dimension: DIM,
                misbehaving_fraction: 0.25,
            },
        ],
        WORKLOAD_SEED,
    )
}

struct Device {
    tenant: String,
    session_id: u64,
    session: IotDeviceSession,
}

/// One scheduled arrival: which device (index into the fixture's device
/// vector), which round, and the encrypted request. Requests are encrypted
/// exactly once, up front — after a crash, devices retransmit the *stored*
/// ciphertext of every unacknowledged request, exactly like real devices.
struct Event {
    device: usize,
    round: usize,
    ciphertext: Vec<u8>,
}

struct Fixture {
    gateway: Option<Gateway>,
    avs: AttestationService,
    clock: Arc<ManualClock>,
    devices: Vec<Device>,
    events: Vec<Event>,
}

fn build_fixture() -> Fixture {
    let workload = workload();
    let mut avs = AttestationService::new(AVS_SEED);
    let clock = Arc::new(ManualClock::new());
    let gateway = Gateway::with_clock(
        config(),
        tenant_configs(),
        &mut avs,
        &mut Drbg::from_seed(GW_SEED),
        clock.clone(),
    )
    .unwrap();

    let mut dev_rng = Drbg::from_seed(DEV_SEED);
    let mut devices = Vec::new();
    for (t_idx, tenant) in workload.tenants.iter().enumerate() {
        let approved = gateway.measurement(&tenant.name).unwrap();
        let client_ids: Vec<u64> = tenant.devices.iter().map(|d| d.device_id).collect();
        let blinding = BlindingService::new([95 + t_idx as u8; 32]);
        let mask_rounds: Vec<Vec<MaskShare>> = (0..ROUNDS)
            .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, DIM))
            .collect();
        for (d_idx, _device) in tenant.devices.iter().enumerate() {
            let (session_id, offer) = gateway.open_session(&tenant.name).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut dev_rng).unwrap();
            gateway.complete_session(session_id, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(session_id, &round[d_idx]).unwrap();
            }
            devices.push(Device {
                tenant: tenant.name.clone(),
                session_id,
                session,
            });
        }
    }

    let mut events = Vec::new();
    for event in &workload.schedule {
        let device_idx = event.tenant * DEVICES_PER_TENANT + event.device;
        let traffic = &workload.tenants[event.tenant].devices[event.device];
        let samples = traffic.requests[event.request].clone();
        let payload = if workload.tenants[event.tenant].name == IOT {
            ContributionPayload::IotReadings { samples }
        } else {
            ContributionPayload::ModelUpdate { weights: samples }
        };
        let contribution = Contribution {
            app_id: workload.tenants[event.tenant].name.clone(),
            client_id: traffic.device_id,
            round: event.request as u64,
            payload,
        };
        let ciphertext = devices[device_idx]
            .session
            .encrypt_request(contribution, PrivateData::None);
        events.push(Event {
            device: device_idx,
            round: event.request,
            ciphertext,
        });
    }

    Fixture {
        gateway: Some(gateway),
        avs,
        clock,
        devices,
        events,
    }
}

/// One decrypted reply, in drain order: (session id, tenant label, decrypted
/// device-side view of the response). Two runs agreeing on this sequence
/// agree on drain order, endorsement outcomes, and the exact endorsement
/// contents (signatures are deterministic), i.e. bit-identically.
type RespRec = (u64, String, String);

fn submit_rounds(
    devices: &[Device],
    events: &[Event],
    gateway: &Gateway,
    rounds: Range<usize>,
) -> Vec<RespRec> {
    submit_filtered(devices, events, gateway, |e| rounds.contains(&e.round))
}

/// [`submit_rounds`] with an arbitrary event filter — used by the delta
/// tests to dirty only one tenant's slots between checkpoints.
fn submit_filtered(
    devices: &[Device],
    events: &[Event],
    gateway: &Gateway,
    keep: impl Fn(&Event) -> bool,
) -> Vec<RespRec> {
    for event in events.iter().filter(|e| keep(e)) {
        gateway
            .submit(devices[event.device].session_id, event.ciphertext.clone())
            .unwrap();
    }
    let responses = gateway.drain_all().unwrap();
    responses
        .iter()
        .map(|response| {
            let device = devices
                .iter()
                .find(|d| d.session_id == response.session_id)
                .expect("response for unknown session");
            // No cross-tenant leakage: the reply is labelled with the
            // session's own tenant and decrypts under the device's own
            // channel keys (another tenant's enclave or another session's
            // keys would fail AEAD opening).
            assert_eq!(&*response.tenant, device.tenant.as_str());
            let BatchOutcome::Reply { ciphertext, .. } = &response.outcome else {
                panic!("unexpected outcome {:?}", response.outcome);
            };
            let decrypted = device.session.decrypt_response(ciphertext).unwrap();
            (
                response.session_id,
                device.tenant.clone(),
                format!("{decrypted:?}"),
            )
        })
        .collect()
}

fn run_uninterrupted() -> Vec<RespRec> {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    let mut records = submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);
    records.extend(submit_rounds(
        &fixture.devices,
        &fixture.events,
        &gateway,
        PRE_ROUNDS..ROUNDS,
    ));
    records
}

/// Serves the first half of the workload, checkpoints, kills the gateway at
/// `point`, restores from the surviving snapshot bytes, and serves the rest.
/// Returns the full decrypted reply sequence and the snapshot bytes.
fn run_with_crash_at(point: CrashPoint) -> (Vec<RespRec>, Vec<u8>) {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    let mut records = submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);

    // The last good checkpoint — what the operator has persisted.
    let persisted = gateway.checkpoint().unwrap();
    let snapshot_bytes = persisted.to_bytes();

    let restore_side = matches!(point, CrashPoint::BeforeRestore | CrashPoint::MidRestore);
    if !restore_side {
        // A later checkpoint attempt dies at the labelled point: it must
        // fail atomically (typed error, workers released, nothing emitted).
        // The streamed- and delta-only points are injected on their own
        // capture paths, where they actually fire.
        let err = match point {
            CrashPoint::MidStreamExport => gateway
                .checkpoint_streamed_with_hooks(&CrashAt(point))
                .unwrap_err(),
            CrashPoint::DeltaAssembled => gateway
                .checkpoint_delta_with_hooks(&persisted.chain_base(), &CrashAt(point))
                .unwrap_err(),
            _ => gateway.checkpoint_with_hooks(&CrashAt(point)).unwrap_err(),
        };
        assert_eq!(err, GatewayError::CrashInjected(point));
        // The gateway is still fully serviceable after the aborted attempt.
        assert!(gateway.drain().unwrap().is_empty());
    }

    // The crash: the serving process dies, taking every enclave with it.
    drop(gateway);

    // Restore from the persisted bytes (full envelope validation en route).
    let snapshot = GatewaySnapshot::from_bytes(&snapshot_bytes).unwrap();
    if restore_side {
        // The first restore attempt dies at the labelled point; the snapshot
        // is untouched, so a clean retry (fresh machine-identity rng in its
        // original state) must succeed.
        let err = Gateway::restore_with_hooks(
            config(),
            tenant_configs(),
            &snapshot,
            &mut fixture.avs,
            &mut Drbg::from_seed(GW_SEED),
            fixture.clock.clone(),
            &CrashAt(point),
        )
        .unwrap_err();
        assert_eq!(err, GatewayError::CrashInjected(point));
    }
    let restored = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap();

    // Zero re-provisioning: each slot paid exactly one IMPORT_STATE ECALL —
    // no service-key install, no session re-handshakes, no mask re-installs.
    let stats = restored.stats();
    assert_eq!(stats.slots.len(), 4);
    for row in &stats.slots {
        assert_eq!(
            row.stats.ecalls, 1,
            "slot {}/{} paid provisioning ecalls on restore",
            row.tenant, row.slot
        );
    }
    // Restored counters are cumulative: the pre-crash endorsements are
    // still accounted.
    let pre_endorsed: usize = records
        .iter()
        .filter(|(_, _, d)| d.contains("Endorsed"))
        .count();
    assert_eq!(stats.total_endorsed(), pre_endorsed as u64);

    // Devices retransmit everything unacknowledged and keep serving.
    records.extend(submit_rounds(
        &fixture.devices,
        &fixture.events,
        &restored,
        PRE_ROUNDS..ROUNDS,
    ));

    // A restored gateway never reissues a session id a device still holds.
    let (fresh_id, _offer) = restored.open_session(IOT).unwrap();
    assert!(fresh_id >= snapshot.next_session_id);
    assert!(fixture.devices.iter().all(|d| d.session_id != fresh_id));

    (records, snapshot_bytes)
}

#[test]
fn crash_matrix_restores_bit_identically_at_every_point() {
    let baseline = run_uninterrupted();
    assert!(
        baseline.iter().any(|(_, _, d)| d.contains("Endorsed")),
        "workload must produce endorsements"
    );
    assert!(
        baseline.iter().any(|(_, t, _)| t == IOT) && baseline.iter().any(|(_, t, _)| t == KEYBOARD),
        "workload must span both tenants"
    );
    // The migration-only points never fire on the checkpoint/restore
    // paths; their matrix lives in tests/rebalance.rs.
    for point in CrashPoint::ALL
        .into_iter()
        .filter(|p| !CrashPoint::MIGRATION.contains(p))
    {
        let (records, _) = run_with_crash_at(point);
        assert_eq!(
            records, baseline,
            "crash at {point}: restored serving diverged from the uninterrupted run"
        );
    }
}

#[test]
fn snapshot_determinism_canary() {
    // The non-determinism canary: the same scenario, run twice from
    // scratch, must produce byte-identical snapshots (sorted map encodings,
    // injected clock, seeded DRBGs). A diff here means restore correctness
    // can no longer be argued from determinism.
    let (records_a, bytes_a) = run_with_crash_at(CrashPoint::SnapshotAssembled);
    let (records_b, bytes_b) = run_with_crash_at(CrashPoint::SnapshotAssembled);
    assert_eq!(records_a, records_b, "reply sequences diverged across runs");
    assert_eq!(bytes_a, bytes_b, "snapshot bytes diverged across runs");
}

#[test]
fn corrupted_snapshots_fail_closed_with_typed_errors() {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);
    let snapshot = gateway.checkpoint().unwrap();
    let bytes = snapshot.to_bytes();
    drop(gateway);

    // Truncation at every prefix length: typed corruption, never a panic.
    for cut in [0, 4, 12, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1] {
        assert!(matches!(
            GatewaySnapshot::from_bytes(&bytes[..cut]),
            Err(GatewayError::SnapshotCorrupt(_))
        ));
    }
    // Bit flips across the whole frame: the CRC (or magic/version check)
    // catches every one.
    for pos in (0..bytes.len()).step_by(13) {
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0x10;
        assert!(
            matches!(
                GatewaySnapshot::from_bytes(&corrupt),
                Err(GatewayError::SnapshotCorrupt(_) | GatewayError::SnapshotMismatch { .. })
            ),
            "flip at byte {pos} must be rejected"
        );
    }

    // A tampered sealed blob passes the envelope (the attacker can re-CRC)
    // but the enclave refuses it: typed, tenant-labelled.
    let mut tampered = snapshot.clone();
    let mid = tampered.tenants[0].slots[0].sealed_state.len() / 2;
    tampered.tenants[0].slots[0].sealed_state[mid] ^= 0x01;
    let err = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &tampered,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        GatewayError::SealedBlobRejected {
            tenant: Arc::from(IOT),
        }
    );

    // Restoring on a different machine (different fuse secrets): rejected.
    let err = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed([7u8; 32]),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, GatewayError::SealedBlobRejected { .. }));

    // Cross-measurement: a v2 descriptor (even with the snapshot's
    // measurement field forged to match) cannot unseal v1 state.
    let mut v2_tenants = tenant_configs();
    for tenant in &mut v2_tenants {
        tenant.descriptor.version += 1;
    }
    let mut forged = snapshot.clone();
    for (snap, tenant) in forged.tenants.iter_mut().zip(&v2_tenants) {
        snap.measurement = tenant.descriptor.measurement();
    }
    let err = Gateway::restore_with_clock(
        config(),
        v2_tenants,
        &forged,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, GatewayError::SealedBlobRejected { .. }));

    // Honest version skew (unforged snapshot, v2 config) fails even earlier,
    // at the measurement check.
    let mut v2_only = tenant_configs();
    for tenant in &mut v2_only {
        tenant.descriptor.version += 1;
    }
    let err = Gateway::restore_with_clock(
        config(),
        v2_only,
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, GatewayError::SnapshotMismatch { .. }));

    // Config drift: a different pool width is refused before any enclave
    // work.
    let mut wide = config();
    wide.slots_per_tenant = 3;
    let err = Gateway::restore_with_clock(
        wide,
        tenant_configs(),
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, GatewayError::SnapshotMismatch { .. }));

    // A forged session record (id at/after the issuance counter) is refused.
    let mut bogus = snapshot.clone();
    if let Some(record) = bogus.sessions.first().copied() {
        let mut forged_record = record;
        forged_record.session_id = bogus.next_session_id + 5;
        bogus.sessions.push(forged_record);
    }
    let err = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &bogus,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert!(matches!(err, GatewayError::SnapshotMismatch { .. }));
}

#[test]
fn sealed_state_cannot_be_spliced_across_snapshots() {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..1);
    let epoch1 = gateway.checkpoint().unwrap();
    submit_rounds(&fixture.devices, &fixture.events, &gateway, 1..PRE_ROUNDS);
    let epoch2 = gateway.checkpoint().unwrap();
    assert_eq!(epoch1.epoch, 1);
    assert_eq!(epoch2.epoch, 2);
    drop(gateway);

    // Both snapshots restore cleanly on their own; a blob moved from epoch 1
    // into the epoch-2 snapshot is sealed under the wrong header (AAD) and
    // the enclave refuses it — even though the same enclave code on the
    // same machine sealed both.
    let mut spliced = epoch2.clone();
    spliced.tenants[0].slots[0].sealed_state = epoch1.tenants[0].slots[0].sealed_state.clone();
    let err = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &spliced,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap_err();
    assert_eq!(
        err,
        GatewayError::SealedBlobRejected {
            tenant: Arc::from(IOT),
        }
    );

    // The unspliced epoch-2 snapshot still restores.
    let restored = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &epoch2,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap();
    assert_eq!(restored.live_sessions(), fixture.devices.len());
}

#[test]
fn restore_prunes_sessions_missing_from_the_captured_table() {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);
    let mut snapshot = gateway.checkpoint().unwrap();
    drop(gateway);

    // Simulate the close-racing-the-barrier window: a session that closed
    // concurrently with the checkpoint is in the sealed enclave exports but
    // not in the captured table.
    let dropped = snapshot.sessions.remove(0);
    let restored = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap();

    // The routing layer never routes the dropped id again...
    assert_eq!(restored.live_sessions(), fixture.devices.len() - 1);
    let orphan_event = fixture
        .events
        .iter()
        .find(|e| {
            fixture.devices[e.device].session_id == dropped.session_id && e.round >= PRE_ROUNDS
        })
        .unwrap();
    assert!(matches!(
        restored.submit(dropped.session_id, orphan_event.ciphertext.clone()),
        Err(GatewayError::UnknownSession(_))
    ));
    // ...and the surviving sessions keep serving normally (their enclave
    // state was kept through the prune).
    let survivor = fixture
        .events
        .iter()
        .find(|e| {
            fixture.devices[e.device].session_id != dropped.session_id && e.round >= PRE_ROUNDS
        })
        .unwrap();
    restored
        .submit(
            fixture.devices[survivor.device].session_id,
            survivor.ciphertext.clone(),
        )
        .unwrap();
    let responses = restored.drain_all().unwrap();
    assert_eq!(responses.len(), 1);
    assert!(matches!(responses[0].outcome, BatchOutcome::Reply { .. }));
}

#[test]
fn replayed_requests_stay_rejected_across_restarts() {
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    let records = submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);
    assert!(!records.is_empty());
    let snapshot = gateway.checkpoint().unwrap();
    drop(gateway);

    let restored = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &snapshot,
        &mut fixture.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture.clock.clone(),
    )
    .unwrap();

    // An attacker replaying an already-processed pre-crash request against
    // the restored gateway gains nothing: the per-session replay nonces
    // were part of the sealed state, so the enclave refuses the duplicate
    // instead of re-endorsing it (which would double-bill the tenant's
    // endorsement budget).
    let replayed = fixture
        .events
        .iter()
        .find(|e| e.round < PRE_ROUNDS)
        .unwrap();
    restored
        .submit(
            fixture.devices[replayed.device].session_id,
            replayed.ciphertext.clone(),
        )
        .unwrap();
    let responses = restored.drain_all().unwrap();
    assert_eq!(responses.len(), 1);
    match &responses[0].outcome {
        BatchOutcome::Failed(reason) => assert!(
            reason.contains("replay"),
            "expected replay rejection, got {reason:?}"
        ),
        other => panic!("replay must not produce a reply: {other:?}"),
    }
}

#[test]
fn endorsement_budget_survives_restarts() {
    // One tenant, one device, a budget of exactly one endorsement. The
    // budget is consumed before the crash; after restore the counter must
    // still be there, or a crash loop would mint unlimited endorsements.
    let mut rng = Drbg::from_seed([60u8; 32]);
    let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let tenants = || {
        let mut tenant = TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        );
        tenant.quota = TenantQuota {
            endorsement_budget: Some(1),
            ..TenantQuota::default()
        };
        vec![tenant]
    };
    let small_config = GatewayConfig {
        slots_per_tenant: 1,
        ..config()
    };
    let mut avs = AttestationService::new([61u8; 32]);
    let clock = Arc::new(ManualClock::new());
    let gateway = Gateway::with_clock(
        small_config.clone(),
        tenants(),
        &mut avs,
        &mut Drbg::from_seed([62u8; 32]),
        clock.clone(),
    )
    .unwrap();

    let approved = gateway.measurement(IOT).unwrap();
    let (sid, offer) = gateway.open_session(IOT).unwrap();
    let (accept, mut session) =
        IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
    gateway.complete_session(sid, &accept).unwrap();
    let blinding = BlindingService::new([63u8; 32]);
    for round in 0..2u64 {
        let masks = blinding.zero_sum_masks(round, &[1], DIM);
        gateway.install_mask(sid, &masks[0]).unwrap();
    }
    let contribution = |round: u64| Contribution {
        app_id: IOT.to_string(),
        client_id: 1,
        round,
        payload: ContributionPayload::IotReadings {
            samples: vec![0.5; DIM],
        },
    };
    let first = session.encrypt_request(contribution(0), PrivateData::None);
    gateway.submit(sid, first).unwrap();
    let responses = gateway.drain_all().unwrap();
    assert!(
        matches!(
            &responses[0].outcome,
            BatchOutcome::Reply { endorsed: true, .. }
        ),
        "first contribution must consume the budget"
    );

    let snapshot = gateway.checkpoint().unwrap();
    drop(gateway);
    let restored = Gateway::restore_with_clock(
        small_config,
        tenants(),
        &snapshot,
        &mut avs,
        &mut Drbg::from_seed([62u8; 32]),
        clock,
    )
    .unwrap();

    // The budget is spent; a post-restart submission is throttled at
    // admission, with the typed quota error.
    let second = session.encrypt_request(contribution(1), PrivateData::None);
    let err = restored.submit(sid, second).unwrap_err();
    assert_eq!(
        err,
        GatewayError::QuotaExceeded {
            tenant: Arc::from(IOT),
            resource: QuotaResource::Endorsements,
        }
    );
}

#[test]
fn streamed_checkpoint_matches_quiesced_capture_and_restores() {
    // Run A: the classic global-quiesce checkpoint.
    let mut fixture = build_fixture();
    let gateway = fixture.gateway.take().unwrap();
    let mut records = submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..PRE_ROUNDS);
    let quiesced = gateway.checkpoint().unwrap().to_bytes();
    drop(gateway);

    // Run B: the identical scenario captured slot-at-a-time. The emitted
    // frame must be byte-identical — streaming changes *when* each slot is
    // paused, never what is persisted.
    let mut fixture_b = build_fixture();
    let gateway_b = fixture_b.gateway.take().unwrap();
    let records_b = submit_rounds(
        &fixture_b.devices,
        &fixture_b.events,
        &gateway_b,
        0..PRE_ROUNDS,
    );
    assert_eq!(records_b, records);
    let streamed = gateway_b.checkpoint_streamed().unwrap();
    assert_eq!(
        streamed.to_bytes(),
        quiesced,
        "streamed capture diverged from the quiesced frame"
    );
    drop(gateway_b);

    // And a restore from the streamed frame serves exactly like an
    // uninterrupted run.
    let restored = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &streamed,
        &mut fixture_b.avs,
        &mut Drbg::from_seed(GW_SEED),
        fixture_b.clock.clone(),
    )
    .unwrap();
    records.extend(submit_rounds(
        &fixture_b.devices,
        &fixture_b.events,
        &restored,
        PRE_ROUNDS..ROUNDS,
    ));
    assert_eq!(records, run_uninterrupted());
}

#[test]
fn delta_chain_restore_is_bit_identical_to_full_snapshot_restore() {
    // Run A: base snapshot, then dirty ONLY the IoT tenant, then a delta.
    let mut fa = build_fixture();
    let ga = fa.gateway.take().unwrap();
    let mut records_a = submit_rounds(&fa.devices, &fa.events, &ga, 0..PRE_ROUNDS);
    let base = ga.checkpoint().unwrap();
    let devices_a = &fa.devices;
    records_a.extend(submit_filtered(devices_a, &fa.events, &ga, |e| {
        e.round == PRE_ROUNDS && devices_a[e.device].tenant == IOT
    }));
    let delta = ga.checkpoint_delta(&base.chain_base()).unwrap();
    drop(ga);

    // The incremental capture only re-exported the dirty tenant's slots;
    // the untouched tenant was skipped wholesale (no seal, no ECALL).
    let iot = delta.tenants.iter().find(|t| t.name == IOT).unwrap();
    let kb = delta.tenants.iter().find(|t| t.name == KEYBOARD).unwrap();
    assert!(
        iot.slots.iter().all(|s| s.sealed_state.is_some()),
        "dirty slots must carry fresh sealed exports"
    );
    assert!(
        kb.slots.iter().all(|s| s.sealed_state.is_none()),
        "clean slots must be skipped"
    );

    // Run B: the identical scenario with FULL snapshots at the same two
    // points (same checkpoint-op count, so the epoch sequence matches).
    let mut fb = build_fixture();
    let gb = fb.gateway.take().unwrap();
    let mut records_b = submit_rounds(&fb.devices, &fb.events, &gb, 0..PRE_ROUNDS);
    let _base_b = gb.checkpoint().unwrap();
    let devices_b = &fb.devices;
    records_b.extend(submit_filtered(devices_b, &fb.events, &gb, |e| {
        e.round == PRE_ROUNDS && devices_b[e.device].tenant == IOT
    }));
    assert_eq!(records_b, records_a);
    let full = gb.checkpoint().unwrap();
    drop(gb);

    // Restore run A from base + delta, run B from the equivalent full
    // snapshot.
    let restored_a = Gateway::restore_chain_with_clock(
        config(),
        tenant_configs(),
        SnapshotChain {
            base: &base,
            deltas: std::slice::from_ref(&delta),
        },
        &mut fa.avs,
        &mut Drbg::from_seed(GW_SEED),
        fa.clock.clone(),
    )
    .unwrap();
    let restored_b = Gateway::restore_with_clock(
        config(),
        tenant_configs(),
        &full,
        &mut fb.avs,
        &mut Drbg::from_seed(GW_SEED),
        fb.clock.clone(),
    )
    .unwrap();

    // Bit-identity at the ciphertext level: a fresh full checkpoint taken
    // from either restored gateway — sealed blobs, session table, counters,
    // epoch maps — is byte-for-byte identical.
    assert_eq!(
        restored_a.checkpoint().unwrap().to_bytes(),
        restored_b.checkpoint().unwrap().to_bytes(),
        "chain restore diverged from full-snapshot restore"
    );

    // And both serve the rest of the workload identically.
    let da = &fa.devices;
    let tail_a = submit_filtered(da, &fa.events, &restored_a, |e| {
        (e.round == PRE_ROUNDS && da[e.device].tenant != IOT) || e.round > PRE_ROUNDS
    });
    let db = &fb.devices;
    let tail_b = submit_filtered(db, &fb.events, &restored_b, |e| {
        (e.round == PRE_ROUNDS && db[e.device].tenant != IOT) || e.round > PRE_ROUNDS
    });
    assert_eq!(tail_a, tail_b, "post-restore serving diverged");
    assert!(
        tail_a.iter().any(|(_, _, d)| d.contains("Endorsed")),
        "post-restore tail must produce endorsements"
    );
}

/// A base snapshot plus three deltas (one per remaining workload round),
/// captured once and shared by the fail-closed and property tests below.
fn chain_fixture() -> &'static (GatewaySnapshot, Vec<GatewayDelta>) {
    static CELL: OnceLock<(GatewaySnapshot, Vec<GatewayDelta>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut fixture = build_fixture();
        let gateway = fixture.gateway.take().unwrap();
        submit_rounds(&fixture.devices, &fixture.events, &gateway, 0..1);
        let base = gateway.checkpoint().unwrap();
        let mut deltas = Vec::new();
        let mut chain_tip = base.chain_base();
        for round in 1..ROUNDS {
            submit_rounds(
                &fixture.devices,
                &fixture.events,
                &gateway,
                round..round + 1,
            );
            let delta = gateway.checkpoint_delta(&chain_tip).unwrap();
            chain_tip = delta.chain_base();
            deltas.push(delta);
        }
        (base, deltas)
    })
}

#[test]
fn delta_chains_fail_closed_with_typed_errors() {
    let (base, deltas) = chain_fixture();
    let [d1, d2, d3] = &deltas[..] else {
        panic!("chain fixture must hold three deltas");
    };
    let mut avs = AttestationService::new(AVS_SEED);
    let clock = Arc::new(ManualClock::new());
    let mut restore = |chain: Vec<GatewayDelta>| {
        Gateway::restore_chain_with_clock(
            config(),
            tenant_configs(),
            SnapshotChain {
                base,
                deltas: &chain,
            },
            &mut avs,
            &mut Drbg::from_seed(GW_SEED),
            clock.clone(),
        )
    };

    // A gapped chain (base, d2): d2 names d1's epoch, not the base's.
    assert!(matches!(
        restore(vec![d2.clone()]).unwrap_err(),
        GatewayError::SnapshotChainBroken { .. }
    ));
    // A reordered chain (base, d2, d1): rejected at the first bad link.
    assert!(matches!(
        restore(vec![d2.clone(), d1.clone()]).unwrap_err(),
        GatewayError::SnapshotChainBroken { .. }
    ));
    // A replayed link (base, d1, d1): a delta cannot extend itself.
    assert!(matches!(
        restore(vec![d1.clone(), d1.clone()]).unwrap_err(),
        GatewayError::SnapshotChainBroken { .. }
    ));
    // A forged base link: same epoch, tampered header bytes.
    let mut forged = d1.clone();
    forged.base_header[0] ^= 0x01;
    assert!(matches!(
        restore(vec![forged]).unwrap_err(),
        GatewayError::SnapshotChainBroken { .. }
    ));
    // A shape mismatch: a delta that dropped a tenant cannot extend the
    // base even with pristine chain metadata.
    let mut narrow = d1.clone();
    narrow.tenants.pop();
    assert!(matches!(
        restore(vec![narrow]).unwrap_err(),
        GatewayError::SnapshotChainBroken { .. }
    ));
    // A sealed blob moved from the base into a delta slot passes chain
    // validation (the envelope is intact) but is AAD-bound to the base
    // header, not the delta's chained header: the enclave refuses it.
    let mut spliced = d1.clone();
    spliced.tenants[0].slots[0].sealed_state = Some(base.tenants[0].slots[0].sealed_state.clone());
    assert_eq!(
        restore(vec![spliced]).unwrap_err(),
        GatewayError::SealedBlobRejected {
            tenant: Arc::from(IOT),
        }
    );
    // A delta captured by a DIFFERENT gateway lineage with identical chain
    // metadata (same epochs, same injected clock — so identical header
    // bytes) passes link validation, but its blobs were sealed on other
    // platforms: fail-closed inside the enclave, never silently imported.
    let foreign = {
        let workload = workload();
        let mut f_avs = AttestationService::new(AVS_SEED);
        let f_clock = Arc::new(ManualClock::new());
        let f_gateway = Gateway::with_clock(
            config(),
            tenant_configs(),
            &mut f_avs,
            &mut Drbg::from_seed([73u8; 32]),
            f_clock,
        )
        .unwrap();
        let mut dev_rng = Drbg::from_seed(DEV_SEED);
        for tenant in &workload.tenants {
            let approved = f_gateway.measurement(&tenant.name).unwrap();
            for _ in &tenant.devices {
                let (session_id, offer) = f_gateway.open_session(&tenant.name).unwrap();
                let (accept, _session) =
                    IotDeviceSession::connect(&offer, &f_avs, &approved, &mut dev_rng).unwrap();
                f_gateway.complete_session(session_id, &accept).unwrap();
            }
        }
        let f_base = f_gateway.checkpoint().unwrap();
        f_gateway.close_session(1).unwrap();
        f_gateway.checkpoint_delta(&f_base.chain_base()).unwrap()
    };
    assert_eq!(foreign.base_epoch, d1.base_epoch);
    assert_eq!(foreign.base_header, d1.base_header);
    assert!(matches!(
        restore(vec![foreign]).unwrap_err(),
        GatewayError::SealedBlobRejected { .. }
    ));

    // The untampered chain still restores, full length.
    let restored = restore(vec![d1.clone(), d2.clone(), d3.clone()]).unwrap();
    assert_eq!(
        restored.live_sessions(),
        2 * DEVICES_PER_TENANT,
        "valid chain must restore every session"
    );
}

#[test]
fn delta_frames_reject_kind_confusion() {
    let (base, deltas) = chain_fixture();
    // A full snapshot's bytes fed to the delta decoder (and vice versa)
    // fail typed at the frame kind, long before any field decodes.
    assert!(GatewayDelta::from_bytes(&base.to_bytes()).is_err());
    assert!(GatewaySnapshot::from_bytes(&deltas[0].to_bytes()).is_err());
    // And the delta codec round-trips losslessly.
    let bytes = deltas[0].to_bytes();
    assert_eq!(&GatewayDelta::from_bytes(&bytes).unwrap(), &deltas[0]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any truncation or bit flip of a persisted delta frame fails closed
    /// with a typed error — never a panic, never a silent partial decode.
    #[test]
    fn mutated_delta_frames_fail_closed(
        cut in any::<usize>(),
        pos in any::<usize>(),
        bit in 0u32..8,
    ) {
        let (_, deltas) = chain_fixture();
        let bytes = deltas[0].to_bytes();
        let err = GatewayDelta::from_bytes(&bytes[..cut % bytes.len()]).unwrap_err();
        prop_assert!(matches!(err, GatewayError::SnapshotCorrupt(_)));
        let mut corrupt = bytes.clone();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= 1u8 << bit;
        let err = GatewayDelta::from_bytes(&corrupt).unwrap_err();
        prop_assert!(matches!(
            err,
            GatewayError::SnapshotCorrupt(_) | GatewayError::SnapshotMismatch { .. }
        ));
    }

    /// Any delta sequence that is not an exact prefix of the true chain —
    /// gaps, reorders, repeats, arbitrary shuffles — is rejected fail-closed
    /// before a single enclave is built.
    #[test]
    fn non_prefix_delta_sequences_are_rejected(
        picks in proptest::collection::vec(0usize..3, 1..6),
    ) {
        prop_assume!(picks.iter().enumerate().any(|(i, &p)| i != p));
        let (base, deltas) = chain_fixture();
        let chain: Vec<GatewayDelta> =
            picks.iter().map(|&i| deltas[i].clone()).collect();
        let mut avs = AttestationService::new(AVS_SEED);
        let err = Gateway::restore_chain_with_clock(
            config(),
            tenant_configs(),
            SnapshotChain { base, deltas: &chain },
            &mut avs,
            &mut Drbg::from_seed(GW_SEED),
            Arc::new(ManualClock::new()),
        )
        .unwrap_err();
        prop_assert!(matches!(err, GatewayError::SnapshotChainBroken { .. }));
    }
}
