//! Async front-end invariants: one executor thread multiplexes many device
//! sessions through their full lifecycle while blocking submitter threads
//! share the same gateway — no reply is lost, none is duplicated, none
//! crosses a tenant boundary — and the whole-gateway quiesce operations
//! (checkpoint, shutdown) conflict with a typed error instead of
//! deadlocking the shard workers.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::frontend::{AsyncGateway, SessionExecutor};
use glimmer_gateway::{
    BarrierOp, CrashHooks, CrashPoint, Gateway, GatewayConfig, GatewayError, TenantConfig,
};
use sgx_sim::AttestationService;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const IOT_DIM: usize = 4;
const KB_DIM: usize = 8;

fn build_gateway(
    shards: usize,
    slots_per_tenant: usize,
    avs: &mut AttestationService,
    rng: &mut Drbg,
) -> Gateway {
    let iot_material = ServiceKeyMaterial::generate(rng).unwrap();
    let kb_material = ServiceKeyMaterial::generate(rng).unwrap();
    Gateway::new(
        GatewayConfig {
            slots_per_tenant,
            shards,
            ..GatewayConfig::default()
        },
        vec![
            TenantConfig::new(
                IOT,
                GlimmerDescriptor::iot_default(Vec::new()),
                iot_material.secret_bytes(),
            ),
            TenantConfig::new(
                KEYBOARD,
                GlimmerDescriptor::keyboard_range_only(),
                kb_material.secret_bytes(),
            ),
        ],
        avs,
        rng,
    )
    .unwrap()
}

fn contribution(tenant: &str, client_id: u64, round: u64) -> Contribution {
    Contribution {
        app_id: tenant.to_string(),
        client_id,
        round,
        payload: if tenant == IOT {
            ContributionPayload::IotReadings {
                samples: vec![0.25; IOT_DIM],
            }
        } else {
            ContributionPayload::ModelUpdate {
                weights: vec![0.5; KB_DIM],
            }
        },
    }
}

/// The headline stress test: `ASYNC_SESSIONS` IoT device sessions run their
/// whole lifecycle (open, attested handshake, per-round mask installs,
/// `submit_many` of their request stream) as tasks on ONE executor thread,
/// while blocking submitter threads push keyboard-tenant traffic through
/// the same gateway. A single async drainer task collects every reply.
///
/// Invariants checked: every admitted request produces exactly one reply
/// (no loss, no duplication), every reply's tenant label matches the
/// session that submitted it (no cross-tenant leak), and all honest
/// traffic is endorsed.
#[test]
fn async_sessions_mixed_with_blocking_submitters_lose_and_leak_nothing() {
    const ASYNC_SESSIONS: usize = 48;
    const ASYNC_ROUNDS: usize = 3;
    const BLOCKING_SESSIONS: usize = 8;
    const BLOCKING_ROUNDS: usize = 4;

    let mut rng = Drbg::from_seed([90u8; 32]);
    let mut avs = AttestationService::new([91u8; 32]);
    let gateway = Arc::new(build_gateway(2, 2, &mut avs, &mut rng));

    // --- Blocking side: establish keyboard sessions up front. ---
    let kb_clients: Vec<u64> = (0..BLOCKING_SESSIONS as u64).collect();
    let kb_blinding = BlindingService::new([92u8; 32]);
    let kb_approved = gateway.measurement(KEYBOARD).unwrap();
    let mut kb_devices = Vec::new();
    for (i, client_id) in kb_clients.iter().enumerate() {
        let (session_id, offer) = gateway.open_session(KEYBOARD).unwrap();
        let (accept, session) =
            IotDeviceSession::connect(&offer, &avs, &kb_approved, &mut rng).unwrap();
        gateway.complete_session(session_id, &accept).unwrap();
        for round in 0..BLOCKING_ROUNDS as u64 {
            let masks = kb_blinding.zero_sum_masks(round, &kb_clients, KB_DIM);
            gateway.install_mask(session_id, &masks[i]).unwrap();
        }
        kb_devices.push((session_id, *client_id, session));
    }
    let kb_session_ids: Vec<u64> = kb_devices.iter().map(|(sid, _, _)| *sid).collect();

    // --- Async side inputs, shared across session tasks via Rc. ---
    let iot_clients: Vec<u64> = (0..ASYNC_SESSIONS as u64).collect();
    let iot_blinding = BlindingService::new([93u8; 32]);
    let iot_masks: Vec<Vec<_>> = (0..ASYNC_ROUNDS as u64)
        .map(|round| iot_blinding.zero_sum_masks(round, &iot_clients, IOT_DIM))
        .collect();
    let expected_total = ASYNC_SESSIONS * ASYNC_ROUNDS + BLOCKING_SESSIONS * BLOCKING_ROUNDS;

    let responses = Rc::new(RefCell::new(Vec::new()));
    // session_id -> tenant expected for every reply, filled as sessions
    // open (async entries are added by their tasks before any submit).
    let expected_tenant = Rc::new(RefCell::new(
        kb_session_ids
            .iter()
            .map(|sid| (*sid, KEYBOARD))
            .collect::<HashMap<u64, &'static str>>(),
    ));

    std::thread::scope(|scope| {
        // Blocking submitters: two OS threads pushing keyboard traffic
        // concurrently with the executor's session tasks.
        for chunk in kb_devices.chunks_mut(BLOCKING_SESSIONS / 2) {
            let gateway = Arc::clone(&gateway);
            scope.spawn(move || {
                for round in 0..BLOCKING_ROUNDS as u64 {
                    for (session_id, client_id, session) in chunk.iter_mut() {
                        let request = session.encrypt_request(
                            contribution(KEYBOARD, *client_id, round),
                            PrivateData::None,
                        );
                        gateway.submit(*session_id, request).unwrap();
                    }
                }
            });
        }

        // Async front-end: everything below runs on THIS thread.
        let frontend = AsyncGateway::from_arc(Arc::clone(&gateway));
        let mut executor = SessionExecutor::new();
        let device_rng = Rc::new(RefCell::new(Drbg::from_seed([94u8; 32])));
        let avs = Rc::new(avs);
        let approved = gateway.measurement(IOT).unwrap();
        let iot_masks = Rc::new(iot_masks);

        for (i, client_id) in iot_clients.iter().copied().enumerate() {
            let frontend = frontend.clone();
            let device_rng = Rc::clone(&device_rng);
            let avs = Rc::clone(&avs);
            let iot_masks = Rc::clone(&iot_masks);
            let expected_tenant = Rc::clone(&expected_tenant);
            executor.spawn(async move {
                let (session_id, offer) = frontend.open_session(IOT).await.unwrap();
                expected_tenant.borrow_mut().insert(session_id, IOT);
                let (accept, mut session) = {
                    let mut rng = device_rng.borrow_mut();
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap()
                };
                frontend
                    .complete_session(session_id, &accept)
                    .await
                    .unwrap();
                for round in iot_masks.iter() {
                    frontend.install_mask(session_id, &round[i]).await.unwrap();
                }
                // The whole stream as one atomic batched admission.
                let stream: Vec<Vec<u8>> = (0..ASYNC_ROUNDS as u64)
                    .map(|round| {
                        session
                            .encrypt_request(contribution(IOT, client_id, round), PrivateData::None)
                    })
                    .collect();
                frontend.submit_many(session_id, stream).await.unwrap();
            });
        }

        // One drainer task gathers every reply — from async and blocking
        // submitters alike — until nothing can still be in flight.
        {
            let frontend = frontend.clone();
            let responses = Rc::clone(&responses);
            executor.spawn(async move {
                loop {
                    let batch = frontend.drain_replies().await.unwrap();
                    let swept_nothing = batch.is_empty();
                    let have_all = {
                        let mut collected = responses.borrow_mut();
                        collected.extend(batch);
                        collected.len() >= expected_total
                    };
                    if have_all {
                        break;
                    }
                    if swept_nothing {
                        // Give submitter threads a moment to enqueue more:
                        // a test-only pacing sleep, not part of the design.
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
            });
        }
        executor.run();
    });

    // No loss, no duplication: exactly one reply per admitted request,
    // exactly the per-session counts each submitter produced.
    let responses = responses.borrow();
    assert_eq!(responses.len(), expected_total);
    let mut per_session: HashMap<u64, usize> = HashMap::new();
    let expected_tenant = expected_tenant.borrow();
    for response in responses.iter() {
        *per_session.entry(response.session_id).or_default() += 1;
        // No cross-tenant leak: the reply carries the tenant that owns the
        // session it is routed back to.
        assert_eq!(
            expected_tenant[&response.session_id], &*response.tenant,
            "reply for session {} routed under the wrong tenant",
            response.session_id
        );
        // Honest traffic: every reply is an endorsement.
        let BatchOutcome::Reply { endorsed, .. } = &response.outcome else {
            panic!("honest request failed: {:?}", response.outcome);
        };
        assert!(endorsed, "honest request rejected");
    }
    assert_eq!(
        per_session.len(),
        ASYNC_SESSIONS + BLOCKING_SESSIONS,
        "every session must have produced replies"
    );
    for (session_id, count) in &per_session {
        let expected = if expected_tenant[session_id] == IOT {
            ASYNC_ROUNDS
        } else {
            BLOCKING_ROUNDS
        };
        assert_eq!(
            *count, expected,
            "session {session_id} reply count off (loss or duplication)"
        );
    }
}

/// Regression test for the executor poison cascade: a panicking session
/// task used to poison the ready-queue and completion-cell mutexes, and the
/// next `.expect("... poisoned")` then re-panicked inside every *healthy*
/// session sharing the executor. Now the panic is contained at the poll
/// boundary and every lock recovers from poisoning, so one deliberately
/// panicking task among 8 full-lifecycle device sessions changes nothing
/// for its neighbours — and the gateway stays fully usable afterwards.
#[test]
fn panicking_task_among_healthy_sessions_poisons_nothing() {
    const SESSIONS: usize = 8;
    const ROUNDS: usize = 2;

    let mut rng = Drbg::from_seed([101u8; 32]);
    let mut avs = AttestationService::new([102u8; 32]);
    let gateway = Arc::new(build_gateway(2, 2, &mut avs, &mut rng));
    let frontend = AsyncGateway::from_arc(Arc::clone(&gateway));
    let clients: Vec<u64> = (0..SESSIONS as u64).collect();
    let blinding = BlindingService::new([103u8; 32]);
    let masks: Rc<Vec<Vec<_>>> = Rc::new(
        (0..ROUNDS as u64)
            .map(|round| blinding.zero_sum_masks(round, &clients, IOT_DIM))
            .collect(),
    );
    let approved = gateway.measurement(IOT).unwrap();
    let avs = Rc::new(avs);
    let device_rng = Rc::new(RefCell::new(Drbg::from_seed([104u8; 32])));

    let mut executor = SessionExecutor::new();
    let completed = Rc::new(Cell::new(0usize));
    // The saboteur: a task that panics mid-poll, scheduled FIRST so its
    // unwind happens while every healthy session still has work pending.
    executor.spawn(async move {
        panic!("deliberate task panic: must stay contained to this task");
    });
    for (i, client_id) in clients.iter().copied().enumerate() {
        let frontend = frontend.clone();
        let device_rng = Rc::clone(&device_rng);
        let avs = Rc::clone(&avs);
        let masks = Rc::clone(&masks);
        let completed = Rc::clone(&completed);
        executor.spawn(async move {
            let (session_id, offer) = frontend.open_session(IOT).await.unwrap();
            let (accept, mut session) = {
                let mut rng = device_rng.borrow_mut();
                IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap()
            };
            frontend
                .complete_session(session_id, &accept)
                .await
                .unwrap();
            for round in masks.iter() {
                frontend.install_mask(session_id, &round[i]).await.unwrap();
            }
            let stream: Vec<Vec<u8>> = (0..ROUNDS as u64)
                .map(|round| {
                    session.encrypt_request(contribution(IOT, client_id, round), PrivateData::None)
                })
                .collect();
            frontend.submit_many(session_id, stream).await.unwrap();
            completed.set(completed.get() + 1);
        });
    }
    executor.run();
    drop(frontend);

    // The panic retired exactly one task; every healthy session finished.
    assert_eq!(executor.panicked_tasks(), 1);
    assert_eq!(completed.get(), SESSIONS);
    assert_eq!(executor.live_tasks(), 0);

    // Nothing downstream was poisoned: the blocking API still drains every
    // admitted request and the gateway still quiesces cleanly.
    let mut replies = Vec::new();
    while replies.len() < SESSIONS * ROUNDS {
        let batch = gateway.drain().unwrap();
        if batch.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        replies.extend(batch);
    }
    assert_eq!(replies.len(), SESSIONS * ROUNDS);
    for reply in &replies {
        let BatchOutcome::Reply { endorsed, .. } = &reply.outcome else {
            panic!("honest request failed: {:?}", reply.outcome);
        };
        assert!(endorsed);
    }
    Arc::try_unwrap(gateway)
        .unwrap_or_else(|_| panic!("sole owner"))
        .shutdown()
        .unwrap();
}

/// Holds a checkpoint open at its quiesce barrier until released, so the
/// test can deterministically overlap a second whole-gateway operation.
struct HoldAtQuiesce {
    entered: Sender<()>,
    release: Mutex<Receiver<()>>,
}

impl CrashHooks for HoldAtQuiesce {
    fn reached(&self, point: CrashPoint) -> bool {
        if point == CrashPoint::WorkersQuiesced {
            let _ = self.entered.send(());
            let _ = self.release.lock().unwrap().recv();
        }
        false
    }
}

/// Regression test for the quiesce-barrier race: two concurrent checkpoints
/// used to interleave their two-phase worker barriers and deadlock (each
/// worker paused for a different checkpoint, each checkpoint waiting for
/// the other's workers). Now the loser gets a typed
/// [`GatewayError::BarrierConflict`], the winner completes untouched, and a
/// subsequent shutdown drains normally.
#[test]
fn overlapping_checkpoints_fail_typed_instead_of_deadlocking() {
    let mut rng = Drbg::from_seed([95u8; 32]);
    let mut avs = AttestationService::new([96u8; 32]);
    // Two shards: the shape where interleaved barriers actually deadlocked.
    let gateway = build_gateway(2, 2, &mut avs, &mut rng);

    let (entered_tx, entered_rx) = channel();
    let (release_tx, release_rx) = channel();
    let hooks = HoldAtQuiesce {
        entered: entered_tx,
        release: Mutex::new(release_rx),
    };

    std::thread::scope(|scope| {
        let first = scope.spawn(|| gateway.checkpoint_with_hooks(&hooks));
        // Wait until the first checkpoint provably holds the barrier (every
        // worker paused), then race a second one against it.
        entered_rx.recv().unwrap();
        let conflict = gateway.checkpoint().expect_err("overlap must be refused");
        assert_eq!(
            conflict,
            GatewayError::BarrierConflict {
                in_progress: BarrierOp::Checkpoint,
                requested: BarrierOp::Checkpoint,
            }
        );
        release_tx.send(()).unwrap();
        let snapshot = first.join().unwrap().expect("winner completes normally");
        assert_eq!(snapshot.tenants.len(), 2);
    });

    // The refused attempt must not have wedged the barrier: another
    // checkpoint and the final shutdown both proceed.
    gateway
        .checkpoint()
        .expect("barrier released after overlap");
    gateway.shutdown().expect("shutdown after checkpoints");
}

/// A checkpoint abandoned mid-flight (injected crash) releases the barrier,
/// so later checkpoints and shutdown never see a stale conflict.
#[test]
fn crashed_checkpoint_releases_the_barrier() {
    let mut rng = Drbg::from_seed([97u8; 32]);
    let mut avs = AttestationService::new([98u8; 32]);
    let gateway = build_gateway(2, 1, &mut avs, &mut rng);
    for point in [
        CrashPoint::WorkersQuiesced,
        CrashPoint::StateCaptured,
        CrashPoint::SlotsExported,
        CrashPoint::SnapshotAssembled,
    ] {
        let err = gateway
            .checkpoint_with_hooks(&glimmer_gateway::CrashAt(point))
            .expect_err("injected crash");
        assert_eq!(err, GatewayError::CrashInjected(point));
        gateway
            .checkpoint()
            .expect("barrier must be released after an aborted checkpoint");
    }
    gateway.shutdown().unwrap();
}

/// An idle async drain on a healthy runtime resolves (empty) rather than
/// parking its task, and `try_into_gateway` recovers ownership once the
/// last front-end clone is gone so the blocking `shutdown` still composes.
#[test]
fn async_drain_on_idle_gateway_resolves_and_ownership_round_trips() {
    let mut rng = Drbg::from_seed([99u8; 32]);
    let mut avs = AttestationService::new([100u8; 32]);
    let frontend = AsyncGateway::new(build_gateway(1, 1, &mut avs, &mut rng));

    let outcome = Rc::new(RefCell::new(None));
    let mut executor = SessionExecutor::new();
    {
        let outcome = Rc::clone(&outcome);
        let frontend = frontend.clone();
        executor.spawn(async move {
            *outcome.borrow_mut() = Some(frontend.drain_replies().await);
        });
    }
    executor.run();
    assert_eq!(
        outcome.borrow().as_ref().unwrap().as_ref().unwrap().len(),
        0
    );

    // A clone keeps the gateway shared...
    let clone = frontend.clone();
    let frontend = frontend.try_into_gateway().expect_err("still shared");
    drop(clone);
    // ...and the last handle recovers ownership for the blocking shutdown.
    let gateway = match frontend.try_into_gateway() {
        Ok(gateway) => gateway,
        Err(_) => panic!("sole owner now"),
    };
    gateway.shutdown().unwrap();
}
