//! Live slot migration invariants, proven by a migration fault matrix.
//!
//! The matrix kills the migration coordinator at every migration-only
//! [`CrashPoint`] under the E11-style two-tenant workload and asserts
//! fail-closed recovery back to the source shard with no lost or
//! duplicated endorsements. A determinism regression pins the migrated
//! multi-shard run to the single-shard baseline (bit-identical drain
//! cycles and endorsement sets). Planner properties (never move toward a
//! deeper shard, never oscillate, balanced fleet plans nothing) are
//! property-tested, and the `BarrierConflict` regression holds a streamed
//! capture mid-slot while racing a migration — in both directions.

use glimmer_core::blinding::{BlindingService, MaskShare};
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{BatchOutcome, Contribution, ContributionPayload, PrivateData};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{
    plan_rebalance, BarrierOp, CrashAt, CrashHooks, CrashPoint, Gateway, GatewayConfig,
    GatewayError, ManualClock, RebalanceConfig, Rebalancer, SlotLoad, TenantConfig,
};
use glimmer_workloads::gateway::{GatewayTrafficWorkload, TenantTrafficSpec};
use proptest::prelude::*;
use sgx_sim::{AttestationService, PlatformConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const DIM: usize = 4;
const DEVICES_PER_TENANT: usize = 2;
const ROUNDS: usize = 4;
const PRE_ROUNDS: usize = 2;

const GW_SEED: [u8; 32] = [70u8; 32];
const DEV_SEED: [u8; 32] = [71u8; 32];
const AVS_SEED: [u8; 32] = [72u8; 32];
const WORKLOAD_SEED: [u8; 32] = [73u8; 32];
const MATERIAL_SEED: [u8; 32] = [74u8; 32];

fn config(shards: usize) -> GatewayConfig {
    GatewayConfig {
        slots_per_tenant: 2,
        shards,
        max_batch: 64,
        max_queue_depth: 256,
        placement_session_weight: 4,
        platform_config: PlatformConfig::default(),
        ..GatewayConfig::default()
    }
}

fn tenant_configs() -> Vec<TenantConfig> {
    let mut rng = Drbg::from_seed(MATERIAL_SEED);
    let iot_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let kb_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    vec![
        TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            iot_material.secret_bytes(),
        ),
        TenantConfig::new(
            KEYBOARD,
            GlimmerDescriptor::keyboard_range_only(),
            kb_material.secret_bytes(),
        ),
    ]
}

fn workload() -> GatewayTrafficWorkload {
    GatewayTrafficWorkload::generate(
        &[
            TenantTrafficSpec {
                name: IOT.to_string(),
                devices: DEVICES_PER_TENANT,
                requests_per_device: ROUNDS,
                dimension: DIM,
                misbehaving_fraction: 0.25,
            },
            TenantTrafficSpec {
                name: KEYBOARD.to_string(),
                devices: DEVICES_PER_TENANT,
                requests_per_device: ROUNDS,
                dimension: DIM,
                misbehaving_fraction: 0.25,
            },
        ],
        WORKLOAD_SEED,
    )
}

struct Device {
    tenant: String,
    session_id: u64,
    session: IotDeviceSession,
}

/// One scheduled arrival: which device (index into the fixture's device
/// vector), which round, and the pre-encrypted request.
struct Event {
    device: usize,
    round: usize,
    ciphertext: Vec<u8>,
}

struct Fixture {
    gateway: Gateway,
    devices: Vec<Device>,
    events: Vec<Event>,
}

fn build_fixture(shards: usize) -> Fixture {
    let workload = workload();
    let mut avs = AttestationService::new(AVS_SEED);
    let clock = Arc::new(ManualClock::new());
    let gateway = Gateway::with_clock(
        config(shards),
        tenant_configs(),
        &mut avs,
        &mut Drbg::from_seed(GW_SEED),
        clock,
    )
    .unwrap();

    let mut dev_rng = Drbg::from_seed(DEV_SEED);
    let mut devices = Vec::new();
    for (t_idx, tenant) in workload.tenants.iter().enumerate() {
        let approved = gateway.measurement(&tenant.name).unwrap();
        let client_ids: Vec<u64> = tenant.devices.iter().map(|d| d.device_id).collect();
        let blinding = BlindingService::new([75 + t_idx as u8; 32]);
        let mask_rounds: Vec<Vec<MaskShare>> = (0..ROUNDS)
            .map(|round| blinding.zero_sum_masks(round as u64, &client_ids, DIM))
            .collect();
        for (d_idx, _device) in tenant.devices.iter().enumerate() {
            let (session_id, offer) = gateway.open_session(&tenant.name).unwrap();
            let (accept, session) =
                IotDeviceSession::connect(&offer, &avs, &approved, &mut dev_rng).unwrap();
            gateway.complete_session(session_id, &accept).unwrap();
            for round in &mask_rounds {
                gateway.install_mask(session_id, &round[d_idx]).unwrap();
            }
            devices.push(Device {
                tenant: tenant.name.clone(),
                session_id,
                session,
            });
        }
    }

    let mut events = Vec::new();
    for event in &workload.schedule {
        let device_idx = event.tenant * DEVICES_PER_TENANT + event.device;
        let traffic = &workload.tenants[event.tenant].devices[event.device];
        let samples = traffic.requests[event.request].clone();
        let payload = if workload.tenants[event.tenant].name == IOT {
            ContributionPayload::IotReadings { samples }
        } else {
            ContributionPayload::ModelUpdate { weights: samples }
        };
        let contribution = Contribution {
            app_id: workload.tenants[event.tenant].name.clone(),
            client_id: traffic.device_id,
            round: event.request as u64,
            payload,
        };
        let ciphertext = devices[device_idx]
            .session
            .encrypt_request(contribution, PrivateData::None);
        events.push(Event {
            device: device_idx,
            round: event.request,
            ciphertext,
        });
    }

    Fixture {
        gateway,
        devices,
        events,
    }
}

/// One decrypted reply: (session id, tenant label, decrypted device-side
/// view of the response). Agreement on the *multiset* of these records
/// means agreement on endorsement outcomes and exact endorsement contents
/// (signatures are deterministic); agreement on the *sequence* also pins
/// drain order.
type RespRec = (u64, String, String);

fn submit_rounds(fixture: &Fixture, rounds: std::ops::Range<usize>) -> Vec<RespRec> {
    for event in fixture.events.iter().filter(|e| rounds.contains(&e.round)) {
        fixture
            .gateway
            .submit(
                fixture.devices[event.device].session_id,
                event.ciphertext.clone(),
            )
            .unwrap();
    }
    let responses = fixture.gateway.drain_all().unwrap();
    responses
        .iter()
        .map(|response| {
            let device = fixture
                .devices
                .iter()
                .find(|d| d.session_id == response.session_id)
                .expect("response for unknown session");
            assert_eq!(&*response.tenant, device.tenant.as_str());
            let BatchOutcome::Reply { ciphertext, .. } = &response.outcome else {
                panic!("unexpected outcome {:?}", response.outcome);
            };
            let decrypted = device.session.decrypt_response(ciphertext).unwrap();
            (
                response.session_id,
                device.tenant.clone(),
                format!("{decrypted:?}"),
            )
        })
        .collect()
}

fn shard_of(gateway: &Gateway, tenant: &str, slot_id: usize) -> usize {
    gateway
        .slot_loads()
        .into_iter()
        .find(|l| &*l.tenant == tenant && l.slot_id == slot_id)
        .expect("slot exists")
        .shard
}

// ---------------------------------------------------------------------------
// Live migration: basic serving invariants
// ---------------------------------------------------------------------------

#[test]
fn migration_moves_queued_work_and_keeps_serving() {
    let fixture = build_fixture(2);
    let gateway = &fixture.gateway;

    // Baseline: the same fixture, same submissions, no migration.
    let baseline_fixture = build_fixture(2);
    let mut baseline = submit_rounds(&baseline_fixture, 0..PRE_ROUNDS);
    baseline.extend(submit_rounds(&baseline_fixture, PRE_ROUNDS..ROUNDS));
    assert!(
        baseline.iter().any(|(_, _, d)| d.contains("Endorsed")),
        "workload must produce endorsements"
    );

    // Queue the first half *without* draining, so the migration carries
    // live in-flight work with it.
    for event in fixture.events.iter().filter(|e| e.round < PRE_ROUNDS) {
        gateway
            .submit(
                fixture.devices[event.device].session_id,
                event.ciphertext.clone(),
            )
            .unwrap();
    }
    let from = shard_of(gateway, IOT, 0);
    let to = 1 - from;
    let report = gateway.migrate_slot(IOT, 0, to).unwrap();
    assert_eq!(report.tenant, IOT);
    assert_eq!(report.slot_id, 0);
    assert_eq!(report.from_shard, from);
    assert_eq!(report.to_shard, to);
    assert!(report.queued_moved > 0, "in-flight work must travel");
    assert!(
        report.sealed_bytes > 0,
        "handoff must seal a recovery artifact"
    );
    assert_eq!(shard_of(gateway, IOT, 0), to, "routing table must retarget");

    // The queued work replays on the new owner; the second half keeps
    // serving through the migrated slot. Order shifts (the migrated slot
    // drains last on its new shard), so compare the multiset.
    let mut records = fixture.gateway.drain_all().unwrap().len();
    // Re-drive through the fixture helper for decryption: drain_all above
    // already consumed the first half, so replay it for the count and then
    // serve the rest normally.
    assert!(records > 0, "migrated queue must drain");
    let second = submit_rounds(&fixture, PRE_ROUNDS..ROUNDS);
    records += second.len();
    assert_eq!(records, baseline.len(), "no reply lost or duplicated");

    let telemetry = gateway.telemetry();
    assert_eq!(telemetry.migrations_completed, 1);
    assert_eq!(telemetry.migrations_aborted, 0);
    assert_eq!(telemetry.migration_nanos.count, 1);
}

#[test]
fn migration_to_same_shard_is_a_noop() {
    let fixture = build_fixture(2);
    let here = shard_of(&fixture.gateway, IOT, 0);
    let report = fixture.gateway.migrate_slot(IOT, 0, here).unwrap();
    assert_eq!(report.from_shard, report.to_shard);
    assert_eq!(report.queued_moved, 0);
    assert_eq!(report.sealed_bytes, 0);
    assert_eq!(shard_of(&fixture.gateway, IOT, 0), here);
    // A no-op is not a migration: nothing recorded.
    assert_eq!(fixture.gateway.telemetry().migrations_completed, 0);
}

#[test]
fn migration_rejects_bad_addresses_typed() {
    let fixture = build_fixture(2);
    assert_eq!(
        fixture.gateway.migrate_slot(IOT, 0, 9).unwrap_err(),
        GatewayError::UnknownShard {
            shard: 9,
            shards: 2
        }
    );
    assert_eq!(
        fixture.gateway.migrate_slot(IOT, 7, 1).unwrap_err(),
        GatewayError::UnknownSlot {
            tenant: IOT.to_string(),
            slot: 7
        }
    );
    assert!(matches!(
        fixture
            .gateway
            .migrate_slot("nobody.example", 0, 1)
            .unwrap_err(),
        GatewayError::UnknownTenant(_)
    ));
}

#[test]
fn sessions_follow_their_migrated_slot() {
    let fixture = build_fixture(2);
    let gateway = &fixture.gateway;
    // Devices 0 and 1 belong to IOT; find one bound to slot 0.
    let bound = fixture
        .devices
        .iter()
        .find(|d| d.tenant == IOT && gateway.session_slot(d.session_id).unwrap() == 0)
        .expect("a session is bound to IOT slot 0");
    let from = gateway.session_shard(bound.session_id).unwrap();
    let to = 1 - from;
    gateway.migrate_slot(IOT, 0, to).unwrap();
    assert_eq!(
        gateway.session_shard(bound.session_id).unwrap(),
        to,
        "session routing must follow the slot"
    );
}

// ---------------------------------------------------------------------------
// The migration crash-fault matrix
// ---------------------------------------------------------------------------

#[test]
fn migration_crash_matrix_fails_closed_to_the_source_shard() {
    // Baseline: full two-tenant workload, no migration attempted.
    let baseline_fixture = build_fixture(2);
    let mut baseline = submit_rounds(&baseline_fixture, 0..PRE_ROUNDS);
    baseline.extend(submit_rounds(&baseline_fixture, PRE_ROUNDS..ROUNDS));
    assert!(
        baseline.iter().any(|(_, _, d)| d.contains("Endorsed")),
        "workload must produce endorsements"
    );
    assert!(
        baseline.iter().any(|(_, t, _)| t == IOT) && baseline.iter().any(|(_, t, _)| t == KEYBOARD),
        "workload must span both tenants"
    );

    for point in CrashPoint::MIGRATION {
        let fixture = build_fixture(2);
        let gateway = &fixture.gateway;
        let mut records = submit_rounds(&fixture, 0..PRE_ROUNDS);

        let from = shard_of(gateway, IOT, 0);
        let queued_before = gateway.queued(IOT).unwrap();
        let err = gateway
            .migrate_slot_with_hooks(IOT, 0, 1 - from, &CrashAt(point))
            .unwrap_err();
        assert_eq!(err, GatewayError::CrashInjected(point));

        // Fail-closed: the slot is still (or again) owned by its source
        // shard, with its queue intact.
        assert_eq!(
            shard_of(gateway, IOT, 0),
            from,
            "crash at {point}: slot must recover to its source shard"
        );
        assert_eq!(gateway.queued(IOT).unwrap(), queued_before);
        let telemetry = gateway.telemetry();
        assert_eq!(telemetry.migrations_aborted, 1, "crash at {point}");
        assert_eq!(telemetry.migrations_completed, 0, "crash at {point}");

        // Serving resumes bit-identically: same placement, same drain
        // order, same endorsements — nothing lost, nothing duplicated.
        records.extend(submit_rounds(&fixture, PRE_ROUNDS..ROUNDS));
        assert_eq!(
            records, baseline,
            "crash at {point}: serving diverged after the aborted migration"
        );

        // And a retried migration succeeds outright.
        let report = gateway.migrate_slot(IOT, 0, 1 - from).unwrap();
        assert_eq!(report.to_shard, 1 - from);
        assert_eq!(shard_of(gateway, IOT, 0), 1 - from);
    }
}

// ---------------------------------------------------------------------------
// Determinism regression: the E12 invariant survives migration
// ---------------------------------------------------------------------------

#[test]
fn migrated_run_is_bit_identical_to_the_single_shard_baseline() {
    // Single-shard deterministic baseline.
    let single = build_fixture(1);
    let mut baseline = submit_rounds(&single, 0..PRE_ROUNDS);
    baseline.extend(submit_rounds(&single, PRE_ROUNDS..ROUNDS));
    let baseline_cycles = single.gateway.stats().total_drain_cycles();

    // Sharded run with a live migration between the two halves.
    let sharded = build_fixture(2);
    let mut migrated = submit_rounds(&sharded, 0..PRE_ROUNDS);
    let from = shard_of(&sharded.gateway, IOT, 0);
    sharded.gateway.migrate_slot(IOT, 0, 1 - from).unwrap();
    migrated.extend(submit_rounds(&sharded, PRE_ROUNDS..ROUNDS));
    let migrated_cycles = sharded.gateway.stats().total_drain_cycles();

    // Drain *order* legitimately differs across shard layouts (and the
    // migrated slot drains last on its new shard), but the endorsement
    // set — every reply, bit for bit — and the total enclave work must
    // not.
    assert_eq!(baseline_cycles, migrated_cycles, "drain cycles diverged");
    let mut baseline_sorted = baseline;
    let mut migrated_sorted = migrated;
    baseline_sorted.sort();
    migrated_sorted.sort();
    assert_eq!(
        baseline_sorted, migrated_sorted,
        "endorsement set diverged across migration"
    );
}

// ---------------------------------------------------------------------------
// BarrierConflict: slot-level claims, both directions
// ---------------------------------------------------------------------------

/// Hooks that, the first time a streamed capture holds a slot's claim
/// (`MidStreamExport` fires with the claim still live), race migrations
/// against it and record the errors. Never actually crashes.
struct MigrateDuringStream<'a> {
    gateway: &'a Gateway,
    fired: AtomicBool,
    seen: Mutex<Vec<GatewayError>>,
}

impl CrashHooks for MigrateDuringStream<'_> {
    fn reached(&self, point: CrashPoint) -> bool {
        if point == CrashPoint::MidStreamExport && !self.fired.swap(true, Ordering::SeqCst) {
            // The capture walks (tenant, slot) in order, so the first
            // firing holds (IOT, 0)'s claim: a migration of that exact
            // slot loses on the slot-level claim...
            let same_slot = self.gateway.migrate_slot(IOT, 0, 1).unwrap_err();
            // ...and a migration of any *other* slot loses on the
            // fleet-wide barrier the streamed capture holds for mutual
            // exclusion.
            let other_slot = self.gateway.migrate_slot(KEYBOARD, 1, 0).unwrap_err();
            self.seen.lock().unwrap().extend([same_slot, other_slot]);
        }
        false
    }
}

#[test]
fn streamed_capture_mid_slot_refuses_a_racing_migration() {
    let fixture = build_fixture(2);
    submit_rounds(&fixture, 0..PRE_ROUNDS);
    let hooks = MigrateDuringStream {
        gateway: &fixture.gateway,
        fired: AtomicBool::new(false),
        seen: Mutex::new(Vec::new()),
    };
    // The capture itself must succeed — the losing migration backed off
    // without disturbing it.
    fixture
        .gateway
        .checkpoint_streamed_with_hooks(&hooks)
        .unwrap();
    let seen = hooks.seen.into_inner().unwrap();
    assert_eq!(seen.len(), 2, "both racing migrations must have run");
    for err in &seen {
        assert_eq!(
            *err,
            GatewayError::BarrierConflict {
                in_progress: BarrierOp::Checkpoint,
                requested: BarrierOp::Rebalance,
            }
        );
    }
    // Nothing leaked a claim: a migration afterwards sails through.
    let from = shard_of(&fixture.gateway, IOT, 0);
    fixture.gateway.migrate_slot(IOT, 0, 1 - from).unwrap();
}

/// Hooks that, with a migration mid-flight (`SlotHandedOff`: the slot is
/// in transit, its source worker paused), race captures and a second
/// migration against the held slot claim, then crash the migration to
/// exercise the fail-closed unwind.
struct CaptureDuringMigration<'a> {
    gateway: &'a Gateway,
    seen: Mutex<Vec<GatewayError>>,
}

impl CrashHooks for CaptureDuringMigration<'_> {
    fn reached(&self, point: CrashPoint) -> bool {
        if point != CrashPoint::SlotHandedOff {
            return false;
        }
        // Streamed capture: reaches (IOT, 0) first and loses on its claim.
        let streamed = self.gateway.checkpoint_streamed().unwrap_err();
        // Full checkpoint: the pre-pause claim scan refuses before any
        // worker is paused (pausing the fleet around a mid-flight
        // migration would deadlock on the parked source worker).
        let full = self.gateway.checkpoint().unwrap_err();
        // A second migration of the same slot loses on the claim too.
        let remigrate = self.gateway.migrate_slot(IOT, 0, 1).unwrap_err();
        self.seen
            .lock()
            .unwrap()
            .extend([streamed, full, remigrate]);
        true
    }
}

#[test]
fn mid_flight_migration_refuses_captures_and_fails_closed() {
    let fixture = build_fixture(2);
    submit_rounds(&fixture, 0..PRE_ROUNDS);
    let from = shard_of(&fixture.gateway, IOT, 0);
    let hooks = CaptureDuringMigration {
        gateway: &fixture.gateway,
        seen: Mutex::new(Vec::new()),
    };
    let err = fixture
        .gateway
        .migrate_slot_with_hooks(IOT, 0, 1 - from, &hooks)
        .unwrap_err();
    assert_eq!(err, GatewayError::CrashInjected(CrashPoint::SlotHandedOff));

    let seen = hooks.seen.into_inner().unwrap();
    assert_eq!(seen.len(), 3);
    for (err, requested) in seen.iter().zip([
        BarrierOp::Checkpoint,
        BarrierOp::Checkpoint,
        BarrierOp::Rebalance,
    ]) {
        assert_eq!(
            *err,
            GatewayError::BarrierConflict {
                in_progress: BarrierOp::Rebalance,
                requested,
            }
        );
    }

    // Fail-closed: source shard still owns the slot, serving and a full
    // checkpoint both work again.
    assert_eq!(shard_of(&fixture.gateway, IOT, 0), from);
    submit_rounds(&fixture, PRE_ROUNDS..ROUNDS);
    fixture.gateway.checkpoint().unwrap();
}

// ---------------------------------------------------------------------------
// Concurrent serving across live migrations (the lost-window test)
// ---------------------------------------------------------------------------

#[test]
fn concurrent_submits_across_migrations_lose_nothing() {
    let fixture = build_fixture(2);
    let gateway = &fixture.gateway;
    let expected: usize = fixture.events.len();

    // One submitting thread per device (per-session order preserved), all
    // racing a coordinator that bounces IOT slot 0 between the shards.
    std::thread::scope(|scope| {
        for (d_idx, device) in fixture.devices.iter().enumerate() {
            let events: Vec<&Event> = fixture
                .events
                .iter()
                .filter(|e| e.device == d_idx)
                .collect();
            let session_id = device.session_id;
            scope.spawn(move || {
                for event in events {
                    loop {
                        match gateway.submit(session_id, event.ciphertext.clone()) {
                            Ok(()) => break,
                            Err(GatewayError::Backpressure { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                }
            });
        }
        scope.spawn(move || {
            for target in [1usize, 0, 1, 0, 1, 0] {
                gateway.migrate_slot(IOT, 0, target).unwrap();
            }
        });
    });

    let responses = gateway.drain_all().unwrap();
    assert_eq!(
        responses.len(),
        expected,
        "a submit raced the handoff window and was lost or duplicated"
    );
    assert_eq!(gateway.telemetry().migrations_aborted, 0);
}

// ---------------------------------------------------------------------------
// The Rebalancer driver
// ---------------------------------------------------------------------------

#[test]
fn rebalancer_drains_a_hot_shard_then_cools_down() {
    let fixture = build_fixture(2);
    let gateway = &fixture.gateway;

    // Pin all traffic to each tenant's device 0 — their sessions share the
    // slot-0s, which both live on one shard: a deliberately skewed fleet.
    for event in fixture
        .events
        .iter()
        .filter(|e| e.device % DEVICES_PER_TENANT == 0)
    {
        gateway
            .submit(
                fixture.devices[event.device].session_id,
                event.ciphertext.clone(),
            )
            .unwrap();
    }
    let loads = gateway.slot_loads();
    let hot = shard_of(gateway, IOT, 0);
    assert_eq!(shard_of(gateway, KEYBOARD, 0), hot, "slot 0s share a shard");
    let hot_depth: u64 = loads
        .iter()
        .filter(|l| l.shard == hot)
        .map(|l| l.queued)
        .sum();
    let cold_depth: u64 = loads
        .iter()
        .filter(|l| l.shard != hot)
        .map(|l| l.queued)
        .sum();
    assert!(hot_depth > 0 && cold_depth == 0, "fleet must start skewed");

    let mut rebalancer = Rebalancer::new(RebalanceConfig {
        min_imbalance: 2,
        cooldown_ticks: 2,
        max_moves_per_tick: 1,
    });
    let reports = rebalancer.tick(gateway).unwrap();
    assert_eq!(reports.len(), 1, "the skew must trigger exactly one move");
    assert_ne!(reports[0].to_shard, hot);
    assert!(reports[0].queued_moved > 0);

    // The fleet is now balanced (each tenant's pinned queue on its own
    // shard) and the rebalancer is cooling down: no further moves.
    assert_eq!(rebalancer.cooldown_remaining(), 2);
    assert!(
        rebalancer.tick(gateway).unwrap().is_empty(),
        "cooldown tick"
    );
    assert!(
        rebalancer.tick(gateway).unwrap().is_empty(),
        "cooldown tick"
    );
    assert_eq!(rebalancer.cooldown_remaining(), 0);
    assert!(
        rebalancer.tick(gateway).unwrap().is_empty(),
        "armed again, but the fleet is balanced"
    );

    // Everything still serves: every queued request drains to a reply.
    let responses = gateway.drain_all().unwrap();
    assert_eq!(
        responses.len(),
        fixture
            .events
            .iter()
            .filter(|e| e.device % DEVICES_PER_TENANT == 0)
            .count()
    );
}

#[test]
fn rebalancer_holds_still_inside_the_hysteresis_band() {
    let fixture = build_fixture(2);
    let gateway = &fixture.gateway;
    for event in fixture.events.iter().filter(|e| e.round < 1) {
        gateway
            .submit(
                fixture.devices[event.device].session_id,
                event.ciphertext.clone(),
            )
            .unwrap();
    }
    let mut rebalancer = Rebalancer::new(RebalanceConfig {
        min_imbalance: 1_000_000,
        cooldown_ticks: 0,
        max_moves_per_tick: 1,
    });
    assert!(rebalancer.tick(gateway).unwrap().is_empty());
    assert_eq!(gateway.telemetry().migrations_completed, 0);
}

// ---------------------------------------------------------------------------
// Planner properties
// ---------------------------------------------------------------------------

fn synthetic_loads(loads: &[(usize, u64)], shards: usize) -> Vec<SlotLoad> {
    loads
        .iter()
        .enumerate()
        .map(|(slot_id, &(shard, queued))| SlotLoad {
            tenant: Arc::from("tenant"),
            slot_id,
            shard: shard % shards,
            queued,
        })
        .collect()
}

fn depths_of(slots: &[SlotLoad], shards: usize) -> Vec<u64> {
    let mut depths = vec![0u64; shards];
    for load in slots {
        depths[load.shard] += load.queued;
    }
    depths
}

fn potential(depths: &[u64]) -> u128 {
    depths.iter().map(|&d| u128::from(d) * u128::from(d)).sum()
}

fn planner_config(min_imbalance: u64) -> RebalanceConfig {
    RebalanceConfig {
        min_imbalance,
        ..RebalanceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The plan never moves a slot to a more-loaded shard — and the target
    /// stays no deeper than the source even after receiving the slot.
    #[test]
    fn planner_never_moves_toward_a_deeper_shard(
        raw in proptest::collection::vec((0usize..6, 0u64..200), 0..24),
        shards in 1usize..6,
        min_imbalance in 0u64..128,
    ) {
        let slots = synthetic_loads(&raw, shards);
        if let Some(plan) = plan_rebalance(&slots, shards, &planner_config(min_imbalance)) {
            let depths = depths_of(&slots, shards);
            prop_assert!(plan.from_shard < shards && plan.to_shard < shards);
            prop_assert!(depths[plan.to_shard] < depths[plan.from_shard]);
            prop_assert!(plan.gap > min_imbalance);
            let moved = &slots[plan.slot_id];
            prop_assert_eq!(moved.shard, plan.from_shard);
            prop_assert!(moved.queued >= 1);
            prop_assert!(
                depths[plan.to_shard] + moved.queued
                    <= depths[plan.from_shard] - moved.queued,
                "the move may not leave the target deeper than the source"
            );
        }
    }

    /// Applying the plan repeatedly always converges, strictly decreasing
    /// the fleet's load imbalance each step and never bouncing a slot
    /// straight back — hysteresis holds under iteration.
    #[test]
    fn planner_converges_without_oscillating(
        raw in proptest::collection::vec((0usize..6, 0u64..40), 0..12),
        shards in 2usize..6,
        min_imbalance in 0u64..32,
    ) {
        let mut slots = synthetic_loads(&raw, shards);
        let config = planner_config(min_imbalance);
        let mut last_move: Option<(usize, usize, usize)> = None;
        let mut converged = false;
        // Each move strictly decreases the sum of squared depths (by at
        // least 2), so this bound can never be hit by a correct planner.
        for _ in 0..=potential(&depths_of(&slots, shards)) / 2 + 1 {
            let Some(plan) = plan_rebalance(&slots, shards, &config) else {
                converged = true;
                break;
            };
            if let Some((slot_id, from, to)) = last_move {
                prop_assert!(
                    !(plan.slot_id == slot_id
                        && plan.from_shard == to
                        && plan.to_shard == from),
                    "planner bounced a slot straight back"
                );
            }
            let before = potential(&depths_of(&slots, shards));
            slots[plan.slot_id].shard = plan.to_shard;
            let after = potential(&depths_of(&slots, shards));
            prop_assert!(after < before, "a move must strictly improve balance");
            last_move = Some((plan.slot_id, plan.from_shard, plan.to_shard));
        }
        prop_assert!(converged, "planner failed to converge");
    }

    /// A balanced fleet — gap within the hysteresis band — yields no plan.
    #[test]
    fn balanced_fleet_yields_an_empty_plan(
        raw in proptest::collection::vec((0usize..6, 0u64..200), 0..24),
        shards in 1usize..6,
    ) {
        let slots = synthetic_loads(&raw, shards);
        let depths = depths_of(&slots, shards);
        let gap = depths.iter().max().unwrap_or(&0) - depths.iter().min().unwrap_or(&0);
        // min_imbalance == gap: the whole observed skew sits inside the
        // band, so the planner must hold still.
        prop_assert!(plan_rebalance(&slots, shards, &planner_config(gap)).is_none());
    }

    /// Identical inputs always yield identical plans.
    #[test]
    fn planner_is_deterministic(
        raw in proptest::collection::vec((0usize..6, 0u64..200), 0..24),
        shards in 2usize..6,
        min_imbalance in 0u64..64,
    ) {
        let slots = synthetic_loads(&raw, shards);
        let config = planner_config(min_imbalance);
        prop_assert_eq!(
            plan_rebalance(&slots, shards, &config),
            plan_rebalance(&slots, shards, &config)
        );
    }
}
