//! Gateway security invariants: cross-tenant isolation in the enclave pool,
//! endorsement-budget accounting, and admission control.
//!
//! Two tenants share one gateway: the IoT telemetry service (Section 4.2)
//! and the predictive-keyboard service (Figure 1). Each tenant has its own
//! vetted Glimmer descriptor — hence its own measurement — and its own
//! endorsement-signing key, installed only into its own pool slots.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{
    BatchOutcome, Contribution, ContributionPayload, PrivateData, ProcessResponse,
};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::{
    Gateway, GatewayConfig, GatewayError, QuotaResource, TenantConfig, TenantQuota,
};
use sgx_sim::AttestationService;

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";

struct Setup {
    gateway: Gateway,
    avs: AttestationService,
    iot_material: ServiceKeyMaterial,
    keyboard_material: ServiceKeyMaterial,
    rng: Drbg,
}

fn setup(config: GatewayConfig, iot_quota: TenantQuota) -> Setup {
    let mut rng = Drbg::from_seed([70u8; 32]);
    let mut avs = AttestationService::new([71u8; 32]);
    let iot_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let keyboard_material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    let mut iot_tenant = TenantConfig::new(
        IOT,
        GlimmerDescriptor::iot_default(Vec::new()),
        iot_material.secret_bytes(),
    );
    iot_tenant.quota = iot_quota;
    let keyboard_tenant = TenantConfig::new(
        KEYBOARD,
        GlimmerDescriptor::keyboard_range_only(),
        keyboard_material.secret_bytes(),
    );
    let gateway = Gateway::new(
        config,
        vec![iot_tenant, keyboard_tenant],
        &mut avs,
        &mut rng,
    )
    .unwrap();
    Setup {
        gateway,
        avs,
        iot_material,
        keyboard_material,
        rng,
    }
}

/// Opens a session for `tenant`, completing the attested handshake.
fn connect(s: &mut Setup, tenant: &str) -> (u64, IotDeviceSession) {
    let (session_id, offer) = s.gateway.open_session(tenant).unwrap();
    let approved = s.gateway.measurement(tenant).unwrap();
    let (accept, device) =
        IotDeviceSession::connect(&offer, &s.avs, &approved, &mut s.rng).unwrap();
    s.gateway.complete_session(session_id, &accept).unwrap();
    (session_id, device)
}

fn iot_contribution(client_id: u64, samples: Vec<f64>) -> Contribution {
    Contribution {
        app_id: IOT.to_string(),
        client_id,
        round: 0,
        payload: ContributionPayload::IotReadings { samples },
    }
}

#[test]
fn mixed_tenant_serving_end_to_end() {
    let mut s = setup(
        GatewayConfig {
            slots_per_tenant: 2,
            ..GatewayConfig::default()
        },
        TenantQuota::default(),
    );

    // Four IoT devices and two keyboard clients, interleaved.
    let iot_clients: Vec<u64> = vec![1, 2, 3, 4];
    let iot_masks = BlindingService::new([3u8; 32]).zero_sum_masks(0, &iot_clients, 4);
    let mut iot_sessions = Vec::new();
    for (client, mask) in iot_clients.iter().zip(&iot_masks) {
        let (sid, device) = connect(&mut s, IOT);
        s.gateway.install_mask(sid, mask).unwrap();
        iot_sessions.push((sid, *client, device));
    }
    let kb_clients: Vec<u64> = vec![10, 11];
    let kb_masks = BlindingService::new([4u8; 32]).zero_sum_masks(0, &kb_clients, 8);
    let mut kb_sessions = Vec::new();
    for (client, mask) in kb_clients.iter().zip(&kb_masks) {
        let (sid, device) = connect(&mut s, KEYBOARD);
        s.gateway.install_mask(sid, mask).unwrap();
        kb_sessions.push((sid, *client, device));
    }

    // Least-loaded sharding spread sessions across both slots per tenant.
    let stats = s.gateway.stats();
    for row in &stats.slots {
        assert!(
            row.stats.active_sessions >= 1,
            "slot {}:{} never got a session",
            row.tenant,
            row.slot
        );
    }

    for (sid, client, device) in &mut iot_sessions {
        let ct = device.encrypt_request(
            iot_contribution(*client, vec![0.1, 0.2, 0.3, 0.4]),
            PrivateData::None,
        );
        s.gateway.submit(*sid, ct).unwrap();
    }
    for (sid, client, device) in &mut kb_sessions {
        let ct = device.encrypt_request(
            Contribution {
                app_id: KEYBOARD.to_string(),
                client_id: *client,
                round: 0,
                payload: ContributionPayload::ModelUpdate {
                    weights: vec![0.5; 8],
                },
            },
            PrivateData::None,
        );
        s.gateway.submit(*sid, ct).unwrap();
    }

    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 6);

    // Every device decrypts its endorsement and it verifies under its OWN
    // tenant's key — and never under the other tenant's key.
    for (sid, client, device) in iot_sessions.iter().chain(kb_sessions.iter()) {
        let response = responses
            .iter()
            .find(|r| r.session_id == *sid)
            .expect("response routed");
        let BatchOutcome::Reply {
            ciphertext,
            endorsed,
        } = &response.outcome
        else {
            panic!("expected a reply");
        };
        assert!(endorsed);
        let ProcessResponse::Endorsed(endorsement) = device.decrypt_response(ciphertext).unwrap()
        else {
            panic!("expected endorsement");
        };
        assert_eq!(endorsement.client_id, *client);
        let (own, other) = if &*response.tenant == IOT {
            (&s.iot_material, &s.keyboard_material)
        } else {
            (&s.keyboard_material, &s.iot_material)
        };
        assert!(own.verifier().verify(&endorsement).is_ok());
        assert!(
            other.verifier().verify(&endorsement).is_err(),
            "endorsement from {} verified under the other tenant's key",
            response.tenant
        );
    }

    let stats = s.gateway.stats();
    let iot_stats = &stats.tenants.iter().find(|(n, _)| n == IOT).unwrap().1;
    let kb_stats = &stats.tenants.iter().find(|(n, _)| n == KEYBOARD).unwrap().1;
    assert_eq!(iot_stats.endorsed, 4);
    assert_eq!(kb_stats.endorsed, 2);
    assert_eq!(stats.total_items(), 6);
}

#[test]
fn cross_tenant_attestation_and_session_isolation() {
    let mut s = setup(GatewayConfig::default(), TenantQuota::default());

    // A device that trusts tenant A's (IoT) published measurement refuses a
    // handshake offer served from tenant B's (keyboard) pool: the quote
    // carries tenant B's measurement.
    let (kb_session, kb_offer) = s.gateway.open_session(KEYBOARD).unwrap();
    let iot_measurement = s.gateway.measurement(IOT).unwrap();
    let kb_measurement = s.gateway.measurement(KEYBOARD).unwrap();
    assert_ne!(iot_measurement, kb_measurement);
    assert!(
        IotDeviceSession::connect(&kb_offer, &s.avs, &iot_measurement, &mut s.rng).is_err(),
        "device accepted a keyboard-tenant enclave as an IoT Glimmer"
    );
    s.gateway.close_session(kb_session).unwrap();

    // A session opened under tenant A is pinned to tenant A's pool: traffic
    // submitted on it can never reach tenant B's enclaves or key. We prove
    // the routing by completing an IoT session and checking the endorsement
    // key, above; here we prove the session id namespace is global, so a
    // closed/foreign id is rejected outright.
    let (iot_session, _device) = connect(&mut s, IOT);
    assert!(matches!(
        s.gateway.submit(kb_session, vec![0u8; 32]),
        Err(GatewayError::UnknownSession(_))
    ));

    // An unestablished session cannot submit.
    let (pending, _offer) = s.gateway.open_session(IOT).unwrap();
    assert!(matches!(
        s.gateway.submit(pending, vec![0u8; 32]),
        Err(GatewayError::SessionNotEstablished(_))
    ));

    // Unknown tenants are typed rejections.
    assert!(matches!(
        s.gateway.open_session("no-such-tenant"),
        Err(GatewayError::UnknownTenant(_))
    ));
    assert!(s.gateway.measurement("no-such-tenant").is_err());

    // Enrolling the same tenant name twice is refused at start-up (a silent
    // overwrite would swap out the first tenant's key and pool).
    let material = ServiceKeyMaterial::generate(&mut s.rng).unwrap();
    let duplicate = || {
        TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        )
    };
    let mut fresh_avs = sgx_sim::AttestationService::new([77u8; 32]);
    assert!(matches!(
        Gateway::new(
            GatewayConfig::default(),
            vec![duplicate(), duplicate()],
            &mut fresh_avs,
            &mut s.rng,
        ),
        Err(GatewayError::DuplicateTenant(_))
    ));

    // Closing the established session erases its enclave keys: a replayed
    // submit on the closed id is refused by the gateway.
    s.gateway.close_session(iot_session).unwrap();
    assert!(matches!(
        s.gateway.submit(iot_session, vec![0u8; 32]),
        Err(GatewayError::UnknownSession(_))
    ));
}

#[test]
fn poisoned_contributions_never_consume_endorsement_budget() {
    let mut s = setup(
        GatewayConfig::default(),
        TenantQuota {
            endorsement_budget: Some(3),
            ..TenantQuota::default()
        },
    );
    let clients: Vec<u64> = vec![1, 2, 3, 4];
    let masks = BlindingService::new([5u8; 32]).zero_sum_masks(0, &clients, 3);
    let mut sessions = Vec::new();
    for (client, mask) in clients.iter().zip(&masks) {
        let (sid, device) = connect(&mut s, IOT);
        s.gateway.install_mask(sid, mask).unwrap();
        sessions.push((sid, *client, device));
    }

    // Round 1: a poisoned (out-of-range) contribution and two honest ones.
    let (sid, client, device) = &mut sessions[0];
    let poison = device.encrypt_request(
        iot_contribution(*client, vec![0.5, 538.0, 0.5]),
        PrivateData::None,
    );
    s.gateway.submit(*sid, poison).unwrap();
    for (sid, client, device) in &mut sessions[1..3] {
        let ct = device.encrypt_request(
            iot_contribution(*client, vec![0.5, 0.5, 0.5]),
            PrivateData::None,
        );
        s.gateway.submit(*sid, ct).unwrap();
    }
    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 3);

    // The poisoned item was rejected by validation inside the enclave...
    let poisoned_reply = responses
        .iter()
        .find(|r| r.session_id == sessions[0].0)
        .unwrap();
    let BatchOutcome::Reply {
        ciphertext,
        endorsed,
    } = &poisoned_reply.outcome
    else {
        panic!("expected reply");
    };
    assert!(!endorsed);
    let ProcessResponse::Rejected { reason } = sessions[0].2.decrypt_response(ciphertext).unwrap()
    else {
        panic!("poisoned contribution must not be endorsed");
    };
    assert!(reason.contains("538"));

    // ...and did NOT consume an endorsement slot: with a budget of 3 and 2
    // endorsements spent, a third honest contribution still goes through.
    let (sid, client, device) = &mut sessions[3];
    let ct = device.encrypt_request(
        iot_contribution(*client, vec![0.4, 0.4, 0.4]),
        PrivateData::None,
    );
    s.gateway.submit(*sid, ct).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    assert!(matches!(
        &responses[0].outcome,
        BatchOutcome::Reply { endorsed: true, .. }
    ));

    // The budget is now spent: a fourth submission is throttled.
    let (sid, client, device) = &mut sessions[1];
    let ct = device.encrypt_request(
        iot_contribution(*client, vec![0.1, 0.1, 0.1]),
        PrivateData::None,
    );
    assert!(matches!(
        s.gateway.submit(*sid, ct),
        Err(GatewayError::QuotaExceeded {
            resource: QuotaResource::Endorsements,
            ..
        })
    ));

    let stats = s.gateway.stats();
    let iot_stats = &stats.tenants.iter().find(|(n, _)| n == IOT).unwrap().1;
    assert_eq!(iot_stats.endorsed, 3);
    assert_eq!(iot_stats.rejected, 1);
    assert_eq!(iot_stats.throttled, 1);
}

#[test]
fn backpressure_and_session_quotas() {
    let mut s = setup(
        GatewayConfig {
            slots_per_tenant: 1,
            max_batch: 8,
            max_queue_depth: 2,
            ..GatewayConfig::default()
        },
        TenantQuota {
            max_sessions: 2,
            max_queued: 16,
            endorsement_budget: None,
        },
    );

    let (sid_a, mut dev_a) = connect(&mut s, IOT);
    let (_sid_b, _dev_b) = connect(&mut s, IOT);

    // Session quota: a third session is refused.
    assert!(matches!(
        s.gateway.open_session(IOT),
        Err(GatewayError::QuotaExceeded {
            resource: QuotaResource::Sessions,
            ..
        })
    ));

    // Queue-depth backpressure on the single slot.
    let ct = || vec![0u8; 48];
    s.gateway.submit(sid_a, ct()).unwrap();
    s.gateway.submit(sid_a, ct()).unwrap();
    assert!(matches!(
        s.gateway.submit(sid_a, ct()),
        Err(GatewayError::Backpressure { depth: 2, .. })
    ));
    assert_eq!(s.gateway.queued(IOT).unwrap(), 2);

    // Draining relieves the backpressure; garbage ciphertexts fail safely
    // (Failed outcome, no endorsement) and the slot keeps serving.
    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses
        .iter()
        .all(|r| matches!(r.outcome, BatchOutcome::Failed(_))));
    let real = dev_a.encrypt_request(iot_contribution(99, vec![0.2]), PrivateData::None);
    s.gateway.submit(sid_a, real).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 1);
    // (Client 99 was never bound to this session via a mask install:
    // processed but rejected, still not a transport failure.)
    assert!(matches!(
        &responses[0].outcome,
        BatchOutcome::Reply {
            endorsed: false,
            ..
        }
    ));

    let stats = s.gateway.stats();
    let iot_stats = &stats.tenants.iter().find(|(n, _)| n == IOT).unwrap().1;
    assert_eq!(iot_stats.failed, 2);
    assert_eq!(iot_stats.rejected, 1);
    assert_eq!(iot_stats.throttled, 2);
    assert_eq!(iot_stats.sessions_opened, 2);
}

#[test]
fn sessions_cannot_impersonate_co_located_devices() {
    let mut s = setup(GatewayConfig::default(), TenantQuota::default());

    // Devices 1 and 2 share the tenant pool; each session is bound (via its
    // mask install) to its own client id only.
    let clients: Vec<u64> = vec![1, 2];
    let masks = BlindingService::new([6u8; 32]).zero_sum_masks(0, &clients, 3);
    let (sid_a, mut dev_a) = connect(&mut s, IOT);
    let (sid_b, mut dev_b) = connect(&mut s, IOT);
    s.gateway.install_mask(sid_a, &masks[0]).unwrap();
    s.gateway.install_mask(sid_b, &masks[1]).unwrap();

    // Device A submits a contribution *claiming device B's client id* over
    // its own session. The enclave refuses: the session is not authorized
    // for client 2, so B's mask share cannot be stolen and no endorsement
    // under B's identity is produced.
    let forged = dev_a.encrypt_request(iot_contribution(2, vec![0.9, 0.9, 0.9]), PrivateData::None);
    s.gateway.submit(sid_a, forged).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 1);
    let BatchOutcome::Reply {
        ciphertext,
        endorsed,
    } = &responses[0].outcome
    else {
        panic!("expected reply");
    };
    assert!(!endorsed);
    let ProcessResponse::Rejected { reason } = dev_a.decrypt_response(ciphertext).unwrap() else {
        panic!("impersonated contribution must not be endorsed");
    };
    assert!(reason.contains("not authorized"), "{reason}");

    // Device B's own contribution still endorses under its untouched mask.
    let genuine =
        dev_b.encrypt_request(iot_contribution(2, vec![0.3, 0.3, 0.3]), PrivateData::None);
    s.gateway.submit(sid_b, genuine).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    assert!(matches!(
        &responses[0].outcome,
        BatchOutcome::Reply { endorsed: true, .. }
    ));
}

#[test]
fn replays_and_corrupt_handshakes_are_contained() {
    let mut s = setup(
        GatewayConfig::default(),
        TenantQuota {
            max_sessions: 2,
            endorsement_budget: Some(5),
            ..TenantQuota::default()
        },
    );
    let masks = BlindingService::new([7u8; 32]).zero_sum_masks(0, &[1, 2], 3);
    let (sid, mut device) = connect(&mut s, IOT);
    s.gateway.install_mask(sid, &masks[0]).unwrap();

    // A network attacker replays a captured device ciphertext: the enclave
    // endorses it once and refuses the replay, so the tenant's endorsement
    // budget is burned exactly once per real contribution.
    let ct = device.encrypt_request(iot_contribution(1, vec![0.5, 0.5, 0.5]), PrivateData::None);
    s.gateway.submit(sid, ct.clone()).unwrap();
    s.gateway.submit(sid, ct).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    assert_eq!(responses.len(), 2);
    assert!(matches!(
        &responses[0].outcome,
        BatchOutcome::Reply { endorsed: true, .. }
    ));
    assert!(
        matches!(&responses[1].outcome, BatchOutcome::Failed(r) if r.contains("replayed")),
        "{:?}",
        responses[1].outcome
    );
    let stats = s.gateway.stats();
    let iot_stats = &stats.tenants.iter().find(|(n, _)| n == IOT).unwrap().1;
    assert_eq!(iot_stats.endorsed, 1);
    assert_eq!(iot_stats.failed, 1);

    // A corrupted handshake response does not wedge the session table: the
    // failed session is torn down, releasing its quota slot for a retry.
    let (bad_sid, _offer) = s.gateway.open_session(IOT).unwrap();
    let garbage = glimmer_core::channel::ChannelAccept {
        // Zero is never a valid group element, so the enclave-side handshake
        // completion fails after consuming the pending channel.
        service_dh_public: vec![0u8; 16],
        signature: vec![1, 2, 3],
    };
    assert!(s.gateway.complete_session(bad_sid, &garbage).is_err());
    assert!(matches!(
        s.gateway.submit(bad_sid, vec![0u8; 32]),
        Err(GatewayError::UnknownSession(_))
    ));
    // The quota slot freed by the teardown admits a fresh session.
    let (_retry_sid, _retry_device) = connect(&mut s, IOT);
}

#[test]
fn stale_pending_sessions_are_evictable() {
    let mut s = setup(
        GatewayConfig {
            slots_per_tenant: 1,
            ..GatewayConfig::default()
        },
        TenantQuota {
            max_sessions: 2,
            ..TenantQuota::default()
        },
    );

    // A client grabs both quota slots with handshakes it never completes.
    let (_abandoned_a, _) = s.gateway.open_session(IOT).unwrap();
    let (_abandoned_b, _) = s.gateway.open_session(IOT).unwrap();
    assert!(matches!(
        s.gateway.open_session(IOT),
        Err(GatewayError::QuotaExceeded { .. })
    ));

    // The operator's periodic sweep reclaims them (age 0 here so the test
    // does not sleep), freeing the quota for honest devices.
    let evicted = s.gateway.evict_stale_pending(std::time::Duration::ZERO);
    assert_eq!(evicted.len(), 2);
    assert_eq!(s.gateway.live_sessions(), 0);
    let (_sid, _device) = connect(&mut s, IOT);
}

#[test]
fn masks_can_be_delivered_sealed_against_an_untrusted_gateway() {
    use glimmer_core::channel::AttestedChannel;
    use glimmer_core::enclave_app::MaskDelivery;
    use glimmer_crypto::dh::DhGroup;
    use glimmer_crypto::schnorr::SigningKey;

    let mut s = setup(GatewayConfig::default(), TenantQuota::default());

    // The tenant's blinding service establishes its own attested channel to
    // every pool slot: it verifies each enclave's quote against the vetted
    // measurement, so the channel keys are shared only with genuine
    // Glimmers, never with the gateway process.
    let measurement = s.gateway.measurement(IOT).unwrap();
    let tenant_key = SigningKey::generate(DhGroup::default_group(), &mut s.rng).unwrap();
    let mut slot_channels = Vec::new();
    for slot in 0..s.gateway.slot_count(IOT).unwrap() {
        let offer = s.gateway.tenant_channel_offer(IOT, slot).unwrap();
        let (accept, channel) =
            AttestedChannel::respond(&offer, &s.avs, &measurement, &tenant_key, &mut s.rng)
                .unwrap();
        s.gateway
            .complete_tenant_channel(IOT, slot, &accept)
            .unwrap();
        slot_channels.push(channel);
    }
    assert!(matches!(
        s.gateway.tenant_channel_offer(IOT, 99),
        Err(GatewayError::UnknownSlot { slot: 99, .. })
    ));

    // A device connects; the tenant seals its mask to the session's slot.
    let masks = BlindingService::new([9u8; 32]).zero_sum_masks(0, &[1, 2], 3);
    let (sid, mut device) = connect(&mut s, IOT);
    let slot = s.gateway.session_slot(sid).unwrap();
    let nonce = [3u8; 12];
    let MaskDelivery::Encrypted { nonce, ciphertext } = MaskDelivery::encrypted(
        &masks[0],
        &slot_channels[slot].keys.service_to_glimmer,
        nonce,
    ) else {
        panic!("encrypted delivery expected");
    };
    // The relayed bytes never contain the raw mask words.
    assert!(!ciphertext
        .windows(8)
        .any(|w| w == masks[0].mask[0].to_le_bytes()));
    s.gateway
        .install_mask_encrypted(sid, nonce, ciphertext)
        .unwrap();

    // The session is bound and serves exactly as with plaintext delivery.
    let ct = device.encrypt_request(iot_contribution(1, vec![0.2, 0.4, 0.6]), PrivateData::None);
    s.gateway.submit(sid, ct).unwrap();
    let responses = s.gateway.drain_all().unwrap();
    let BatchOutcome::Reply {
        ciphertext,
        endorsed,
    } = &responses[0].outcome
    else {
        panic!("expected reply");
    };
    assert!(endorsed);
    let ProcessResponse::Endorsed(endorsement) = device.decrypt_response(ciphertext).unwrap()
    else {
        panic!("expected endorsement");
    };
    assert!(s.iot_material.verifier().verify(&endorsement).is_ok());
}
