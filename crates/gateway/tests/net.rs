//! Socket front-door invariants: ≥64 real loopback connections drive the
//! full device lifecycle (open → attested handshake → mask install →
//! submit → drain → close) concurrently with in-process blocking drivers
//! sharing the same pool — no reply is lost, duplicated, or routed across
//! a connection/tenant boundary — plus connection-level session ownership,
//! `ManualClock`-driven idle timeouts and stale-handshake eviction, and
//! proptests over the length-prefixed frame codec.

use glimmer_core::blinding::BlindingService;
use glimmer_core::host::GlimmerDescriptor;
use glimmer_core::protocol::{
    BatchOutcome, Contribution, ContributionPayload, PrivateData, ProcessResponse,
};
use glimmer_core::remote::IotDeviceSession;
use glimmer_core::signing::ServiceKeyMaterial;
use glimmer_crypto::drbg::Drbg;
use glimmer_gateway::frontend::{AsyncGateway, SessionExecutor};
use glimmer_gateway::net::proto::{CODE_GATEWAY, CODE_NOT_OWNER};
use glimmer_gateway::net::{self, ClientError, GatewayClient};
use glimmer_gateway::{Gateway, GatewayConfig, ManualClock, NetConfig, TenantConfig};
use sgx_sim::AttestationService;
use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use std::time::Duration;

const IOT: &str = "iot-telemetry.example";
const KEYBOARD: &str = "nextwordpredictive.com";
const IOT_DIM: usize = 4;
const KB_DIM: usize = 8;

fn build_gateway(
    config: GatewayConfig,
    avs: &mut AttestationService,
    rng: &mut Drbg,
    clock: Option<Arc<ManualClock>>,
) -> Gateway {
    let iot_material = ServiceKeyMaterial::generate(rng).unwrap();
    let kb_material = ServiceKeyMaterial::generate(rng).unwrap();
    let tenants = vec![
        TenantConfig::new(
            IOT,
            GlimmerDescriptor::iot_default(Vec::new()),
            iot_material.secret_bytes(),
        ),
        TenantConfig::new(
            KEYBOARD,
            GlimmerDescriptor::keyboard_range_only(),
            kb_material.secret_bytes(),
        ),
    ];
    match clock {
        Some(clock) => Gateway::with_clock(config, tenants, avs, rng, clock).unwrap(),
        None => Gateway::new(config, tenants, avs, rng).unwrap(),
    }
}

fn contribution(tenant: &str, client_id: u64, round: u64) -> Contribution {
    Contribution {
        app_id: tenant.to_string(),
        client_id,
        round,
        payload: if tenant == IOT {
            ContributionPayload::IotReadings {
                samples: vec![0.25; IOT_DIM],
            }
        } else {
            ContributionPayload::ModelUpdate {
                weights: vec![0.5; KB_DIM],
            }
        },
    }
}

fn seed(tag: u8, index: usize) -> [u8; 32] {
    let mut bytes = [0u8; 32];
    bytes[0] = tag;
    bytes[1] = index as u8;
    bytes[2] = (index >> 8) as u8;
    bytes
}

/// The headline socket test: `SOCKET_CONNS` real loopback TCP connections
/// (half per tenant, one OS client thread each) run the whole device
/// lifecycle against ONE front-door thread, while blocking in-process
/// driver threads push keyboard traffic through the same gateway, their
/// replies surfacing on the `unrouted` sink.
///
/// Invariants: every socket client gets exactly one reply per submitted
/// request, each reply names the client's own session and decrypts under
/// that session's channel key (routing across connections or tenants would
/// fail both checks), and the blocking drivers lose nothing to the socket
/// path.
#[test]
fn sixty_four_socket_connections_mixed_with_blocking_drivers() {
    if !net::supported() {
        return;
    }
    const SOCKET_CONNS: usize = 64;
    const ROUNDS: usize = 2;
    const BLOCKING_SESSIONS: usize = 4;
    const BLOCKING_ROUNDS: usize = 3;

    let mut rng = Drbg::from_seed([61u8; 32]);
    let mut avs = AttestationService::new([62u8; 32]);
    let gateway = Arc::new(build_gateway(
        GatewayConfig {
            slots_per_tenant: 4,
            shards: 2,
            ..GatewayConfig::default()
        },
        &mut avs,
        &mut rng,
        None,
    ));
    let avs = Arc::new(avs);
    let approved_iot = Arc::new(gateway.measurement(IOT).unwrap());
    let approved_kb = Arc::new(gateway.measurement(KEYBOARD).unwrap());

    // Per-tenant zero-sum mask groups: socket clients 0..N/2 per tenant,
    // blocking drivers use their own keyboard group with distinct ids.
    let iot_clients: Vec<u64> = (0..(SOCKET_CONNS / 2) as u64).collect();
    let kb_clients: Vec<u64> = (0..(SOCKET_CONNS / 2) as u64).collect();
    let blocking_clients: Vec<u64> = (1000..1000 + BLOCKING_SESSIONS as u64).collect();
    let iot_masks: Arc<Vec<Vec<_>>> = Arc::new(
        (0..ROUNDS as u64)
            .map(|round| {
                BlindingService::new([63u8; 32]).zero_sum_masks(round, &iot_clients, IOT_DIM)
            })
            .collect(),
    );
    let kb_masks: Arc<Vec<Vec<_>>> = Arc::new(
        (0..ROUNDS as u64)
            .map(|round| {
                BlindingService::new([64u8; 32]).zero_sum_masks(round, &kb_clients, KB_DIM)
            })
            .collect(),
    );
    let blocking_masks: Vec<Vec<_>> = (0..BLOCKING_ROUNDS as u64)
        .map(|round| {
            BlindingService::new([65u8; 32]).zero_sum_masks(round, &blocking_clients, KB_DIM)
        })
        .collect();

    let (unrouted_tx, unrouted_rx) = mpsc::channel();
    let server = net::serve(
        AsyncGateway::from_arc(Arc::clone(&gateway)),
        Some(unrouted_tx),
    )
    .expect("front door must come up");
    let addr = server.addr();

    let mut socket_session_ids = Vec::new();
    let mut blocking_session_ids = Vec::new();
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for conn in 0..SOCKET_CONNS {
            let (tenant, approved, masks, idx) = if conn % 2 == 0 {
                (
                    IOT,
                    Arc::clone(&approved_iot),
                    Arc::clone(&iot_masks),
                    conn / 2,
                )
            } else {
                (
                    KEYBOARD,
                    Arc::clone(&approved_kb),
                    Arc::clone(&kb_masks),
                    conn / 2,
                )
            };
            let avs = Arc::clone(&avs);
            clients.push(scope.spawn(move || -> Result<u64, ClientError> {
                let mut rng = Drbg::from_seed(seed(1, conn));
                let mut client = GatewayClient::connect(addr)?;
                client.set_read_timeout(Some(Duration::from_secs(60)))?;
                let (session_id, offer) = client.open_session(tenant)?;
                let (accept, mut session) =
                    IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                client.complete_session(session_id, &accept)?;
                for round in masks.iter() {
                    client.install_mask(session_id, &round[idx])?;
                }
                let stream: Vec<Vec<u8>> = (0..ROUNDS as u64)
                    .map(|round| {
                        session.encrypt_request(
                            contribution(tenant, idx as u64, round),
                            PrivateData::None,
                        )
                    })
                    .collect();
                client.submit_many(session_id, stream)?;
                // The server's periodic drainer pushes replies; collect ours.
                for _ in 0..ROUNDS {
                    let envelope = client.next_reply()?;
                    // No cross-connection leak: only this session's replies
                    // may arrive here...
                    assert_eq!(envelope.session_id, session_id);
                    let BatchOutcome::Reply {
                        ciphertext,
                        endorsed,
                    } = envelope.outcome
                    else {
                        panic!("honest request failed: {:?}", envelope.outcome);
                    };
                    assert!(endorsed, "honest request rejected");
                    // ...and no cross-tenant/session substitution: the reply
                    // must decrypt under THIS session's channel key.
                    let response = session.decrypt_response(&ciphertext).unwrap();
                    assert!(
                        matches!(response, ProcessResponse::Endorsed(_)),
                        "reply body must be an endorsement"
                    );
                }
                client.close_session(session_id)?;
                Ok(session_id)
            }));
        }

        // Blocking in-process drivers on the same pool, same tenant space.
        let blocking = {
            let gateway = Arc::clone(&gateway);
            let avs = Arc::clone(&avs);
            let approved = Arc::clone(&approved_kb);
            let blocking_clients = blocking_clients.clone();
            let blocking_masks = blocking_masks.clone();
            scope.spawn(move || -> Vec<u64> {
                let mut rng = Drbg::from_seed(seed(2, 0));
                let mut session_ids = Vec::new();
                for (i, client_id) in blocking_clients.iter().enumerate() {
                    let (session_id, offer) = gateway.open_session(KEYBOARD).unwrap();
                    let (accept, mut session) =
                        IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
                    gateway.complete_session(session_id, &accept).unwrap();
                    for round in &blocking_masks {
                        gateway.install_mask(session_id, &round[i]).unwrap();
                    }
                    for round in 0..BLOCKING_ROUNDS as u64 {
                        let request = session.encrypt_request(
                            contribution(KEYBOARD, *client_id, round),
                            PrivateData::None,
                        );
                        gateway.submit(session_id, request).unwrap();
                    }
                    session_ids.push(session_id);
                }
                session_ids
            })
        };

        for client in clients {
            socket_session_ids.push(client.join().unwrap().expect("socket client lifecycle"));
        }
        blocking_session_ids = blocking.join().unwrap();
    });

    // Every socket connection got its own session — no id was shared.
    let mut unique = socket_session_ids.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), SOCKET_CONNS);

    // The blocking drivers' replies all surface on the unrouted sink (their
    // sessions were never socket-owned), exactly once each, on the right
    // tenant.
    let mut per_session: HashMap<u64, usize> = HashMap::new();
    for _ in 0..BLOCKING_SESSIONS * BLOCKING_ROUNDS {
        let response = unrouted_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("blocking drivers' replies must reach the unrouted sink");
        assert_eq!(&*response.tenant, KEYBOARD);
        assert!(blocking_session_ids.contains(&response.session_id));
        let BatchOutcome::Reply { endorsed, .. } = &response.outcome else {
            panic!("honest blocking request failed: {:?}", response.outcome);
        };
        assert!(endorsed);
        *per_session.entry(response.session_id).or_default() += 1;
    }
    for session_id in &blocking_session_ids {
        assert_eq!(
            per_session[session_id], BLOCKING_ROUNDS,
            "loss or duplication"
        );
    }

    server.stop();
    // No socket reply leaked into the unrouted sink.
    assert!(unrouted_rx.try_recv().is_err());
    Arc::try_unwrap(gateway)
        .unwrap_or_else(|_| panic!("server released its gateway handle"))
        .shutdown()
        .unwrap();
}

/// A session id is bound to the connection that opened it: another
/// connection naming it gets [`CODE_NOT_OWNER`] — whatever the tenant —
/// and the rejected connection itself stays healthy.
#[test]
fn sessions_are_invisible_to_other_connections() {
    if !net::supported() {
        return;
    }
    let mut rng = Drbg::from_seed([66u8; 32]);
    let mut avs = AttestationService::new([67u8; 32]);
    let gateway = build_gateway(GatewayConfig::default(), &mut avs, &mut rng, None);
    let server = net::serve(AsyncGateway::new(gateway), None).unwrap();

    let mut owner = GatewayClient::connect(server.addr()).unwrap();
    owner
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (session_id, _offer) = owner.open_session(IOT).unwrap();

    let mut intruder = GatewayClient::connect(server.addr()).unwrap();
    intruder
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let rejection = intruder
        .submit(session_id, vec![0u8; 64])
        .expect_err("foreign session must be invisible");
    let ClientError::Server { code, .. } = rejection else {
        panic!("expected a typed server rejection, got {rejection}");
    };
    assert_eq!(code, CODE_NOT_OWNER);
    // Same for a close attempt — and the probe connection is still served.
    let rejection = intruder
        .close_session(session_id)
        .expect_err("foreign close must be refused");
    assert!(matches!(
        rejection,
        ClientError::Server {
            code: CODE_NOT_OWNER,
            ..
        }
    ));
    let (own_session, _offer) = intruder.open_session(KEYBOARD).unwrap();
    assert_ne!(own_session, session_id);
    server.stop();
}

/// Spawns a front door on its own thread over `serve_on`, with the executor
/// and gateway sharing one [`ManualClock`] — the deterministic-time shape
/// the timer-wheel tests need. Returns `(addr, stop-closure)`.
fn manual_clock_server(
    config: GatewayConfig,
    clock: Arc<ManualClock>,
) -> (
    Arc<Gateway>,
    AttestationService,
    std::net::SocketAddr,
    impl FnOnce(),
) {
    let mut rng = Drbg::from_seed([68u8; 32]);
    let mut avs = AttestationService::new([69u8; 32]);
    let gateway = Arc::new(build_gateway(
        config,
        &mut avs,
        &mut rng,
        Some(Arc::clone(&clock)),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let frontend = AsyncGateway::from_arc(Arc::clone(&gateway));
    let (startup_tx, startup_rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        let mut executor = SessionExecutor::with_clock(clock);
        executor.attach_telemetry(frontend.gateway().telemetry_handle());
        let shutdown = net::serve_on(&mut executor, frontend, listener, None).unwrap();
        startup_tx.send(shutdown).unwrap();
        executor.run();
    });
    let shutdown = startup_rx.recv().unwrap();
    let stop = move || {
        shutdown.stop();
        thread.join().unwrap();
    };
    (gateway, avs, addr, stop)
}

/// An idle connection is closed when the *executor clock* passes its idle
/// deadline — advancing a [`ManualClock`] is enough; no wall time needs to
/// elapse beyond the executor's bounded park.
#[test]
fn idle_connections_are_closed_on_the_manual_clock() {
    if !net::supported() {
        return;
    }
    let clock = Arc::new(ManualClock::new());
    let (gateway, _avs, addr, stop) = manual_clock_server(
        GatewayConfig {
            evict_stale_period: None,
            net: NetConfig {
                idle_timeout: Some(Duration::from_secs(5)),
                drain_interval: None,
                ..NetConfig::default()
            },
            ..GatewayConfig::default()
        },
        Arc::clone(&clock),
    );

    let mut client = GatewayClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let (_session_id, _offer) = client.open_session(IOT).unwrap();

    // Nothing moves while the clock stands still; one advance past the
    // deadline and the server hangs up on us.
    clock.advance(Duration::from_secs(6));
    let outcome = client.next_reply();
    assert!(
        matches!(outcome, Err(ClientError::Disconnected)),
        "expected the idle server to hang up, got {outcome:?}"
    );
    // The close is attributed to the idle policy, and the orphaned session
    // was reclaimed behind the connection (its quota slot freed).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let snapshot = gateway.telemetry_handle().snapshot();
        if snapshot.net_idle_timeouts >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "idle timeout never recorded"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    stop();
}

/// The bug this PR fixes: `evict_stale_pending` existed but nothing in
/// production ever called it. With the front door up, the timer-wheel
/// sweeper reclaims an abandoned half-open handshake without any operator
/// polling — shown end-to-end on a [`ManualClock`].
#[test]
fn abandoned_handshakes_are_reclaimed_without_operator_polling() {
    if !net::supported() {
        return;
    }
    let clock = Arc::new(ManualClock::new());
    let (gateway, avs, addr, stop) = manual_clock_server(
        GatewayConfig {
            stale_pending_after: Duration::from_secs(30),
            evict_stale_period: Some(Duration::from_secs(1)),
            net: NetConfig {
                idle_timeout: None,
                drain_interval: None,
                ..NetConfig::default()
            },
            ..GatewayConfig::default()
        },
        Arc::clone(&clock),
    );

    let mut client = GatewayClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // Open, then abandon: never complete the handshake.
    let (session_id, offer) = client.open_session(IOT).unwrap();

    clock.advance(Duration::from_secs(31));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if gateway.telemetry_handle().snapshot().sessions_evicted >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "stale-handshake sweep never fired"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The evicted session is truly gone: completing the abandoned
    // handshake now fails with a typed gateway error, not a hang.
    let mut rng = Drbg::from_seed([70u8; 32]);
    let approved = gateway.measurement(IOT).unwrap();
    let (accept, _session) = IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
    let outcome = client
        .complete_session(session_id, &accept)
        .expect_err("evicted session must reject completion");
    assert!(matches!(
        outcome,
        ClientError::Server {
            code: CODE_GATEWAY,
            ..
        }
    ));
    stop();
}

mod frame_codec {
    use glimmer_gateway::net::frame::{encode_frame, LENGTH_PREFIX};
    use glimmer_gateway::net::{FrameDecoder, FrameError};
    use glimmer_wire::Frame;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the socket's read sizes, a frame sequence decodes to
        /// exactly the frames that were encoded, once each, in order.
        #[test]
        fn round_trip_survives_arbitrary_chunking(
            frames in proptest::collection::vec(
                (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..512)),
                1..8,
            ),
            chunk in 1usize..64,
        ) {
            let originals: Vec<Frame> = frames
                .iter()
                .map(|(msg_type, payload)| Frame::new(*msg_type, payload.clone()))
                .collect();
            let mut bytes = Vec::new();
            for frame in &originals {
                encode_frame(frame, &mut bytes);
            }
            let mut decoder = FrameDecoder::new(1 << 20);
            let mut out = Vec::new();
            for piece in bytes.chunks(chunk) {
                decoder.feed(piece, &mut out).unwrap();
            }
            prop_assert_eq!(out.len(), originals.len());
            for (got, want) in out.iter().zip(&originals) {
                prop_assert_eq!(got.msg_type, want.msg_type);
                prop_assert_eq!(&got.payload, &want.payload);
            }
            prop_assert_eq!(decoder.buffered(), 0);
        }

        /// A truncated stream produces no frame and no error — the decoder
        /// just waits for the rest.
        #[test]
        fn truncation_yields_no_frame_and_no_panic(
            msg_type in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            keep_permille in 0usize..1000,
        ) {
            let mut bytes = Vec::new();
            encode_frame(&Frame::new(msg_type, payload), &mut bytes);
            let keep = (bytes.len() * keep_permille / 1000).min(bytes.len() - 1);
            let mut decoder = FrameDecoder::new(1 << 20);
            let mut out = Vec::new();
            decoder.feed(&bytes[..keep], &mut out).unwrap();
            prop_assert!(out.is_empty());
            prop_assert_eq!(decoder.buffered(), keep);
        }

        /// Any single bit flip yields either a clean decode or a typed
        /// error — never a panic. (A flip inside the payload bytes is
        /// legitimately invisible to framing.)
        #[test]
        fn bit_flips_never_panic(
            msg_type in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
            flip_byte in any::<usize>(),
            flip_bit in 0u8..8,
        ) {
            let mut bytes = Vec::new();
            encode_frame(&Frame::new(msg_type, payload), &mut bytes);
            let index = flip_byte % bytes.len();
            bytes[index] ^= 1 << flip_bit;
            let mut decoder = FrameDecoder::new(1 << 20);
            let mut out = Vec::new();
            let _ = decoder.feed(&bytes, &mut out);
        }

        /// A hostile length announcement is refused from the prefix alone,
        /// before any body byte arrives or any buffer grows to match.
        #[test]
        fn oversize_length_is_rejected_before_allocation(
            announced in 65u32..,
        ) {
            const MAX: usize = 64;
            let mut decoder = FrameDecoder::new(MAX);
            let mut out = Vec::new();
            let outcome = decoder.feed(&announced.to_be_bytes(), &mut out);
            prop_assert_eq!(
                outcome,
                Err(FrameError::Oversize { announced: announced as usize, max: MAX })
            );
            prop_assert!(out.is_empty());
        }
    }

    /// The length prefix is exactly four big-endian bytes — a wire-format
    /// constant clients in other languages depend on.
    #[test]
    fn wire_format_is_four_byte_be_length_plus_body() {
        let frame = Frame::new(0x0102, vec![0xAA; 5]);
        let mut bytes = Vec::new();
        encode_frame(&frame, &mut bytes);
        let body = frame.to_bytes();
        assert_eq!(LENGTH_PREFIX, 4);
        assert_eq!(&bytes[..4], &(body.len() as u32).to_be_bytes());
        assert_eq!(&bytes[4..], &body[..]);
    }
}
