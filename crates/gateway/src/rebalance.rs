//! Live slot rebalancing: turning a hot shard from a permanent condition
//! into a transient one.
//!
//! Queue-depth-aware placement (the `open_session` policy) only steers
//! *new* sessions; once a session is bound to a slot, its traffic lands on
//! whatever shard owns that slot. Under skewed device traffic that leaves
//! one worker's queues deep while its siblings idle. This module closes
//! the loop: a pure, deterministic planner ([`plan_rebalance`]) looks at
//! per-slot queued work, and a [`Rebalancer`] executes the plan by calling
//! [`Gateway::migrate_slot`] — a per-slot quiesce, sealed export at the
//! handoff point, transfer of the live slot to the least-loaded shard, and
//! an atomic routing retarget, all while every other slot keeps serving.
//!
//! The planner is deliberately conservative:
//!
//! - it moves nothing until the gap between the deepest and shallowest
//!   shard exceeds [`RebalanceConfig::min_imbalance`] (the hysteresis band
//!   that keeps a near-balanced fleet from thrashing);
//! - it only picks a slot whose queued work `d` satisfies `2d <= gap`, so
//!   the receiving shard can never end up deeper than the shard it was
//!   relieved from — which is what makes oscillation impossible: each
//!   executed move strictly shrinks the fleet's load imbalance (the sum of
//!   squared shard depths drops by `2d * (gap - d) > 0`);
//! - among eligible slots it takes the deepest (closest to `gap / 2`),
//!   breaking ties toward the lexicographically first `(tenant, slot)` so
//!   identical inputs always yield identical plans.
//!
//! The per-shard aggregates the planner derives are the same numbers the
//! telemetry snapshot exposes as `glimmer_shard_queue_depth{shard=..}`;
//! the planner reads them from the live slot gauges (the ones the
//! placement policy maintains at admission time) rather than the snapshot,
//! so a freshly skewed burst is visible before any drain sweep runs.

use crate::config::RebalanceConfig;
use crate::error::Result;
use crate::gateway::Gateway;
use std::sync::Arc;

/// One pool slot's live load, as reported by [`Gateway::slot_loads`] in
/// deterministic (tenant name, slot id) order.
#[derive(Debug, Clone)]
pub struct SlotLoad {
    /// Owning tenant (the gateway's interned label).
    pub tenant: Arc<str>,
    /// Slot index within the tenant's pool.
    pub slot_id: usize,
    /// Shard that currently owns the slot.
    pub shard: usize,
    /// Requests queued on the slot right now.
    pub queued: u64,
}

/// One planned migration: move `(tenant, slot_id)` from `from_shard` to
/// `to_shard`. Produced by [`plan_rebalance`], executed by
/// [`Rebalancer::tick`] via [`Gateway::migrate_slot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationPlan {
    /// Tenant owning the slot to move.
    pub tenant: Arc<str>,
    /// The slot to move.
    pub slot_id: usize,
    /// The overloaded shard it leaves.
    pub from_shard: usize,
    /// The least-loaded shard it joins.
    pub to_shard: usize,
    /// The queued-work gap (deepest minus shallowest shard) the move
    /// addresses.
    pub gap: u64,
}

/// What one committed [`Gateway::migrate_slot`] call did.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Tenant owning the migrated slot.
    pub tenant: String,
    /// The migrated slot's index within the tenant's pool.
    pub slot_id: usize,
    /// Shard the slot left.
    pub from_shard: usize,
    /// Shard the slot now serves from.
    pub to_shard: usize,
    /// Requests that were queued on the slot and travelled with it (they
    /// replay on the new worker's next drain sweep).
    pub queued_moved: usize,
    /// Size of the sealed crash-recovery artifact captured at the handoff
    /// point.
    pub sealed_bytes: usize,
    /// The enclave state epoch inside that sealed artifact.
    pub state_epoch: u64,
    /// Wall nanos from slot claim to post-commit fence (`0` for the
    /// same-shard no-op).
    pub duration_nanos: u64,
}

/// Sums per-shard queued work over `shards` shards (shards owning no slot
/// count as depth `0`).
fn shard_depths(slots: &[SlotLoad], shards: usize) -> Vec<u64> {
    let mut depths = vec![0u64; shards];
    for load in slots {
        if let Some(depth) = depths.get_mut(load.shard) {
            *depth += load.queued;
        }
    }
    depths
}

/// The pure migration planner: given every slot's live load and the shard
/// count, picks at most one slot to move from the deepest shard to the
/// shallowest, or `None` when the fleet is balanced (gap within
/// [`RebalanceConfig::min_imbalance`]) or no slot can move without
/// overshooting.
///
/// Guarantees (property-tested in `tests/rebalance.rs`):
///
/// - the target shard is strictly shallower than the source, and stays no
///   deeper than the source even after receiving the slot (`2d <= gap`);
/// - executed plans never oscillate: each move strictly decreases the sum
///   of squared shard depths, so plan→apply loops terminate;
/// - a balanced fleet yields `None`;
/// - deterministic: identical inputs yield identical plans.
#[must_use]
pub fn plan_rebalance(
    slots: &[SlotLoad],
    shards: usize,
    config: &RebalanceConfig,
) -> Option<MigrationPlan> {
    if shards < 2 {
        return None;
    }
    let depths = shard_depths(slots, shards);
    // First index wins ties on both ends, so the plan is deterministic.
    let (from_shard, &max_depth) = depths
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
    let (to_shard, &min_depth) = depths
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))?;
    let gap = max_depth - min_depth;
    if gap <= config.min_imbalance {
        return None;
    }
    // Eligible: lives on the hot shard, carries work, and moving it cannot
    // push the cold shard past the hot one. Deepest eligible slot wins
    // (most relief per move); ties break toward the first (tenant, slot).
    slots
        .iter()
        .filter(|load| load.shard == from_shard && load.queued >= 1 && 2 * load.queued <= gap)
        .max_by(|a, b| {
            a.queued
                .cmp(&b.queued)
                .then_with(|| b.tenant.cmp(&a.tenant))
                .then(b.slot_id.cmp(&a.slot_id))
        })
        .map(|load| MigrationPlan {
            tenant: Arc::clone(&load.tenant),
            slot_id: load.slot_id,
            from_shard,
            to_shard,
            gap,
        })
}

/// Drives [`plan_rebalance`] against a live gateway: each [`tick`]
/// re-reads the slot gauges, executes up to
/// [`RebalanceConfig::max_moves_per_tick`] planned migrations, then sits
/// out [`RebalanceConfig::cooldown_ticks`] ticks so the moved queues drain
/// before the next imbalance reading is trusted.
///
/// The rebalancer holds no reference to the gateway — an operator loop (or
/// a test) owns the cadence and passes the gateway each tick.
///
/// [`tick`]: Rebalancer::tick
#[derive(Debug)]
pub struct Rebalancer {
    config: RebalanceConfig,
    cooldown: u32,
}

impl Rebalancer {
    /// A rebalancer that plans with `config`, ready to act on its first
    /// tick.
    #[must_use]
    pub fn new(config: RebalanceConfig) -> Rebalancer {
        Rebalancer {
            config,
            cooldown: 0,
        }
    }

    /// Ticks remaining before the next tick may migrate (`0` = armed).
    #[must_use]
    pub fn cooldown_remaining(&self) -> u32 {
        self.cooldown
    }

    /// One planner tick: plan against the gateway's live slot loads and
    /// execute the moves. Returns the reports of every migration committed
    /// this tick (empty while cooling down or balanced).
    ///
    /// # Errors
    ///
    /// Propagates [`Gateway::migrate_slot`] failures. A
    /// [`crate::GatewayError::BarrierConflict`] here means a checkpoint or
    /// another slot-scoped capture won the race for the chosen slot — the
    /// slot still serves from its source shard, and the next tick simply
    /// re-plans.
    pub fn tick(&mut self, gateway: &Gateway) -> Result<Vec<MigrationReport>> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Ok(Vec::new());
        }
        let mut reports = Vec::new();
        for _ in 0..self.config.max_moves_per_tick.max(1) {
            let loads = gateway.slot_loads();
            let Some(plan) = plan_rebalance(&loads, gateway.shard_count(), &self.config) else {
                break;
            };
            reports.push(gateway.migrate_slot(&plan.tenant, plan.slot_id, plan.to_shard)?);
        }
        if !reports.is_empty() {
            self.cooldown = self.config.cooldown_ticks;
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(tenant: &str, slot_id: usize, shard: usize, queued: u64) -> SlotLoad {
        SlotLoad {
            tenant: Arc::from(tenant),
            slot_id,
            shard,
            queued,
        }
    }

    fn config(min_imbalance: u64) -> RebalanceConfig {
        RebalanceConfig {
            min_imbalance,
            ..RebalanceConfig::default()
        }
    }

    #[test]
    fn balanced_fleet_plans_nothing() {
        let slots = [load("a", 0, 0, 10), load("a", 1, 1, 10)];
        assert!(plan_rebalance(&slots, 2, &config(0)).is_none());
    }

    #[test]
    fn gap_within_hysteresis_band_plans_nothing() {
        let slots = [load("a", 0, 0, 70), load("a", 1, 1, 10)];
        // gap = 60 <= min_imbalance = 64: inside the band, hold still.
        assert!(plan_rebalance(&slots, 2, &config(64)).is_none());
    }

    #[test]
    fn skewed_fleet_moves_deepest_eligible_slot_to_coldest_shard() {
        let slots = [
            load("a", 0, 0, 50),
            load("a", 1, 0, 30),
            load("b", 0, 0, 80),
            load("b", 1, 2, 5),
        ];
        // depths: shard0=160, shard1=0, shard2=5 → gap=160 (0 → 1).
        // Eligible on shard 0: all three (2d <= 160); deepest is b/0.
        let plan = plan_rebalance(&slots, 3, &config(16)).expect("skew crosses the band");
        assert_eq!(&*plan.tenant, "b");
        assert_eq!(plan.slot_id, 0);
        assert_eq!(plan.from_shard, 0);
        assert_eq!(plan.to_shard, 1);
        assert_eq!(plan.gap, 160);
    }

    #[test]
    fn overshooting_slots_are_ineligible() {
        // One giant slot: moving it would just swap which shard is hot.
        let slots = [load("a", 0, 0, 100)];
        assert!(plan_rebalance(&slots, 2, &config(10)).is_none());
    }

    #[test]
    fn single_shard_never_plans() {
        let slots = [load("a", 0, 0, 1000)];
        assert!(plan_rebalance(&slots, 1, &config(0)).is_none());
    }

    #[test]
    fn ties_break_toward_first_tenant_then_slot() {
        let slots = [
            load("b", 1, 0, 20),
            load("b", 0, 0, 20),
            load("a", 3, 0, 20),
        ];
        let plan = plan_rebalance(&slots, 2, &config(4)).expect("gap 60 > 4");
        assert_eq!(&*plan.tenant, "a");
        assert_eq!(plan.slot_id, 3);
    }

    #[test]
    fn empty_shards_count_as_coldest() {
        let slots = [load("a", 0, 0, 40), load("a", 1, 0, 40), load("a", 2, 1, 8)];
        // depths: [80, 8, 0, 0] → the first idle shard is the target.
        let plan = plan_rebalance(&slots, 4, &config(8)).expect("shard 2 idles");
        assert_eq!(plan.to_shard, 2);
        assert_eq!(plan.from_shard, 0);
    }
}
