//! Per-tenant and per-slot serving statistics.
//!
//! Counters live in two places to keep the runtime shared-nothing:
//! admission-side tenant counters are atomics updated by whichever thread
//! observes the event, while per-slot drain counters are owned exclusively
//! by the shard worker that owns the slot and are *merged on read* — a
//! [`crate::Gateway::stats`] call asks every shard for its rows and stitches
//! the snapshot together.

/// Counters the gateway keeps for one tenant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Sessions opened (handshake started).
    pub sessions_opened: u64,
    /// Sessions closed (by the device or the gateway).
    pub sessions_closed: u64,
    /// Requests accepted into a slot queue.
    pub submitted: u64,
    /// Requests that produced an endorsement.
    pub endorsed: u64,
    /// Requests the enclave processed but rejected (failed validation or
    /// missing mask); the reason stays encrypted end-to-end.
    pub rejected: u64,
    /// Requests that failed before the pipeline ran (unknown session,
    /// undecryptable ciphertext).
    pub failed: u64,
    /// Submissions and session opens refused by admission control.
    pub throttled: u64,
    /// Queued requests discarded because their session closed first.
    pub dropped: u64,
}

impl TenantStats {
    /// Requests drained through an enclave so far.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.endorsed + self.rejected + self.failed
    }
}

/// Counters the gateway keeps for one pool slot (one enclave).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Batch drains performed.
    pub batches: u64,
    /// Items drained across all batches.
    pub items: u64,
    /// Largest single batch drained.
    pub max_batch: u64,
    /// Simulated enclave cycles consumed by this slot's drains.
    pub drain_cycles: u64,
    /// Wall-clock nanoseconds spent inside drains.
    pub drain_nanos: u64,
    /// Sessions currently routed to this slot.
    pub active_sessions: usize,
    /// Requests currently queued on this slot.
    pub queue_depth: usize,
    /// ECALLs made by this slot's platform since the slot was (re)built —
    /// the E14 restart-recovery metric: a freshly provisioned slot pays a
    /// provisioning ECALL plus a handshake pair and a mask install per
    /// session, while a checkpoint-restored slot pays exactly one
    /// `IMPORT_STATE` ECALL regardless of session count.
    pub ecalls: u64,
    /// Queue depth observed at the *start* of this slot's most recent
    /// drain — the live backlog gauge telemetry samples. Unlike
    /// [`SlotStats::queue_depth`] (the residue left *after* draining, which
    /// is zero whenever `max_batch` covers the queue), this captures how
    /// much work each sweep actually found waiting. Per-incarnation: zeroed
    /// on checkpoint capture and restore.
    pub last_drain_queue_depth: usize,
}

impl SlotStats {
    /// Mean simulated cycles per drained item (the batching amortization
    /// shows up directly here).
    #[must_use]
    pub fn cycles_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.drain_cycles as f64 / self.items as f64
        }
    }

    /// Mean wall-clock latency per drained item, in microseconds.
    #[must_use]
    pub fn micros_per_item(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.drain_nanos as f64 / 1e3 / self.items as f64
        }
    }

    /// Mean items per batch.
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.items as f64 / self.batches as f64
        }
    }
}

/// A labelled snapshot row for one slot.
#[derive(Debug, Clone)]
pub struct SlotStatsRow {
    /// Owning tenant.
    pub tenant: String,
    /// Slot index within the tenant's pool.
    pub slot: usize,
    /// The shard (worker thread) that owns the slot.
    pub shard: usize,
    /// The counters.
    pub stats: SlotStats,
}

/// A labelled snapshot of the whole gateway.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Per-tenant counters, keyed by tenant name.
    pub tenants: Vec<(String, TenantStats)>,
    /// Per-slot counters.
    pub slots: Vec<SlotStatsRow>,
    /// Commands pushed onto shard queues by the submit paths: `submit` costs
    /// one command per request, `submit_many`/`submit_batch` one per shard
    /// per call. The gap between this and `submitted` is the channel and
    /// atomic traffic batched admission saved (experiment E13's metric).
    pub submit_commands: u64,
    /// Lazily-built per-shard drain-cycle totals, filled on the first
    /// by-shard query so repeated aggregation calls (the E12 report loops
    /// call them per row) stop rebuilding a `BTreeMap` each time. Never
    /// read directly — go through
    /// [`GatewayStats::drain_cycles_by_shard_cached`].
    pub(crate) by_shard_cycles: std::sync::OnceLock<std::collections::BTreeMap<usize, u64>>,
}

impl Clone for GatewayStats {
    fn clone(&self) -> Self {
        GatewayStats {
            tenants: self.tenants.clone(),
            slots: self.slots.clone(),
            submit_commands: self.submit_commands,
            // A fresh cache, not a copy: the clone's `slots` may be mutated
            // before its first by-shard query, and the cache must reflect
            // the rows it is derived from.
            by_shard_cycles: std::sync::OnceLock::new(),
        }
    }
}

impl GatewayStats {
    /// Total endorsements across tenants.
    #[must_use]
    pub fn total_endorsed(&self) -> u64 {
        self.tenants.iter().map(|(_, t)| t.endorsed).sum()
    }

    /// Total items drained across slots.
    #[must_use]
    pub fn total_items(&self) -> u64 {
        self.slots.iter().map(|s| s.stats.items).sum()
    }

    /// Total simulated enclave cycles spent in drains, across all slots.
    #[must_use]
    pub fn total_drain_cycles(&self) -> u64 {
        self.slots.iter().map(|s| s.stats.drain_cycles).sum()
    }

    /// Simulated drain cycles grouped by owning shard, keyed by shard index.
    /// Returns an owned copy; hot aggregation loops should prefer
    /// [`GatewayStats::drain_cycles_by_shard_cached`], which this delegates
    /// to.
    #[must_use]
    pub fn drain_cycles_by_shard(&self) -> std::collections::BTreeMap<usize, u64> {
        self.drain_cycles_by_shard_cached().clone()
    }

    /// Simulated drain cycles grouped by owning shard, computed once per
    /// snapshot and cached. The cache is keyed to the rows present at the
    /// first call: a snapshot is ordinarily read-only after
    /// [`crate::Gateway::stats`] builds it, and [`Clone`] resets the cache,
    /// so code that *does* edit `slots` by hand should query only
    /// afterwards.
    #[must_use]
    pub fn drain_cycles_by_shard_cached(&self) -> &std::collections::BTreeMap<usize, u64> {
        self.by_shard_cycles.get_or_init(|| {
            let mut by_shard = std::collections::BTreeMap::new();
            for row in &self.slots {
                *by_shard.entry(row.shard).or_insert(0) += row.stats.drain_cycles;
            }
            by_shard
        })
    }

    /// Queue depth found waiting at each shard's most recent drain sweep
    /// ([`SlotStats::last_drain_queue_depth`] summed per shard) — the
    /// merged-on-read view of the live backlog gauge the telemetry
    /// snapshot also exports.
    #[must_use]
    pub fn last_drain_queue_depth_by_shard(&self) -> std::collections::BTreeMap<usize, usize> {
        let mut by_shard = std::collections::BTreeMap::new();
        for row in &self.slots {
            *by_shard.entry(row.shard).or_insert(0) += row.stats.last_drain_queue_depth;
        }
        by_shard
    }

    /// The serving makespan in simulated cycles: shards drain their slots
    /// sequentially but run concurrently with each other, so the workload's
    /// critical path is the *busiest* shard's cycle total. With one shard
    /// this equals [`GatewayStats::total_drain_cycles`]; the gap between the
    /// two is exactly what shard-per-core parallelism buys (experiment E12).
    #[must_use]
    pub fn critical_path_drain_cycles(&self) -> u64 {
        self.drain_cycles_by_shard_cached()
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut slot = SlotStats::default();
        assert_eq!(slot.cycles_per_item(), 0.0);
        assert_eq!(slot.micros_per_item(), 0.0);
        assert_eq!(slot.mean_batch(), 0.0);
        slot.batches = 2;
        slot.items = 8;
        slot.drain_cycles = 80;
        slot.drain_nanos = 8_000;
        assert!((slot.cycles_per_item() - 10.0).abs() < 1e-12);
        assert!((slot.micros_per_item() - 1.0).abs() < 1e-12);
        assert!((slot.mean_batch() - 4.0).abs() < 1e-12);

        let tenant = TenantStats {
            endorsed: 3,
            rejected: 2,
            failed: 1,
            ..TenantStats::default()
        };
        assert_eq!(tenant.completed(), 6);

        let stats = GatewayStats {
            tenants: vec![("a".into(), tenant)],
            slots: vec![SlotStatsRow {
                tenant: "a".into(),
                slot: 0,
                shard: 0,
                stats: slot,
            }],
            submit_commands: 0,
            ..GatewayStats::default()
        };
        assert_eq!(stats.total_endorsed(), 3);
        assert_eq!(stats.total_items(), 8);
    }

    #[test]
    fn shard_cycle_aggregation() {
        let row = |shard: usize, cycles: u64| SlotStatsRow {
            tenant: "a".into(),
            slot: 0,
            shard,
            stats: SlotStats {
                drain_cycles: cycles,
                ..SlotStats::default()
            },
        };
        let empty = GatewayStats::default();
        assert_eq!(empty.critical_path_drain_cycles(), 0);

        let stats = GatewayStats {
            tenants: Vec::new(),
            slots: vec![row(0, 10), row(1, 25), row(0, 5), row(1, 1)],
            submit_commands: 0,
            ..GatewayStats::default()
        };
        assert_eq!(stats.total_drain_cycles(), 41);
        let by_shard = stats.drain_cycles_by_shard();
        assert_eq!(by_shard[&0], 15);
        assert_eq!(by_shard[&1], 26);
        // The busiest shard is the critical path.
        assert_eq!(stats.critical_path_drain_cycles(), 26);
        // The cached accessor returns the same aggregation without a
        // rebuild, and cloning starts a fresh cache for the clone's rows.
        assert_eq!(stats.drain_cycles_by_shard_cached(), &by_shard);
        let mut cloned = stats.clone();
        cloned.slots.push(row(2, 100));
        assert_eq!(cloned.drain_cycles_by_shard_cached()[&2], 100);
        assert_eq!(stats.drain_cycles_by_shard_cached().get(&2), None);
    }

    #[test]
    fn queue_depth_gauge_aggregates_by_shard() {
        let row = |shard: usize, depth: usize| SlotStatsRow {
            tenant: "a".into(),
            slot: 0,
            shard,
            stats: SlotStats {
                last_drain_queue_depth: depth,
                ..SlotStats::default()
            },
        };
        let stats = GatewayStats {
            tenants: Vec::new(),
            slots: vec![row(0, 3), row(1, 7), row(0, 2)],
            submit_commands: 0,
            ..GatewayStats::default()
        };
        let by_shard = stats.last_drain_queue_depth_by_shard();
        assert_eq!(by_shard[&0], 5);
        assert_eq!(by_shard[&1], 7);
    }
}
