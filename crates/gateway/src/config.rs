//! Gateway and tenant configuration.

use crate::telemetry::TelemetryConfig;
use glimmer_core::host::GlimmerDescriptor;
use sgx_sim::PlatformConfig;
use std::time::Duration;

/// Limits a tenant buys when it enrolls with the gateway.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Most concurrent device sessions (pending + established).
    pub max_sessions: usize,
    /// Most requests queued across the tenant's pool slots at once.
    pub max_queued: usize,
    /// Endorsement budget: total endorsements the tenant will accept from
    /// this gateway, or `None` for unlimited. Only *successful* endorsements
    /// consume it — a rejected (poisoned, out-of-range, maskless)
    /// contribution never does.
    pub endorsement_budget: Option<u64>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_sessions: 1024,
            max_queued: 4096,
            endorsement_budget: None,
        }
    }
}

/// One tenant of the gateway: a service whose vetted Glimmer the pool runs on
/// behalf of TEE-less devices.
#[derive(Clone)]
pub struct TenantConfig {
    /// Tenant key; by convention the service's application id.
    pub name: String,
    /// The tenant's published, vetted Glimmer build. Its measurement is what
    /// connecting devices verify through attestation, so two tenants can
    /// never share an enclave unless their descriptors are identical.
    pub descriptor: GlimmerDescriptor,
    /// Secret endorsement-signing key material, installed into every pool
    /// slot at provisioning time.
    pub service_key_secret: Vec<u8>,
    /// Admission-control limits for this tenant.
    pub quota: TenantQuota,
}

impl TenantConfig {
    /// Convenience constructor with default quotas.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        descriptor: GlimmerDescriptor,
        service_key_secret: Vec<u8>,
    ) -> Self {
        TenantConfig {
            name: name.into(),
            descriptor,
            service_key_secret,
            quota: TenantQuota::default(),
        }
    }
}

/// Gateway-wide construction parameters.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Pre-provisioned enclave slots per tenant (the pool width).
    pub slots_per_tenant: usize,
    /// Shard-per-core worker threads. Every pool slot is owned by exactly
    /// one shard (round-robin across tenants' slots), each shard drains its
    /// slots on its own thread, and shards share no mutable state.
    ///
    /// `1` (the default) is the deterministic single-shard mode: one worker
    /// drains every slot in tenant-name/slot order, exactly like the
    /// pre-runtime gateway, so experiment cycle counts stay reproducible.
    /// Values above the slot total waste nothing — surplus shards just own
    /// zero slots. `0` is treated as 1.
    pub shards: usize,
    /// Most items drained through one enclave in a single `PROCESS_BATCH`
    /// transition.
    pub max_batch: usize,
    /// Most requests queued on one slot before submits are rejected with
    /// backpressure.
    pub max_queue_depth: usize,
    /// Weight of one live session, in queued-request units, in the
    /// queue-depth-aware placement score `open_session` minimizes
    /// (`queue_depth + weight * active_sessions`). A bound-but-idle session
    /// predicts future queue depth, so it counts as this many queued
    /// requests when choosing the least-loaded slot; `0` places purely by
    /// instantaneous queue depth. With idle queues any weight `>= 1`
    /// reproduces the historical round-robin-by-session placement, which is
    /// what keeps the E11/E12 cycle metrics stable.
    pub placement_session_weight: usize,
    /// Pin each shard worker thread to a CPU core (`shard_id` modulo the
    /// detected core count) via [`crate::affinity::pin_to_core`]. Off by
    /// default: pinning trades scheduler freedom for lower run-to-run
    /// variance in drain latency, which only pays when the host actually
    /// dedicates cores to the gateway. A no-op (every worker keeps the
    /// default mask) on non-Linux targets or when the kernel rejects the
    /// mask; [`crate::gateway::Gateway::pinned_workers`] reports how many
    /// workers the kernel accepted.
    pub pin_cores: bool,
    /// Platform parameters for every pool slot.
    pub platform_config: PlatformConfig,
    /// Observability knobs: metrics, trace sampling, and the rejection
    /// journal (see [`crate::telemetry`]). Enabled by default — the
    /// recording paths are allocation-free and add only relaxed atomics to
    /// the hot path (the E16 experiment holds the bar at under 5%
    /// overhead).
    pub telemetry: TelemetryConfig,
    /// Age at which a still-pending handshake counts as abandoned for
    /// [`Gateway::evict_stale_pending`](crate::Gateway::evict_stale_pending)
    /// and for the front door's periodic eviction sweep.
    pub stale_pending_after: Duration,
    /// How often the socket front door sweeps
    /// [`Gateway::evict_stale_pending`](crate::Gateway::evict_stale_pending)
    /// on its timer wheel. `None` disables the sweep (an operator then owns
    /// eviction); defaults on, because an unswept network gateway leaks a
    /// session-quota unit for every handshake a device abandons. Drivers
    /// without the front door (in-process experiments, tests) are
    /// unaffected — the sweeper task only exists inside `net::serve`.
    pub evict_stale_period: Option<Duration>,
    /// Socket front-door parameters (framing limits, idle deadline, drain
    /// cadence). Only read by [`net::serve`](crate::net::serve); a gateway
    /// driven purely in-process never touches them.
    pub net: NetConfig,
    /// Live-rebalancing knobs for the [`crate::rebalance::Rebalancer`].
    /// Only read by an operator-driven `Rebalancer` loop; the gateway
    /// itself never migrates a slot unprompted.
    pub rebalance: RebalanceConfig,
}

/// Knobs for the [`crate::rebalance::Rebalancer`]'s migration planner.
#[derive(Debug, Clone)]
pub struct RebalanceConfig {
    /// Smallest queued-work gap between the most- and least-loaded shards
    /// that justifies moving a slot. Below this the fleet counts as
    /// balanced and [`crate::rebalance::plan_rebalance`] returns no plan —
    /// this is the hysteresis band that keeps a near-balanced fleet from
    /// oscillating slots back and forth.
    pub min_imbalance: u64,
    /// Planner ticks a [`crate::rebalance::Rebalancer`] sits out after
    /// executing a migration, letting the moved queue drain before the
    /// next imbalance reading is trusted. `0` re-plans every tick.
    pub cooldown_ticks: u32,
    /// Most migrations one [`crate::rebalance::Rebalancer::tick`] will
    /// execute. One (the default) is the conservative choice: each
    /// migration changes the load picture the next plan should see.
    pub max_moves_per_tick: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            min_imbalance: 64,
            cooldown_ticks: 2,
            max_moves_per_tick: 1,
        }
    }
}

/// Socket front-door parameters (see [`crate::net`]).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address [`net::serve`](crate::net::serve) binds its listener to.
    /// Defaults to an ephemeral loopback port (`127.0.0.1:0`); read the
    /// bound address back from
    /// [`ServerHandle::addr`](crate::net::ServerHandle::addr).
    pub bind_addr: String,
    /// Largest accepted frame (length-prefix bound) in bytes. A peer
    /// announcing more is cut off with a typed error before any allocation
    /// of that size happens.
    pub max_frame_len: usize,
    /// Close a connection that has been silent (no complete frame in either
    /// direction) this long, measured on the executor clock. `None` trusts
    /// clients to hang up; the default does not.
    pub idle_timeout: Option<Duration>,
    /// Cadence of the server's periodic reply drain. `None` drains only on
    /// explicit client `Drain` requests — the deterministic mode E19's
    /// bit-identical comparison uses.
    pub drain_interval: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bind_addr: "127.0.0.1:0".to_string(),
            max_frame_len: 1 << 20,
            idle_timeout: Some(Duration::from_secs(60)),
            drain_interval: Some(Duration::from_millis(1)),
        }
    }
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            slots_per_tenant: 4,
            shards: 1,
            max_batch: 256,
            max_queue_depth: 1024,
            placement_session_weight: 4,
            pin_cores: false,
            platform_config: PlatformConfig::default(),
            telemetry: TelemetryConfig::default(),
            stale_pending_after: Duration::from_secs(30),
            evict_stale_period: Some(Duration::from_secs(5)),
            net: NetConfig::default(),
            rebalance: RebalanceConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_serving_friendly() {
        let config = GatewayConfig::default();
        assert!(config.slots_per_tenant >= 1);
        // The default shard count is the deterministic single-shard mode.
        assert_eq!(config.shards, 1);
        assert!(config.max_batch >= 1);
        assert!(config.max_queue_depth >= config.max_batch);
        // Weight >= 1 keeps idle-queue placement identical to the
        // pre-placement-policy round-robin-by-session behaviour.
        assert!(config.placement_session_weight >= 1);
        // Core pinning is opt-in: default serving must not fight the
        // scheduler on shared hosts.
        assert!(!config.pin_cores);
        // Telemetry ships on, with sampled (not exhaustive) tracing.
        assert!(config.telemetry.enabled);
        assert!(config.telemetry.trace_sample_interval > 1);
        // The front door evicts abandoned handshakes by default — a
        // network gateway that never sweeps leaks quota forever — and the
        // sweep period must lap the staleness age, or every sweep would be
        // a no-op.
        let period = config.evict_stale_period.expect("eviction defaults on");
        assert!(period < config.stale_pending_after);
        // Idle connections are dropped by default, and the frame bound
        // comfortably fits a max_batch submit group.
        assert!(config.net.idle_timeout.is_some());
        assert!(config.net.max_frame_len >= 64 * 1024);
        assert!(config.net.drain_interval.is_some());
        // Rebalancing needs a real hysteresis band (a zero threshold would
        // migrate on every one-request ripple) and moves conservatively.
        assert!(config.rebalance.min_imbalance > 0);
        assert!(config.rebalance.cooldown_ticks >= 1);
        assert_eq!(config.rebalance.max_moves_per_tick, 1);

        let quota = TenantQuota::default();
        assert!(quota.endorsement_budget.is_none());
        assert!(quota.max_sessions > 0);

        let tenant = TenantConfig::new(
            "iot-telemetry.example",
            GlimmerDescriptor::iot_default(Vec::new()),
            vec![1, 2, 3],
        );
        assert_eq!(tenant.name, "iot-telemetry.example");
        assert_eq!(tenant.quota.max_queued, 4096);
    }
}
