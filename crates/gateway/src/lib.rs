//! Glimmer Gateway: a sharded, multi-tenant enclave-pool server for
//! glimmer-as-a-service traffic.
//!
//! Section 4.2 of the paper envisions neutral third parties running Glimmers
//! on behalf of TEE-less IoT devices. The single-device
//! [`RemoteGlimmerHost`](glimmer_core::remote::RemoteGlimmerHost) pays the
//! full enclave cost — image build and measurement, attestation
//! provisioning, key installation — for every device it serves, which cannot
//! scale to "glimmer-as-a-service" traffic. This crate is the serving
//! architecture for that traffic:
//!
//! * **Enclave pool** ([`pool`]) — per tenant, a fixed set of
//!   pre-provisioned Glimmer enclaves on independent simulated platforms.
//!   Build + attestation + key provisioning are paid once per slot at
//!   start-up and amortized over every request the slot ever serves.
//! * **Shard-per-core runtime** ([`runtime`](crate::gateway::Gateway)) —
//!   pool slots are distributed round-robin over `GatewayConfig::shards`
//!   worker threads that share no mutable state; the [`Gateway`] handle is
//!   `Send + Sync` with a concurrent `&self` API, and `shards: 1` is a
//!   deterministic mode that reproduces the serial drain order exactly.
//! * **Session table** ([`session`]) — device sessions are pinned to pool
//!   slots with least-loaded sharding; session ids are the routing key and a
//!   tenant-isolation boundary.
//! * **Request batching** ([`gateway`]) — each slot queues encrypted
//!   `ProcessRequest`s and drains them through a single `PROCESS_BATCH`
//!   ECALL per round, so the enclave-transition cost is paid per batch, not
//!   per contribution.
//! * **Admission control** ([`config`], [`error`]) — per-tenant session
//!   quotas, queued-request quotas, endorsement budgets (only successful
//!   endorsements consume them), and per-slot queue-depth backpressure, all
//!   rejected with typed [`GatewayError`]s.
//! * **Stats** ([`stats`]) — per-tenant endorsement/rejection/throttle
//!   counters and per-slot batch sizes, enclave cycles, and wall-clock drain
//!   latency.
//! * **Telemetry** ([`telemetry`]) — a dependency-free observability layer
//!   over the host-side pipeline: lock-free log2 latency histograms
//!   (queue wait, per-ECALL, checkpoint/restore, executor poll/wake),
//!   typed admission accept/reject counters, live per-shard queue-depth
//!   gauges, sampled per-request traces driven by the injected [`Clock`]
//!   (deterministic under [`ManualClock`]), and a bounded rejection
//!   journal — exported as a [`TelemetrySnapshot`] with Prometheus-style
//!   text and JSON renderings. No payload data ever enters telemetry.
//! * **Live rebalancing** ([`rebalance`]) — online slot migration between
//!   shards: a per-slot quiesce (one slot pauses, the fleet keeps serving),
//!   a sealed export at the handoff point, transfer of the live slot —
//!   enclave handle, queued work, gauges — to the least-loaded shard, and
//!   an atomic routing retarget with no lost window. A deterministic
//!   planner plus [`Rebalancer`] watch per-shard queue depths and migrate
//!   when imbalance crosses [`RebalanceConfig`]'s hysteresis band, so a
//!   hot shard is a transient condition, not a permanent one.
//! * **Checkpoint/restore** ([`checkpoint`]) — a crash-safe snapshot of the
//!   whole serving state: per-slot enclave state sealed *by the enclaves*
//!   (MrEnclave policy, snapshot header as AAD), the established-session
//!   table, and quota counters, in a CRC-guarded versioned envelope.
//!   [`Gateway::restore`] resumes serving after a crash with one
//!   `IMPORT_STATE` ECALL per slot — no re-provisioning, no device
//!   re-handshakes — and every tampered, spliced, or mismatched snapshot
//!   fails closed with a typed error, proven by a deterministic
//!   crash-fault-injection matrix over every [`CrashPoint`].
//!
//! The gateway is untrusted, exactly like the paper's remote host: devices
//! authenticate the pooled Glimmers through remote attestation, traffic is
//! end-to-end encrypted between device and enclave, blinding masks can be
//! delivered sealed under the tenant's own attested channel to each slot
//! ([`Gateway::tenant_channel_offer`] + [`Gateway::install_mask_encrypted`];
//! the plaintext [`Gateway::install_mask`] is for tenants operating their
//! own gateway), and the only per-request fact the gateway learns is the
//! public one-bit endorsed/failed outcome it needs for quota accounting.

// `deny`, not `forbid`: the async front-end's hand-rolled `RawWaker` vtable
// ([`frontend::executor`]), the raw `sched_setaffinity` syscall behind core
// pinning ([`affinity`]), and the raw `epoll`/`eventfd` syscalls behind the
// socket front door's reactor ([`net`]) are necessarily `unsafe` and carry
// scoped `allow`s with their invariants documented; everything else stays
// safe.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod affinity;
pub mod checkpoint;
pub mod clock;
pub mod config;
pub mod error;
pub mod frontend;
pub mod gateway;
pub mod net;
pub mod pool;
pub mod rebalance;
pub(crate) mod runtime;
pub mod session;
pub mod stats;
pub mod telemetry;

pub use affinity::{pin_to_core, pinning_supported};
pub use checkpoint::{
    ChainBase, CrashAt, CrashHooks, CrashPoint, DeltaSlot, DeltaTenant, GatewayDelta,
    GatewaySnapshot, NoCrash, SessionRecord, SlotSnapshot, SnapshotChain, TenantSnapshot,
    GATEWAY_DELTA_KIND, GATEWAY_SNAPSHOT_KIND,
};
pub use clock::{Clock, ManualClock, SystemClock};
pub use config::{GatewayConfig, NetConfig, RebalanceConfig, TenantConfig, TenantQuota};
pub use error::{GatewayError, QuotaResource, Result};
pub use frontend::{AsyncGateway, SessionExecutor, WaitGroup};
pub use gateway::{Gateway, GatewayResponse};
pub use net::{GatewayClient, NetError, ServerHandle};
pub use pool::{PoolSlot, TenantPool};
pub use rebalance::{plan_rebalance, MigrationPlan, MigrationReport, Rebalancer, SlotLoad};
pub use runtime::BarrierOp;
pub use session::{SessionEntry, SessionState, SessionTable};
pub use stats::{GatewayStats, SlotStats, SlotStatsRow, TenantStats};
pub use telemetry::{
    AdmitReason, Histogram, HistogramSnapshot, Telemetry, TelemetryConfig, TelemetryEvent,
    TelemetrySnapshot, TraceSpan, TraceStage,
};
