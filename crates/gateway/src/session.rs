//! The session table: device sessions mapped onto pool slots.

use crate::error::{GatewayError, Result};
use std::collections::HashMap;

/// Lifecycle of one device session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Handshake offer produced; waiting for the device's accept.
    Pending,
    /// Channel established; the session can submit requests.
    Established,
}

/// One row of the session table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// The owning tenant's name.
    pub tenant: String,
    /// The pool slot (shard) the session is pinned to.
    pub slot: usize,
    /// Lifecycle state.
    pub state: SessionState,
    /// When the session was opened (drives stale-pending eviction).
    pub opened_at: std::time::Instant,
}

/// Maps gateway-issued session ids to (tenant, slot) and tracks lifecycle.
///
/// Session ids are issued from a single counter across all tenants, so an id
/// can never be valid under two tenants — routing by session id is therefore
/// also a tenant-isolation boundary (see the `isolation` integration test).
#[derive(Default)]
pub struct SessionTable {
    sessions: HashMap<u64, SessionEntry>,
    next_id: u64,
}

impl SessionTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SessionTable {
            sessions: HashMap::new(),
            next_id: 1,
        }
    }

    /// Number of live sessions (pending + established).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Allocates a fresh session id pinned to `(tenant, slot)`.
    pub fn open(&mut self, tenant: &str, slot: usize) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                tenant: tenant.to_string(),
                slot,
                state: SessionState::Pending,
                opened_at: std::time::Instant::now(),
            },
        );
        id
    }

    /// Looks up a session.
    pub fn get(&self, id: u64) -> Result<&SessionEntry> {
        self.sessions
            .get(&id)
            .ok_or(GatewayError::UnknownSession(id))
    }

    /// Marks a pending session established.
    pub fn establish(&mut self, id: u64) -> Result<&SessionEntry> {
        let entry = self
            .sessions
            .get_mut(&id)
            .ok_or(GatewayError::UnknownSession(id))?;
        if entry.state == SessionState::Established {
            return Err(GatewayError::SessionAlreadyEstablished(id));
        }
        entry.state = SessionState::Established;
        Ok(entry)
    }

    /// Removes a session, returning its entry.
    pub fn close(&mut self, id: u64) -> Result<SessionEntry> {
        self.sessions
            .remove(&id)
            .ok_or(GatewayError::UnknownSession(id))
    }

    /// Iterates over `(id, entry)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &SessionEntry)> {
        self.sessions.iter()
    }

    /// Ids of pending sessions opened longer than `older_than` ago.
    #[must_use]
    pub fn stale_pending(&self, older_than: std::time::Duration) -> Vec<u64> {
        self.sessions
            .iter()
            .filter(|(_, e)| {
                e.state == SessionState::Pending && e.opened_at.elapsed() >= older_than
            })
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_errors() {
        let mut table = SessionTable::new();
        assert!(table.is_empty());
        let a = table.open("iot", 0);
        let b = table.open("keyboard", 1);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(a).unwrap().tenant, "iot");
        assert_eq!(table.get(b).unwrap().slot, 1);
        assert_eq!(table.get(a).unwrap().state, SessionState::Pending);

        table.establish(a).unwrap();
        assert_eq!(table.get(a).unwrap().state, SessionState::Established);
        assert_eq!(
            table.establish(a),
            Err(GatewayError::SessionAlreadyEstablished(a))
        );

        assert_eq!(
            table.get(999).err(),
            Some(GatewayError::UnknownSession(999))
        );
        let closed = table.close(a).unwrap();
        assert_eq!(closed.tenant, "iot");
        assert_eq!(table.close(a), Err(GatewayError::UnknownSession(a)));
        assert_eq!(table.iter().count(), 1);
    }
}
