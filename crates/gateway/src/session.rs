//! The session table: device sessions mapped onto pool slots.

use crate::error::{GatewayError, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifecycle of one device session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Handshake offer produced; waiting for the device's accept.
    Pending,
    /// Channel established; the session can submit requests.
    Established,
}

/// One row of the session table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionEntry {
    /// The owning tenant's interned name.
    pub tenant: Arc<str>,
    /// Index of the owning tenant in the gateway's (name-ordered) tenant
    /// list — the routing key the runtime uses.
    pub tenant_idx: usize,
    /// The pool slot (within the tenant's pool) the session is pinned to.
    pub slot: usize,
    /// Lifecycle state.
    pub state: SessionState,
    /// Clock reading when the session was opened, in nanoseconds (drives
    /// stale-pending eviction; see [`crate::clock::Clock`]).
    pub opened_at_nanos: u64,
}

/// Maps gateway-issued session ids to (tenant, slot) and tracks lifecycle.
///
/// Session ids are issued from a single counter across all tenants, so an id
/// can never be valid under two tenants — routing by session id is therefore
/// also a tenant-isolation boundary (see the `isolation` integration test).
///
/// The table is pure state: it never reads the clock itself. Callers pass
/// the current clock reading in, which is what makes eviction deterministic
/// under test.
#[derive(Default)]
pub struct SessionTable {
    sessions: HashMap<u64, SessionEntry>,
    next_id: u64,
}

impl SessionTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        SessionTable {
            sessions: HashMap::new(),
            next_id: 1,
        }
    }

    /// Rebuilds a table from checkpointed entries, resuming id issuance at
    /// `next_id` so a restored gateway never reissues an id a live device
    /// still holds.
    #[must_use]
    pub fn restore(entries: impl IntoIterator<Item = (u64, SessionEntry)>, next_id: u64) -> Self {
        SessionTable {
            sessions: entries.into_iter().collect(),
            next_id,
        }
    }

    /// The next session id this table would issue (persisted by checkpoints).
    #[must_use]
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Number of live sessions (pending + established).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no sessions are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Allocates a fresh session id pinned to `(tenant, slot)`, stamped with
    /// the caller's clock reading.
    pub fn open(
        &mut self,
        tenant: Arc<str>,
        tenant_idx: usize,
        slot: usize,
        now_nanos: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.sessions.insert(
            id,
            SessionEntry {
                tenant,
                tenant_idx,
                slot,
                state: SessionState::Pending,
                opened_at_nanos: now_nanos,
            },
        );
        id
    }

    /// Looks up a session.
    pub fn get(&self, id: u64) -> Result<&SessionEntry> {
        self.sessions
            .get(&id)
            .ok_or(GatewayError::UnknownSession(id))
    }

    /// Marks a pending session established.
    pub fn establish(&mut self, id: u64) -> Result<&SessionEntry> {
        let entry = self
            .sessions
            .get_mut(&id)
            .ok_or(GatewayError::UnknownSession(id))?;
        if entry.state == SessionState::Established {
            return Err(GatewayError::SessionAlreadyEstablished(id));
        }
        entry.state = SessionState::Established;
        Ok(entry)
    }

    /// Removes a session, returning its entry.
    pub fn close(&mut self, id: u64) -> Result<SessionEntry> {
        self.sessions
            .remove(&id)
            .ok_or(GatewayError::UnknownSession(id))
    }

    /// Iterates over `(id, entry)` pairs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &SessionEntry)> {
        self.sessions.iter()
    }

    /// Ids of pending sessions opened at least `older_than` before
    /// `now_nanos` (per the same clock their `opened_at_nanos` came from).
    #[must_use]
    pub fn stale_pending(&self, older_than: std::time::Duration, now_nanos: u64) -> Vec<u64> {
        let older_than = older_than.as_nanos() as u64;
        self.sessions
            .iter()
            .filter(|(_, e)| {
                e.state == SessionState::Pending
                    && now_nanos.saturating_sub(e.opened_at_nanos) >= older_than
            })
            .map(|(id, _)| *id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn name(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn lifecycle_and_errors() {
        let mut table = SessionTable::new();
        assert!(table.is_empty());
        let a = table.open(name("iot"), 0, 0, 0);
        let b = table.open(name("keyboard"), 1, 1, 0);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(&*table.get(a).unwrap().tenant, "iot");
        assert_eq!(table.get(b).unwrap().slot, 1);
        assert_eq!(table.get(b).unwrap().tenant_idx, 1);
        assert_eq!(table.get(a).unwrap().state, SessionState::Pending);

        table.establish(a).unwrap();
        assert_eq!(table.get(a).unwrap().state, SessionState::Established);
        assert_eq!(
            table.establish(a).err(),
            Some(GatewayError::SessionAlreadyEstablished(a))
        );

        assert_eq!(
            table.get(999).err(),
            Some(GatewayError::UnknownSession(999))
        );
        let closed = table.close(a).unwrap();
        assert_eq!(&*closed.tenant, "iot");
        assert_eq!(table.close(a).err(), Some(GatewayError::UnknownSession(a)));
        assert_eq!(table.iter().count(), 1);
    }

    #[test]
    fn stale_pending_is_driven_by_the_injected_now() {
        let mut table = SessionTable::new();
        let early = table.open(name("iot"), 0, 0, 0);
        let late = table.open(name("iot"), 0, 0, 1_000);
        let established = table.open(name("iot"), 0, 0, 0);
        table.establish(established).unwrap();

        // At now=0 nothing has aged (0 - 0 >= 0 holds only for zero cutoff).
        assert!(table
            .stale_pending(Duration::from_nanos(500), 0)
            .iter()
            .all(|id| *id == early));
        // At now=600, only the early pending session crosses the cutoff.
        assert_eq!(
            table.stale_pending(Duration::from_nanos(500), 600),
            vec![early]
        );
        // At now=2000 both pending sessions are stale; the established one
        // never is.
        let mut stale = table.stale_pending(Duration::from_nanos(500), 2_000);
        stale.sort_unstable();
        assert_eq!(stale, vec![early, late]);
        // A zero cutoff sweeps every pending session regardless of age.
        assert_eq!(table.stale_pending(Duration::ZERO, 0).len(), 2);
    }
}
