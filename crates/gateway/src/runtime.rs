//! The shard-per-core runtime: shared-nothing worker threads that own the
//! enclave slots.
//!
//! # Ownership model
//!
//! The gateway's construction thread provisions every tenant's pool slots,
//! then distributes them **round-robin** over `GatewayConfig::shards` worker
//! threads. From that moment on, each slot — its enclave, its request
//! queue, its drain counters — is touched by exactly one thread, ever.
//! There are no locks on the serving path; the only cross-thread state is:
//!
//! * per-shard mpsc **command queues** (the only way work reaches a shard),
//! * **atomic gauges** (per-slot session/queue depth) and **atomic tenant
//!   counters**, which admission control reads and both sides update, and
//! * the session table (a mutex the routing layer holds for microseconds;
//!   workers never take it).
//!
//! # Ordering guarantees
//!
//! A shard's command queue is FIFO, so everything the routing layer sent
//! before a `Drain` command is in the slot queues by the time the drain
//! runs: a single-threaded caller that submits then drains always gets its
//! items back, shard count notwithstanding. Replies to a gateway-wide drain
//! are aggregated in shard order, and each shard walks its slots in global
//! (tenant-name, slot-id) order — with `shards: 1` this reproduces the
//! pre-runtime gateway's serial drain order exactly, which is what keeps
//! E11's deterministic cycle metric stable.

use crate::clock::Clock;
use crate::config::{GatewayConfig, TenantQuota};
use crate::error::{GatewayError, Result};
use crate::frontend::completion::Completer;
use crate::gateway::GatewayResponse;
use crate::pool::{DrainScratch, PoolSlot};
use crate::session::SessionTable;
use crate::stats::{SlotStatsRow, TenantStats};
use crate::telemetry::{Telemetry, TraceStage};
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_core::enclave_app::MaskDelivery;
use glimmer_core::protocol::{BatchItem, BatchOutcome};
use sgx_sim::Measurement;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};

/// How a shard command answers its caller: over a blocking one-shot channel
/// (the classic `recv`-parked path) or into a waker-notified completion cell
/// (the async front-end's path). The worker side is identical either way —
/// it calls [`Reply::deliver`] once and moves on — so every command type
/// supports both front-ends with one code path.
pub(crate) enum Reply<T> {
    /// Blocking caller: parked in `Receiver::recv`.
    Sync(Sender<T>),
    /// Async caller: a task awaiting a [`Completion`](crate::frontend::completion::Completion).
    Async(Completer<T>),
}

impl<T> Reply<T> {
    /// Delivers the reply. Best-effort on the sync path (a caller that gave
    /// up dropped its receiver); always wakes the awaiting task on the async
    /// path.
    pub(crate) fn deliver(self, value: T) {
        match self {
            Reply::Sync(tx) => {
                let _ = tx.send(value);
            }
            Reply::Async(completer) => completer.complete(value),
        }
    }
}

/// Routing-layer gauges for one slot. The routing side increments them as it
/// admits work; the owning worker decrements them as work leaves its queue.
#[derive(Default)]
pub(crate) struct SlotGauges {
    pub(crate) active_sessions: AtomicUsize,
    pub(crate) queue_depth: AtomicUsize,
    /// Mirror of the slot's host-side dirty-epoch
    /// ([`PoolSlot::dirty_epoch`]), written only by the owning worker.
    /// The delta-checkpoint path reads it to decide — without pausing the
    /// worker — whether a slot mutated since the base snapshot.
    pub(crate) dirty_epoch: AtomicU64,
    /// Who currently holds this *slot's* quiesce claim (encoded
    /// [`BarrierOp`], or [`BARRIER_IDLE`]). Slot-scoped operations — a
    /// streamed/delta per-slot export barrier, a live migration — claim the
    /// slot instead of the whole fleet, so they can overlap on different
    /// slots; two of them contending on one slot would interleave per-slot
    /// barriers on the same worker (or move the slot out from under an
    /// in-flight export), so the loser of the CAS gets a typed
    /// [`GatewayError::BarrierConflict`].
    pub(crate) claim: AtomicU8,
}

/// Atomic per-tenant counters; snapshotted into [`TenantStats`] on read.
#[derive(Default)]
pub(crate) struct TenantCounters {
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) sessions_closed: AtomicU64,
    pub(crate) submitted: AtomicU64,
    pub(crate) endorsed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    pub(crate) throttled: AtomicU64,
    pub(crate) dropped: AtomicU64,
}

impl TenantCounters {
    /// Rebuilds counters from a checkpointed snapshot (the restore path);
    /// in particular `endorsed` must survive restarts or endorsement
    /// budgets would reset on every crash.
    pub(crate) fn from_stats(stats: &TenantStats) -> Self {
        TenantCounters {
            sessions_opened: AtomicU64::new(stats.sessions_opened),
            sessions_closed: AtomicU64::new(stats.sessions_closed),
            submitted: AtomicU64::new(stats.submitted),
            endorsed: AtomicU64::new(stats.endorsed),
            rejected: AtomicU64::new(stats.rejected),
            failed: AtomicU64::new(stats.failed),
            throttled: AtomicU64::new(stats.throttled),
            dropped: AtomicU64::new(stats.dropped),
        }
    }

    pub(crate) fn snapshot(&self) -> TenantStats {
        TenantStats {
            sessions_opened: self.sessions_opened.load(Ordering::SeqCst),
            sessions_closed: self.sessions_closed.load(Ordering::SeqCst),
            submitted: self.submitted.load(Ordering::SeqCst),
            endorsed: self.endorsed.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            throttled: self.throttled.load(Ordering::SeqCst),
            dropped: self.dropped.load(Ordering::SeqCst),
        }
    }
}

/// Where one slot lives — which shard owns it and at which worker-local
/// index — plus the shared gauges. The location is **dynamic**: migration
/// retargets it with one atomic store, and every routing site reads the
/// `(shard, worker_idx)` pair in one load, so a router can never observe a
/// torn half-updated pair. A *stale* (but consistent) pair is still safe:
/// worker-local indices are never reused, so the pair addresses either the
/// live slot or its tombstone, and tombstoned commands are forwarded to the
/// location current at serve time.
pub(crate) struct SlotInfo {
    /// Packed `(shard << 32) | worker_idx`.
    location: AtomicU64,
    pub(crate) gauges: Arc<SlotGauges>,
}

impl SlotInfo {
    pub(crate) fn new(shard: usize, worker_idx: usize, gauges: Arc<SlotGauges>) -> Self {
        SlotInfo {
            location: AtomicU64::new(Self::pack(shard, worker_idx)),
            gauges,
        }
    }

    fn pack(shard: usize, worker_idx: usize) -> u64 {
        debug_assert!(shard <= u32::MAX as usize && worker_idx <= u32::MAX as usize);
        ((shard as u64) << 32) | worker_idx as u64
    }

    /// The slot's current `(shard, worker-local index)`, as one consistent
    /// pair.
    pub(crate) fn location(&self) -> (usize, usize) {
        let packed = self.location.load(Ordering::SeqCst);
        ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize)
    }

    /// Commits a migration's new home. The coordinator stores this while the
    /// source worker is still paused at its handoff barrier, so by the time
    /// any stray command reaches the tombstone, the forward target is
    /// already the new owner.
    pub(crate) fn set_location(&self, shard: usize, worker_idx: usize) {
        self.location
            .store(Self::pack(shard, worker_idx), Ordering::SeqCst);
    }

    /// Convenience for read paths that only need the owning shard.
    pub(crate) fn shard(&self) -> usize {
        self.location().0
    }
}

/// Immutable tenant metadata plus its shared counters.
pub(crate) struct TenantMeta {
    pub(crate) name: Arc<str>,
    pub(crate) quota: TenantQuota,
    pub(crate) measurement: Measurement,
    pub(crate) counters: TenantCounters,
    /// Live sessions (pending + established) — the session-quota gauge.
    pub(crate) live_sessions: AtomicUsize,
    /// Requests queued across the tenant's slots — the queued-quota gauge.
    pub(crate) queued: AtomicUsize,
    pub(crate) slots: Vec<SlotInfo>,
}

/// State shared between the routing layer and every shard worker.
pub(crate) struct Shared {
    pub(crate) config: GatewayConfig,
    pub(crate) clock: Arc<dyn Clock>,
    /// Tenants in deterministic (name) order; `tenant_idx` indexes here.
    pub(crate) tenants: Vec<TenantMeta>,
    pub(crate) table: Mutex<SessionTable>,
    /// Commands pushed onto shard queues by the submit paths (one per
    /// `Submit`, one per `SubmitMany`) — the E13 batching metric.
    pub(crate) submit_commands: AtomicU64,
    /// Checkpoint sequence counter: each checkpoint takes the next epoch,
    /// which is folded into the snapshot header every sealed slot export is
    /// AAD-bound to. Restored gateways resume from the snapshot's epoch.
    pub(crate) checkpoint_epoch: AtomicU64,
    /// Who currently holds the whole-gateway quiesce barrier (encoded
    /// [`BarrierOp`], or [`BARRIER_IDLE`]). Checkpoint and shutdown both
    /// pause every shard worker; letting two of them interleave their
    /// two-phase barriers deadlocks the workers (each waits for the other's
    /// pause to finish), so the loser of this CAS gets a typed
    /// [`GatewayError::BarrierConflict`] instead.
    pub(crate) barrier: AtomicU8,
    /// The observability hub ([`crate::telemetry`]): admission counters on
    /// the routing side, per-shard histogram registries written only by the
    /// owning worker, the sampled trace ring, and the rejection journal.
    pub(crate) telemetry: Arc<Telemetry>,
    /// Workers the kernel accepted a `pin_cores` affinity mask for. Each
    /// worker pins (or fails to) before its first command receive, so any
    /// synchronous round-trip through a shard observes the final count.
    pub(crate) pinned_workers: AtomicUsize,
    /// Serializes migration coordinators. Two concurrent migrations in
    /// opposite directions would deadlock (each source worker pauses at its
    /// handoff barrier while the other migration's import waits on it), so
    /// the second coordinator queues here instead. Held only for the
    /// microseconds one slot handoff takes; never taken by workers.
    pub(crate) migration: Mutex<()>,
}

/// [`Shared::barrier`] (and [`SlotGauges::claim`]) value when no quiescing
/// operation holds the claim.
pub(crate) const BARRIER_IDLE: u8 = 0;

/// An operation that quiesces shard workers: the whole fleet (checkpoint,
/// shutdown — claimed on the gateway-wide barrier word) or one slot at a
/// time (streamed/delta exports, rebalancing — claimed on the slot's own
/// claim byte). Two claims can never overlap on the same scope; see
/// [`GatewayError::BarrierConflict`](crate::GatewayError::BarrierConflict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierOp {
    /// [`Gateway::checkpoint`](crate::Gateway::checkpoint) is pausing the
    /// workers for a consistent capture (the streamed and delta variants
    /// hold the same fleet claim, plus a per-slot claim around each export).
    Checkpoint,
    /// [`Gateway::shutdown`](crate::Gateway::shutdown) is draining in-flight
    /// work before stopping the workers. Terminal: once entered, the barrier
    /// is never released.
    Shutdown,
    /// [`Gateway::migrate_slot`](crate::Gateway::migrate_slot) is moving one
    /// slot to another shard; the claim is slot-scoped, so serving and
    /// migrations of other slots continue.
    Rebalance,
}

impl BarrierOp {
    fn encode(self) -> u8 {
        match self {
            BarrierOp::Checkpoint => 1,
            BarrierOp::Shutdown => 2,
            BarrierOp::Rebalance => 3,
        }
    }

    pub(crate) fn decode(value: u8) -> Option<Self> {
        match value {
            1 => Some(BarrierOp::Checkpoint),
            2 => Some(BarrierOp::Shutdown),
            3 => Some(BarrierOp::Rebalance),
            _ => None,
        }
    }
}

impl core::fmt::Display for BarrierOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BarrierOp::Checkpoint => write!(f, "checkpoint"),
            BarrierOp::Shutdown => write!(f, "shutdown"),
            BarrierOp::Rebalance => write!(f, "rebalance"),
        }
    }
}

/// Holds the quiesce barrier for one [`BarrierOp::Checkpoint`]; releasing is
/// automatic (including on error paths), which is what guarantees a failed
/// checkpoint never wedges later checkpoints or shutdown. Shutdown does not
/// use a guard: its claim is terminal by design.
pub(crate) struct BarrierGuard<'a> {
    shared: &'a Shared,
}

impl<'a> BarrierGuard<'a> {
    /// Claims the barrier for `requested`, failing typed when another
    /// whole-gateway operation already holds it.
    pub(crate) fn acquire(shared: &'a Shared, requested: BarrierOp) -> Result<Self> {
        match shared.barrier.compare_exchange(
            BARRIER_IDLE,
            requested.encode(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(BarrierGuard { shared }),
            Err(current) => Err(GatewayError::BarrierConflict {
                in_progress: BarrierOp::decode(current)
                    .expect("non-idle barrier always holds an encoded op"),
                requested,
            }),
        }
    }

    /// Makes the claim permanent (the shutdown path): the barrier is never
    /// released, so any later checkpoint attempt fails typed instead of
    /// trying to pause workers that are on their way down.
    pub(crate) fn persist(self) {
        std::mem::forget(self);
    }
}

impl Drop for BarrierGuard<'_> {
    fn drop(&mut self) {
        self.shared.barrier.store(BARRIER_IDLE, Ordering::SeqCst);
    }
}

/// Holds one slot's claim byte ([`SlotGauges::claim`]) for a slot-scoped
/// quiesce: a streamed/delta per-slot export or a live migration. Release is
/// automatic (including on every error path), mirroring [`BarrierGuard`].
/// Claims compose with the fleet barrier in one direction each way: a fleet
/// operation that pauses *every* worker (full checkpoint) additionally
/// verifies no slot claim is live before pausing (a mid-flight migration
/// would deadlock against the pause), and a migration verifies the fleet
/// barrier is idle after claiming its slot — with seqcst ordering on both
/// sides, at least one of two racing claimants observes the other.
pub(crate) struct SlotClaim<'a> {
    gauges: &'a SlotGauges,
}

impl<'a> SlotClaim<'a> {
    /// Claims `gauges.claim` for `requested`, failing typed when another
    /// slot-scoped operation already holds this slot.
    pub(crate) fn acquire(gauges: &'a SlotGauges, requested: BarrierOp) -> Result<Self> {
        match gauges.claim.compare_exchange(
            BARRIER_IDLE,
            requested.encode(),
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => Ok(SlotClaim { gauges }),
            Err(current) => Err(GatewayError::BarrierConflict {
                in_progress: BarrierOp::decode(current)
                    .expect("non-idle slot claim always holds an encoded op"),
                requested,
            }),
        }
    }
}

impl Drop for SlotClaim<'_> {
    fn drop(&mut self) {
        self.gauges.claim.store(BARRIER_IDLE, Ordering::SeqCst);
    }
}

impl Shared {
    pub(crate) fn tenant_idx(&self, name: &str) -> Result<usize> {
        // `tenants` is sorted by name at construction; use it.
        self.tenants
            .binary_search_by(|t| (*t.name).cmp(name))
            .map_err(|_| GatewayError::UnknownTenant(name.to_string()))
    }
}

/// What a shard reports back from one drain sweep over its slots.
pub(crate) struct ShardDrainReport {
    pub(crate) responses: Vec<GatewayResponse>,
    pub(crate) first_error: Option<GatewayError>,
}

/// Commands a shard worker serves, in FIFO order. `slot` is always the
/// worker-local index ([`SlotInfo::worker_idx`]).
pub(crate) enum ShardCommand {
    OpenSession {
        slot: usize,
        session_id: u64,
        reply: Reply<Result<ChannelOffer>>,
    },
    AcceptSession {
        slot: usize,
        session_id: u64,
        accept: ChannelAccept,
        reply: Reply<Result<()>>,
    },
    CloseSession {
        slot: usize,
        session_id: u64,
        reply: Reply<Result<()>>,
    },
    InstallMask {
        slot: usize,
        session_id: u64,
        delivery: MaskDelivery,
        reply: Reply<Result<()>>,
    },
    TenantChannelOffer {
        slot: usize,
        reply: Reply<Result<ChannelOffer>>,
    },
    TenantChannelComplete {
        slot: usize,
        accept: ChannelAccept,
        reply: Reply<Result<()>>,
    },
    /// Fire-and-forget: gauges were already bumped by the routing layer.
    /// `trace` is the request's sampled trace tag (0 for the untraced
    /// majority; see [`crate::telemetry`]).
    Submit {
        slot: usize,
        item: BatchItem,
        trace: u64,
    },
    /// Fire-and-forget batched admission: one command carries every
    /// already-reserved item this shard receives from a `submit_many` /
    /// `submit_batch` call — channel and atomic traffic are paid per call,
    /// not per request. Items are `(worker-local slot, item, trace-tag)`
    /// triples in arrival order (one flat vector, so the whole command
    /// costs one allocation however many requests it carries); the worker
    /// fans them out to their slot queues, which preserves per-slot arrival
    /// order.
    SubmitMany {
        items: Vec<(usize, BatchItem, u64)>,
    },
    Drain {
        reply: Reply<ShardDrainReport>,
    },
    /// Two-phase checkpoint barrier. The worker signals `ready` (it is now
    /// paused — nothing on this shard mutates enclave or stats state), then
    /// blocks on `go`. `go = true` means the routing layer finished its
    /// consistent capture of the shared state: the worker exports every
    /// slot's sealed enclave state under `header` and replies. `go = false`
    /// (or a dropped sender — the checkpointing caller died) abandons the
    /// checkpoint; the worker resumes serving untouched.
    Checkpoint {
        header: Arc<Vec<u8>>,
        ready: Sender<()>,
        go: Receiver<bool>,
        reply: Sender<Result<Vec<SlotCheckpoint>>>,
    },
    /// Per-slot two-phase export barrier — the streamed-capture analogue of
    /// `Checkpoint`, pausing this worker only for one slot's export while
    /// every other shard keeps draining. Same protocol: the worker signals
    /// `ready` (paused), blocks on `go`, exports exactly `slot` under
    /// `header` (skipping the seal when the enclave's state epoch still
    /// equals `known_state_epoch`), replies, and resumes.
    ExportSlot {
        slot: usize,
        header: Arc<Vec<u8>>,
        known_state_epoch: Option<u64>,
        ready: Sender<()>,
        go: Receiver<bool>,
        reply: Sender<Result<SlotExport>>,
    },
    CollectStats {
        reply: Sender<Vec<SlotStatsRow>>,
    },
    /// Two-phase migration handoff barrier (the rebalance path). Same
    /// ready/go protocol as `ExportSlot`, then the worker seals the slot's
    /// state (the crash-recovery artifact), extracts the whole
    /// [`WorkerSlot`] — enclave handle, in-flight queue, gauges — into the
    /// reply, leaves a forwarding tombstone at the index, and **stays
    /// paused on `done`** until the coordinator either commits (`None`: the
    /// routing table already points at the new owner) or aborts
    /// (`Some(slot)`: reinstall at the old index and resume as if nothing
    /// happened). Staying paused is what closes the lost-window: while the
    /// slot is in neither worker's vector, nothing drains this shard's
    /// queue, so no command can reach the tombstone before the routing
    /// table is retargeted.
    MigrateOut {
        slot: usize,
        header: Arc<Vec<u8>>,
        ready: Sender<()>,
        go: Receiver<bool>,
        reply: Sender<Result<MigrationPackage>>,
        done: Receiver<Option<Box<WorkerSlot>>>,
    },
    /// Installs a migrated slot at the end of this worker's slot vector and
    /// replies with its new worker-local index. In-flight queue entries
    /// travel inside the slot and replay on this worker's next drain sweep.
    MigrateIn {
        worker: Box<WorkerSlot>,
        reply: Sender<usize>,
    },
    /// Synchronous no-op round-trip. The queue is FIFO, so a fence reply
    /// proves every command sent to this shard before the fence has been
    /// served — the migration coordinator fences the source shard after
    /// committing, flushing any stray commands through the tombstone's
    /// forward before the migration call returns.
    Fence {
        reply: Sender<()>,
    },
    Shutdown,
}

/// What a source worker hands the migration coordinator at a
/// [`ShardCommand::MigrateOut`] barrier.
pub(crate) struct MigrationPackage {
    /// The live slot itself: enclave handle, queued items, stats, gauges.
    pub(crate) worker: Box<WorkerSlot>,
    /// Crash-recovery artifact: the slot's enclave state sealed at the
    /// handoff point (AAD-bound to the migration header).
    pub(crate) sealed_state: Vec<u8>,
    /// The enclave's state epoch inside `sealed_state`.
    pub(crate) state_epoch: u64,
}

/// One slot's contribution to a checkpoint, as reported by its shard worker.
pub(crate) struct SlotCheckpoint {
    pub(crate) tenant_idx: usize,
    pub(crate) slot_id: usize,
    /// Enclave-sealed serving state (AAD-bound to the snapshot header).
    pub(crate) sealed_state: Vec<u8>,
    /// The slot's host-side dirty-epoch at export time.
    pub(crate) dirty_epoch: u64,
    /// The enclave's own state epoch inside the sealed export.
    pub(crate) state_epoch: u64,
    pub(crate) stats: crate::stats::SlotStats,
}

/// One slot's reply to an [`ShardCommand::ExportSlot`] barrier.
pub(crate) struct SlotExport {
    pub(crate) tenant_idx: usize,
    pub(crate) slot_id: usize,
    pub(crate) dirty_epoch: u64,
    pub(crate) state_epoch: u64,
    /// `None` when the enclave skipped the seal (state unchanged since the
    /// caller's `known_state_epoch`).
    pub(crate) sealed_state: Option<Vec<u8>>,
    pub(crate) stats: crate::stats::SlotStats,
}

/// One slot as owned by its shard worker.
pub(crate) struct WorkerSlot {
    pub(crate) tenant_idx: usize,
    pub(crate) slot: PoolSlot,
    pub(crate) gauges: Arc<SlotGauges>,
}

impl WorkerSlot {
    /// Advances the slot's dirty-epoch and mirrors it into the shared gauge
    /// the delta-checkpoint path reads. Called by the owning worker on
    /// every state-mutating command, *before* the command runs — bumping
    /// on failures too over-approximates dirtiness, which at worst costs
    /// one redundant export (never a silently skipped one).
    fn mark_dirty(&mut self) {
        self.slot.dirty_epoch += 1;
        self.gauges
            .dirty_epoch
            .store(self.slot.dirty_epoch, Ordering::SeqCst);
    }
}

/// One position in a worker's slot vector. Indices are append-only and
/// never reused: a slot that migrates away leaves a permanent tombstone, so
/// any routing pair captured before the move still addresses *something*
/// meaningful — either the live slot or a forwarder to its current home.
pub(crate) enum SlotEntry {
    /// The worker owns this slot. Boxed so a tombstone costs two words,
    /// not a whole [`WorkerSlot`] footprint — and so the slot moves
    /// between shards as a pointer, never a memcpy of queue + scratch.
    Occupied(Box<WorkerSlot>),
    /// The slot migrated away; commands landing here are re-sent to the
    /// location current at serve time ([`SlotInfo::location`]).
    Moved { tenant_idx: usize, slot_id: usize },
}

impl SlotEntry {
    fn occupied_mut(&mut self) -> Option<&mut WorkerSlot> {
        match self {
            SlotEntry::Occupied(ws) => Some(ws.as_mut()),
            SlotEntry::Moved { .. } => None,
        }
    }

    fn occupied(&self) -> Option<&WorkerSlot> {
        match self {
            SlotEntry::Occupied(ws) => Some(ws.as_ref()),
            SlotEntry::Moved { .. } => None,
        }
    }
}

/// A shard worker: exclusively owns its slots and serves its command queue
/// until shutdown.
pub(crate) struct ShardWorker {
    pub(crate) shard_id: usize,
    pub(crate) shared: Arc<Shared>,
    /// Worker-local slots, initially in global (tenant, slot) order;
    /// migrated-in slots append at the end, migrated-away slots tombstone
    /// in place.
    pub(crate) slots: Vec<SlotEntry>,
    pub(crate) rx: Receiver<ShardCommand>,
    /// Senders to every shard (including this one), used to forward
    /// commands that land on a tombstone after their slot migrated away.
    pub(crate) senders: Vec<Sender<ShardCommand>>,
    /// Worker-owned drain buffers, reused across every slot and sweep (see
    /// [`DrainScratch`] for the ownership rules).
    pub(crate) scratch: DrainScratch,
}

impl ShardWorker {
    /// Resolves a worker-local index that is guaranteed occupied (the run
    /// loop forwards tombstoned commands before dispatching).
    fn occupied_at(entry: &mut SlotEntry) -> &mut WorkerSlot {
        match entry {
            SlotEntry::Occupied(ws) => ws,
            SlotEntry::Moved { .. } => {
                unreachable!("commands for tombstoned slots are forwarded before dispatch")
            }
        }
    }

    /// The worker-local index a per-slot command targets, or `None` for
    /// fan-out/barrier commands that address the whole shard.
    fn target_slot(command: &ShardCommand) -> Option<usize> {
        match command {
            ShardCommand::OpenSession { slot, .. }
            | ShardCommand::AcceptSession { slot, .. }
            | ShardCommand::CloseSession { slot, .. }
            | ShardCommand::InstallMask { slot, .. }
            | ShardCommand::TenantChannelOffer { slot, .. }
            | ShardCommand::TenantChannelComplete { slot, .. }
            | ShardCommand::Submit { slot, .. }
            | ShardCommand::ExportSlot { slot, .. }
            | ShardCommand::MigrateOut { slot, .. } => Some(*slot),
            _ => None,
        }
    }

    /// Rewrites a per-slot command's worker-local index for its new shard.
    fn retarget(command: ShardCommand, new_idx: usize) -> ShardCommand {
        let mut command = command;
        match &mut command {
            ShardCommand::OpenSession { slot, .. }
            | ShardCommand::AcceptSession { slot, .. }
            | ShardCommand::CloseSession { slot, .. }
            | ShardCommand::InstallMask { slot, .. }
            | ShardCommand::TenantChannelOffer { slot, .. }
            | ShardCommand::TenantChannelComplete { slot, .. }
            | ShardCommand::Submit { slot, .. }
            | ShardCommand::ExportSlot { slot, .. }
            | ShardCommand::MigrateOut { slot, .. } => *slot = new_idx,
            _ => {}
        }
        command
    }

    /// Forwards a command whose slot migrated away to the slot's current
    /// owner (index rewritten); the reply channel travels with the command,
    /// so the caller is answered by the new owner directly. Returns the
    /// command back when its slot is still local.
    fn forward_if_moved(&mut self, command: ShardCommand) -> Option<ShardCommand> {
        let slot = match Self::target_slot(&command) {
            Some(slot) => slot,
            None => return Some(command),
        };
        let (tenant_idx, slot_id) = match &self.slots[slot] {
            SlotEntry::Occupied(_) => return Some(command),
            SlotEntry::Moved {
                tenant_idx,
                slot_id,
            } => (*tenant_idx, *slot_id),
        };
        let (shard, idx) = self.shared.tenants[tenant_idx].slots[slot_id].location();
        let _ = self.senders[shard].send(Self::retarget(command, idx));
        None
    }

    /// The worker loop. Exits on `Shutdown` or when every sender is gone.
    /// Replies are best-effort: a caller that gave up (dropped its receiver)
    /// doesn't stop the worker.
    pub(crate) fn run(mut self) {
        while let Ok(command) = self.rx.recv() {
            let command = match self.forward_if_moved(command) {
                Some(command) => command,
                None => continue,
            };
            match command {
                ShardCommand::OpenSession {
                    slot,
                    session_id,
                    reply,
                } => {
                    let ws = Self::occupied_at(&mut self.slots[slot]);
                    ws.mark_dirty();
                    let result = ws
                        .slot
                        .client_mut()
                        .open_session(session_id)
                        .map_err(GatewayError::Glimmer);
                    reply.deliver(result);
                }
                ShardCommand::AcceptSession {
                    slot,
                    session_id,
                    accept,
                    reply,
                } => {
                    let ws = Self::occupied_at(&mut self.slots[slot]);
                    ws.mark_dirty();
                    let result = ws
                        .slot
                        .client_mut()
                        .accept_session(session_id, &accept)
                        .map_err(GatewayError::Glimmer);
                    reply.deliver(result);
                }
                ShardCommand::CloseSession {
                    slot,
                    session_id,
                    reply,
                } => {
                    let result = self.close_session(slot, session_id);
                    reply.deliver(result);
                }
                ShardCommand::InstallMask {
                    slot,
                    session_id,
                    delivery,
                    reply,
                } => {
                    let ws = Self::occupied_at(&mut self.slots[slot]);
                    ws.mark_dirty();
                    let result = ws
                        .slot
                        .client_mut()
                        .install_session_mask_delivery(session_id, &delivery)
                        .map_err(GatewayError::Glimmer);
                    reply.deliver(result);
                }
                ShardCommand::TenantChannelOffer { slot, reply } => {
                    let ws = Self::occupied_at(&mut self.slots[slot]);
                    ws.mark_dirty();
                    let result = ws
                        .slot
                        .client_mut()
                        .start_channel()
                        .map_err(GatewayError::Glimmer);
                    reply.deliver(result);
                }
                ShardCommand::TenantChannelComplete {
                    slot,
                    accept,
                    reply,
                } => {
                    let ws = Self::occupied_at(&mut self.slots[slot]);
                    ws.mark_dirty();
                    let result = ws
                        .slot
                        .client_mut()
                        .complete_channel(&accept)
                        .map_err(GatewayError::Glimmer);
                    reply.deliver(result);
                }
                ShardCommand::Submit { slot, item, trace } => {
                    let now = self.shared.telemetry.now_nanos();
                    self.shared
                        .telemetry
                        .trace_stage(trace, TraceStage::Enqueued, now);
                    Self::occupied_at(&mut self.slots[slot])
                        .slot
                        .enqueue(item, now, trace);
                }
                ShardCommand::SubmitMany { items } => {
                    // One clock read for the whole group: the items were
                    // admitted together, so they share an enqueue stamp.
                    // Items whose slot migrated away since the batch was
                    // routed are forwarded individually — the rewrite is
                    // per item because one batch can straddle a migration.
                    let now = self.shared.telemetry.now_nanos();
                    for (slot, item, trace) in items {
                        match &mut self.slots[slot] {
                            SlotEntry::Occupied(ws) => {
                                self.shared
                                    .telemetry
                                    .trace_stage(trace, TraceStage::Enqueued, now);
                                ws.slot.enqueue(item, now, trace);
                            }
                            SlotEntry::Moved {
                                tenant_idx,
                                slot_id,
                            } => {
                                let (shard, idx) =
                                    self.shared.tenants[*tenant_idx].slots[*slot_id].location();
                                let _ = self.senders[shard].send(ShardCommand::Submit {
                                    slot: idx,
                                    item,
                                    trace,
                                });
                            }
                        }
                    }
                }
                ShardCommand::Drain { reply } => {
                    let report = self.drain();
                    reply.deliver(report);
                }
                ShardCommand::Checkpoint {
                    header,
                    ready,
                    go,
                    reply,
                } => {
                    let _ = ready.send(());
                    // Block until every shard is paused and the routing
                    // layer has captured the shared state; an abandoned
                    // checkpoint (false, or the caller died) resumes serving
                    // with nothing exported.
                    if !matches!(go.recv(), Ok(true)) {
                        continue;
                    }
                    let _ = reply.send(self.export_slots(&header));
                }
                ShardCommand::ExportSlot {
                    slot,
                    header,
                    known_state_epoch,
                    ready,
                    go,
                    reply,
                } => {
                    let _ = ready.send(());
                    // Paused for exactly one slot's export: the checkpoint
                    // thread captures that slot's session rows, then
                    // releases us. An abandoned export (false, or the
                    // caller died) resumes serving with nothing sealed.
                    if !matches!(go.recv(), Ok(true)) {
                        continue;
                    }
                    let _ = reply.send(self.export_one(slot, &header, known_state_epoch));
                }
                ShardCommand::CollectStats { reply } => {
                    let _ = reply.send(self.collect_stats());
                }
                ShardCommand::MigrateOut {
                    slot,
                    header,
                    ready,
                    go,
                    reply,
                    done,
                } => {
                    let _ = ready.send(());
                    // Paused: the coordinator captures nothing here (the
                    // session table needs no change — entries key on
                    // (tenant, slot), not shard), but the two-phase shape
                    // lets it abort cleanly before anything is touched.
                    if !matches!(go.recv(), Ok(true)) {
                        continue;
                    }
                    match self.migrate_out(slot, &header) {
                        Ok(package) => {
                            let _ = reply.send(Ok(package));
                            // Stay paused until the coordinator commits or
                            // aborts: while the slot is in-flight nothing
                            // drains this queue, so no stray command can
                            // reach the tombstone before the routing table
                            // points at the new owner.
                            match done.recv() {
                                // Aborted after handoff: reinstall at the
                                // old index and resume as if nothing
                                // happened (fail-closed back to this shard).
                                Ok(Some(worker)) => {
                                    self.slots[slot] = SlotEntry::Occupied(worker);
                                }
                                // Committed: the tombstone stays forever.
                                Ok(None) => {}
                                // The coordinator died mid-handoff and took
                                // the slot with it; nothing to reinstall.
                                Err(_) => {}
                            }
                        }
                        // Export failed: the slot never left this worker.
                        Err(e) => {
                            let _ = reply.send(Err(e));
                        }
                    }
                }
                ShardCommand::MigrateIn { worker, reply } => {
                    self.slots.push(SlotEntry::Occupied(worker));
                    let _ = reply.send(self.slots.len() - 1);
                }
                ShardCommand::Fence { reply } => {
                    let _ = reply.send(());
                }
                ShardCommand::Shutdown => break,
            }
        }
    }

    /// Seals the slot's state (the crash-recovery artifact), extracts the
    /// live [`WorkerSlot`] and leaves a forwarding tombstone in its place.
    /// On a sealing error the slot is left untouched.
    fn migrate_out(&mut self, slot: usize, header: &[u8]) -> Result<MigrationPackage> {
        let ws = Self::occupied_at(&mut self.slots[slot]);
        let (state_epoch, sealed_state, _stats) = ws.slot.export_checkpoint(header, None)?;
        let sealed_state = sealed_state.expect("a forced export always seals");
        let tombstone = SlotEntry::Moved {
            tenant_idx: ws.tenant_idx,
            slot_id: ws.slot.slot_id,
        };
        let worker = match std::mem::replace(&mut self.slots[slot], tombstone) {
            SlotEntry::Occupied(ws) => ws,
            SlotEntry::Moved { .. } => {
                unreachable!("the entry was occupied two statements ago")
            }
        };
        Ok(MigrationPackage {
            worker,
            sealed_state,
            state_epoch,
        })
    }

    /// Seals every owned slot's enclave state under the snapshot header.
    /// Runs strictly between the checkpoint barrier and the next command,
    /// so the exports are consistent with the captured shared state.
    fn export_slots(&mut self, header: &[u8]) -> Result<Vec<SlotCheckpoint>> {
        let mut out = Vec::with_capacity(self.slots.len());
        for ws in self.slots.iter_mut().filter_map(SlotEntry::occupied_mut) {
            let (state_epoch, sealed_state, stats) = ws.slot.export_checkpoint(header, None)?;
            let sealed_state = sealed_state.expect("a forced export always seals");
            out.push(SlotCheckpoint {
                tenant_idx: ws.tenant_idx,
                slot_id: ws.slot.slot_id,
                sealed_state,
                dirty_epoch: ws.slot.dirty_epoch,
                state_epoch,
                stats,
            });
        }
        Ok(out)
    }

    /// Exports exactly one slot (the streamed-capture path), skipping the
    /// seal when the enclave's state still matches `known_state_epoch`.
    fn export_one(
        &mut self,
        slot: usize,
        header: &[u8],
        known_state_epoch: Option<u64>,
    ) -> Result<SlotExport> {
        let ws = Self::occupied_at(&mut self.slots[slot]);
        let (state_epoch, sealed_state, stats) =
            ws.slot.export_checkpoint(header, known_state_epoch)?;
        Ok(SlotExport {
            tenant_idx: ws.tenant_idx,
            slot_id: ws.slot.slot_id,
            dirty_epoch: ws.slot.dirty_epoch,
            state_epoch,
            sealed_state,
            stats,
        })
    }

    fn close_session(&mut self, slot: usize, session_id: u64) -> Result<()> {
        let ws = Self::occupied_at(&mut self.slots[slot]);
        ws.mark_dirty();
        let tenant = &self.shared.tenants[ws.tenant_idx];
        let dropped = ws.slot.discard_session_items(session_id);
        ws.gauges.queue_depth.fetch_sub(dropped, Ordering::SeqCst);
        tenant.queued.fetch_sub(dropped, Ordering::SeqCst);
        ws.slot
            .client_mut()
            .close_session(session_id)
            .map_err(GatewayError::Glimmer)?;
        tenant
            .counters
            .dropped
            .fetch_add(dropped as u64, Ordering::SeqCst);
        Ok(())
    }

    /// One sweep over this shard's slots — at most one `PROCESS_BATCH` ECALL
    /// per non-empty slot. Mirrors the pre-runtime drain semantics: a slot
    /// whose whole-batch ECALL fails keeps its items queued and does not
    /// abort the sweep; the first error is reported alongside whatever
    /// responses the other slots produced.
    fn drain(&mut self) -> ShardDrainReport {
        let max_batch = self.shared.config.max_batch;
        let mut responses = Vec::new();
        let mut first_error = None;
        let telemetry = &self.shared.telemetry;
        if telemetry.enabled() {
            // The live queue-depth gauge: what this shard has pending as
            // the sweep starts.
            let depth: usize = self
                .slots
                .iter()
                .filter_map(SlotEntry::occupied)
                .map(|ws| ws.slot.queue_depth())
                .sum();
            telemetry.record_drain_depth(self.shard_id, depth as u64);
        }
        // One scratch for the whole sweep: each slot encodes its request and
        // leaves its replies in the worker's reusable buffers, which are
        // consumed (drained, capacity kept) before the next slot runs.
        let scratch = &mut self.scratch;
        for ws in self.slots.iter_mut().filter_map(SlotEntry::occupied_mut) {
            let tenant = &self.shared.tenants[ws.tenant_idx];
            let drained =
                match ws
                    .slot
                    .drain_into(max_batch, scratch, Some((telemetry, self.shard_id)))
                {
                    // A drain that reached the enclave mutated checkpointed
                    // state (replay nonces, auditor counters, drain stats)
                    // even when the batch failed wholesale, so the slot is
                    // dirty either way. Empty sweeps are not.
                    Ok(Some(drained)) => {
                        ws.mark_dirty();
                        drained
                    }
                    Ok(None) => continue,
                    Err(e) => {
                        ws.mark_dirty();
                        first_error.get_or_insert(e);
                        continue;
                    }
                };
            let reply_now = telemetry.now_nanos();
            // Outcome counters FIRST, reservation release LAST. The
            // endorsement-budget check reads `endorsed + queued`, so an item
            // must never be simultaneously absent from both (that window
            // would let a racing submit overshoot the budget). The reverse
            // overlap — counted in `endorsed` while still counted in
            // `queued` — only over-rejects transiently, which is safe.
            for (item, trace) in scratch.replies.drain(..).zip(scratch.traces.drain(..)) {
                match &item.outcome {
                    BatchOutcome::Reply { endorsed: true, .. } => {
                        tenant.counters.endorsed.fetch_add(1, Ordering::SeqCst);
                    }
                    BatchOutcome::Reply {
                        endorsed: false, ..
                    } => {
                        tenant.counters.rejected.fetch_add(1, Ordering::SeqCst);
                    }
                    BatchOutcome::Failed(_) => {
                        tenant.counters.failed.fetch_add(1, Ordering::SeqCst);
                    }
                }
                telemetry.trace_stage(trace, TraceStage::ReplyDelivered, reply_now);
                responses.push(GatewayResponse {
                    session_id: item.session_id,
                    tenant: tenant.name.clone(),
                    outcome: item.outcome,
                });
            }
            ws.gauges.queue_depth.fetch_sub(drained, Ordering::SeqCst);
            tenant.queued.fetch_sub(drained, Ordering::SeqCst);
        }
        ShardDrainReport {
            responses,
            first_error,
        }
    }

    fn collect_stats(&self) -> Vec<SlotStatsRow> {
        self.slots
            .iter()
            .filter_map(SlotEntry::occupied)
            .map(|ws| {
                let mut stats = ws.slot.stats();
                stats.active_sessions = ws.gauges.active_sessions.load(Ordering::SeqCst);
                SlotStatsRow {
                    tenant: self.shared.tenants[ws.tenant_idx].name.to_string(),
                    slot: ws.slot.slot_id,
                    shard: self.shard_id,
                    stats,
                }
            })
            .collect()
    }
}
