//! Injected time source for lifecycle decisions.
//!
//! The gateway's only time-dependent policy is stale-pending eviction
//! ([`crate::Gateway::evict_stale_pending`]). Reading wall time directly made
//! that policy untestable without sleeping; instead the gateway reads a
//! [`Clock`], so production uses the monotonic [`SystemClock`] and tests use
//! a [`ManualClock`] they can advance deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic time source, in nanoseconds since an arbitrary origin.
///
/// Implementations must be monotonic (never decrease) and cheap to read; the
/// gateway samples the clock on every session open.
pub trait Clock: Send + Sync {
    /// Nanoseconds elapsed since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The production clock: monotonic wall time from [`Instant`].
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    #[must_use]
    pub fn new() -> Self {
        SystemClock {
            origin: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now_nanos(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A manually-advanced clock for deterministic tests: time only moves when
/// the test says so.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    #[must_use]
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Advances the clock by `nanos`.
    pub fn advance_nanos(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::SeqCst);
    }

    /// Advances the clock by a [`std::time::Duration`].
    pub fn advance(&self, by: std::time::Duration) {
        self.advance_nanos(by.as_nanos() as u64);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::default();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_advanced() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 0);
        clock.advance_nanos(5);
        assert_eq!(clock.now_nanos(), 5);
        clock.advance(std::time::Duration::from_secs(1));
        assert_eq!(clock.now_nanos(), 1_000_000_005);
    }
}
