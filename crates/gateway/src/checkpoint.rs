//! Crash-safe checkpoint/restore: the gateway's snapshot format and the
//! crash-fault-injection hooks that prove it correct.
//!
//! A gateway restart used to throw away every provisioned enclave, sealed
//! service key, and session table — millions of devices re-handshaking at
//! once. A [`GatewaySnapshot`] captures everything needed to resume serving
//! instead: per-slot enclave state **sealed by the enclaves themselves**
//! (under `SealPolicy::MrEnclave`, with the snapshot header as AAD), the
//! established-session table, per-tenant quota counters, and serving stats.
//! [`crate::Gateway::checkpoint`] produces one; [`crate::Gateway::restore`]
//! rebuilds a serving gateway from one without re-running a single tenant
//! provisioning or session-handshake ECALL.
//!
//! # What is deliberately *not* persisted
//!
//! * **In-flight queue entries** — a queued request is not yet acknowledged
//!   to its device, so the device retransmits it after a restart (its replay
//!   nonce was only recorded at processing time, so the retransmission is
//!   accepted exactly once).
//! * **Pending handshakes** — their ephemeral DH secrets must die with the
//!   process; devices reopen their sessions.
//! * **Tenant confidential predicates** — re-installed by the tenant over
//!   its attested channel.
//!
//! # Integrity and binding
//!
//! The snapshot envelope is the CRC-guarded, versioned
//! [`glimmer_wire::snapshot`] frame: truncation, bit rot, and version skew
//! all surface as typed [`crate::GatewayError::SnapshotCorrupt`] errors.
//! Each slot's sealed state uses the frame's header bytes as sealing AAD, so
//! a blob spliced in from a different snapshot (or tampered, or sealed by a
//! different enclave build, or on a different machine) fails closed as
//! [`crate::GatewayError::SealedBlobRejected`].
//!
//! # Delta snapshots and chains
//!
//! A full snapshot re-exports every slot even when most of a huge pool sat
//! idle. A [`GatewayDelta`] instead re-runs the (sealing) state export only
//! for slots whose dirty-epoch advanced since a *base* frame — the previous
//! full snapshot or the previous delta — and records just those blobs plus
//! the (cheap) session table and quota counters. Each delta names its base
//! by epoch **and** canonical header bytes, and its sealed blobs use the
//! chained AAD `delta header ‖ base header`
//! ([`glimmer_wire::snapshot::chained_header_bytes`]), so a delta spliced
//! onto the wrong base fails twice over: the chain check rejects it typed
//! ([`crate::GatewayError::SnapshotChainBroken`]) before any enclave is
//! touched, and even a forged link fails AEAD authentication inside the
//! enclave. Restore replays base + ordered deltas fail-closed: a gap,
//! reorder, or mismatched base is a typed error, never a partial restore.
//!
//! # Security notes and limitations
//!
//! * **No rollback protection.** A snapshot is a point-in-time capture with
//!   nothing binding it to "latest": whoever holds the machine can restore
//!   an *older* snapshot, resetting replay-nonce sets, endorsement
//!   counters, and auditor budgets to their values *as of that capture* —
//!   traffic processed after the capture becomes replayable and budget
//!   consumed after it is forgotten. Real SGX pairs sealed state with
//!   hardware monotonic counters to close exactly this; the simulator does
//!   not model them. What restore *does* guarantee is that counters never
//!   regress past the restored snapshot's own capture point, and that a
//!   snapshot cannot be altered, spliced, or moved between machines.
//!   **Delta chains inherit this wholesale**: chain validation proves a
//!   delta extends *its* base, not that the chain is the *latest* one —
//!   whoever holds the machine can still restore base + a truncated prefix
//!   of deltas and resume from that older point. Truncating a chain is
//!   exactly as powerful as restoring an older full snapshot, no more.
//! * **Point-in-time restore forks history.** A restored gateway resumes
//!   epoch numbering at the restored frame's epoch (the last delta's, for a
//!   chain), so restoring a non-latest snapshot can mint a second snapshot
//!   with an epoch an abandoned one already used. Operators must discard
//!   snapshots and deltas with epochs above the restored one (the same
//!   log-truncation rule as any point-in-time recovery); the clock reading
//!   in the header separates such twins only when the clock actually
//!   advanced.
//! * **Tenant counters in a streamed capture are captured last.** The
//!   slot-at-a-time capture keeps shards serving while earlier slots
//!   export, so quota counters read at the end can include work a
//!   just-exported slot performed after its export. Over-counting is the
//!   safe direction for endorsement budgets (a restored gateway can only
//!   under-spend, never over-spend, relative to true history).
//!
//! # Crash-fault injection
//!
//! The checkpoint/restore paths are threaded with labelled [`CrashPoint`]s,
//! reported to an injected [`CrashHooks`] — the same injection pattern as
//! [`crate::Clock`]/[`crate::ManualClock`]. Production uses the no-op
//! [`NoCrash`]; the crash-matrix test kills the gateway at every labelled
//! point and asserts each snapshot either restores bit-identically or is
//! rejected with a typed error.

use crate::error::{GatewayError, Result};
use crate::stats::{SlotStats, TenantStats};
use glimmer_wire::snapshot::{self, SnapshotFrame};
use glimmer_wire::{Decoder, Encoder};
use sgx_sim::Measurement;

/// Snapshot-frame kind tag for a full gateway snapshot.
pub const GATEWAY_SNAPSHOT_KIND: u16 = 1;

/// Snapshot-frame kind tag for a gateway *delta* snapshot (see
/// [`GatewayDelta`]).
pub const GATEWAY_DELTA_KIND: u16 = 2;

/// The labelled points at which an injected fault can kill the gateway
/// between checkpoint and restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Before any checkpoint work has started.
    BeforeCheckpoint,
    /// Every shard worker has paused at its checkpoint barrier.
    WorkersQuiesced,
    /// The session table, quota counters, and stats have been captured, but
    /// no enclave state has been exported yet.
    StateCaptured,
    /// Every slot's sealed state export has been collected; the snapshot is
    /// not yet assembled.
    SlotsExported,
    /// The snapshot value is fully assembled but not yet returned/persisted.
    SnapshotAssembled,
    /// Streamed capture only: fired after each slot's export completes and
    /// its worker has resumed serving — the gateway dies with some slots
    /// exported and the rest not. The capture still holds the slot's
    /// quiesce claim at this point, so a migration racing the hook loses
    /// with a typed [`crate::GatewayError::BarrierConflict`].
    MidStreamExport,
    /// Delta checkpoint only: the delta value is fully assembled but not
    /// yet returned/persisted.
    DeltaAssembled,
    /// Before any restore work has started.
    BeforeRestore,
    /// Mid-restore: the first tenant's slots have imported their sealed
    /// state; the rest have not.
    MidRestore,
    /// Migration only: the source worker is paused at its handoff barrier
    /// but the slot has not been touched — the coordinator dies before the
    /// export, and the worker resumes serving the slot as if nothing
    /// happened.
    MidMigrationExport,
    /// Migration only: the slot has been sealed, exported, and handed to
    /// the coordinator; the routing table still points at the source
    /// shard. The coordinator dies in the in-flight window and the slot is
    /// reinstalled on its source worker (fail-closed).
    SlotHandedOff,
    /// Migration only: the coordinator dies at the import boundary, before
    /// the target worker takes ownership. Recovery is identical to
    /// [`CrashPoint::SlotHandedOff`] — the routing commit is one atomic
    /// store, so no partially-imported state exists between the two.
    MidMigrationImport,
}

impl CrashPoint {
    /// Every labelled crash point, in checkpoint-then-restore-then-migrate
    /// order (the crash-matrix tests iterate this; the checkpoint matrix
    /// filters out the migration-only points, which never fire there).
    pub const ALL: [CrashPoint; 12] = [
        CrashPoint::BeforeCheckpoint,
        CrashPoint::WorkersQuiesced,
        CrashPoint::StateCaptured,
        CrashPoint::SlotsExported,
        CrashPoint::SnapshotAssembled,
        CrashPoint::MidStreamExport,
        CrashPoint::DeltaAssembled,
        CrashPoint::BeforeRestore,
        CrashPoint::MidRestore,
        CrashPoint::MidMigrationExport,
        CrashPoint::SlotHandedOff,
        CrashPoint::MidMigrationImport,
    ];

    /// The migration-only crash points ([`Gateway::migrate_slot_with_hooks`]
    /// is the only code that reaches them).
    ///
    /// [`Gateway::migrate_slot_with_hooks`]: crate::Gateway::migrate_slot_with_hooks
    pub const MIGRATION: [CrashPoint; 3] = [
        CrashPoint::MidMigrationExport,
        CrashPoint::SlotHandedOff,
        CrashPoint::MidMigrationImport,
    ];
}

impl core::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            CrashPoint::BeforeCheckpoint => "before-checkpoint",
            CrashPoint::WorkersQuiesced => "workers-quiesced",
            CrashPoint::StateCaptured => "state-captured",
            CrashPoint::SlotsExported => "slots-exported",
            CrashPoint::SnapshotAssembled => "snapshot-assembled",
            CrashPoint::MidStreamExport => "mid-stream-export",
            CrashPoint::DeltaAssembled => "delta-assembled",
            CrashPoint::BeforeRestore => "before-restore",
            CrashPoint::MidRestore => "mid-restore",
            CrashPoint::MidMigrationExport => "mid-migration-export",
            CrashPoint::SlotHandedOff => "slot-handed-off",
            CrashPoint::MidMigrationImport => "mid-migration-import",
        };
        write!(f, "{name}")
    }
}

/// Injected crash decisions, mirroring the [`crate::Clock`] pattern:
/// production passes the no-op [`NoCrash`], deterministic tests pass
/// [`CrashAt`] (or their own implementation) to kill the gateway at an
/// exact labelled point.
pub trait CrashHooks: Send + Sync {
    /// Called when execution reaches `point`; returning `true` makes the
    /// surrounding operation abort with
    /// [`crate::GatewayError::CrashInjected`] — the deterministic stand-in
    /// for the process dying right there.
    fn reached(&self, point: CrashPoint) -> bool;
}

/// The production hooks: never crash.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCrash;

impl CrashHooks for NoCrash {
    fn reached(&self, _point: CrashPoint) -> bool {
        false
    }
}

/// Test hooks that crash at exactly one labelled point.
#[derive(Debug, Clone, Copy)]
pub struct CrashAt(pub CrashPoint);

impl CrashHooks for CrashAt {
    fn reached(&self, point: CrashPoint) -> bool {
        point == self.0
    }
}

/// One pool slot's checkpointed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Slot index within the tenant's pool.
    pub slot_id: usize,
    /// The enclave's serving state, sealed by the enclave itself under
    /// `MrEnclave` with the snapshot header as AAD. Opaque to the gateway.
    pub sealed_state: Vec<u8>,
    /// The host-side dirty-epoch the owning shard worker had bumped the
    /// slot to when this export was captured. A later delta checkpoint
    /// re-exports the slot only if the live epoch has advanced past this.
    pub dirty_epoch: u64,
    /// The enclave's own state epoch inside the sealed export — the
    /// `known_epoch` a delta checkpoint presents so an idle enclave can
    /// skip re-sealing entirely.
    pub state_epoch: u64,
    /// The slot's drain counters at capture time. Per-incarnation fields
    /// (`active_sessions`, `queue_depth`, `last_drain_queue_depth`,
    /// `ecalls`, `drain_nanos`) are zeroed at capture — they are not
    /// persisted by the codec, restart with the process, and zeroing them
    /// keeps the value equal across a serialization round trip.
    pub stats: SlotStats,
}

/// One tenant's checkpointed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name (application id).
    pub name: String,
    /// The measurement devices verify — restore refuses a config whose
    /// descriptor measures differently before any unseal is attempted.
    pub measurement: Measurement,
    /// Per-tenant quota/serving counters at capture time (restoring
    /// `endorsed` is what keeps endorsement budgets enforced across
    /// restarts).
    pub counters: TenantStats,
    /// Per-slot sealed state, in slot-id order.
    pub slots: Vec<SlotSnapshot>,
}

/// One established session row, as persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionRecord {
    /// The gateway-issued session id.
    pub session_id: u64,
    /// Index of the owning tenant in the snapshot's tenant list.
    pub tenant_idx: usize,
    /// The pool slot the session is pinned to.
    pub slot: usize,
    /// Clock reading when the session was opened.
    pub opened_at_nanos: u64,
}

/// A full gateway checkpoint: everything needed to rebuild a serving
/// gateway on the same machine without re-running tenant provisioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewaySnapshot {
    /// Checkpoint sequence number. Unique within one gateway incarnation
    /// and resumed from the snapshot on restore; sealed slot state is
    /// AAD-bound to it, so blobs cannot migrate between snapshots. After
    /// restoring a non-latest snapshot, discard the abandoned
    /// higher-epoch snapshots (see the module's security notes).
    pub epoch: u64,
    /// The gateway clock's reading when the snapshot was captured.
    pub created_at_nanos: u64,
    /// Pool width the snapshot was taken under; restore requires the same.
    pub slots_per_tenant: usize,
    /// The session-id counter, so a restored gateway never reissues an id
    /// that a live device still holds.
    pub next_session_id: u64,
    /// Gateway-wide submit-command counter (the E13 metric), preserved so
    /// stats stay cumulative across restarts.
    pub submit_commands: u64,
    /// Tenants in deterministic (name) order.
    pub tenants: Vec<TenantSnapshot>,
    /// Established sessions, in session-id order. Pending sessions are
    /// deliberately dropped (devices reopen them).
    pub sessions: Vec<SessionRecord>,
}

impl GatewaySnapshot {
    /// The canonical header bytes of this snapshot — the sealing AAD every
    /// slot's state export is bound to.
    #[must_use]
    pub fn header_bytes(&self) -> Vec<u8> {
        snapshot::header_bytes(GATEWAY_SNAPSHOT_KIND, self.epoch, self.created_at_nanos)
    }

    /// This snapshot's identity and per-slot epoch map, as the base a
    /// subsequent [`crate::Gateway::checkpoint_delta`] extends.
    #[must_use]
    pub fn chain_base(&self) -> ChainBase {
        ChainBase {
            epoch: self.epoch,
            header: self.header_bytes(),
            slot_epochs: self
                .tenants
                .iter()
                .map(|t| {
                    t.slots
                        .iter()
                        .map(|s| (s.slot_id, s.dirty_epoch, s.state_epoch))
                        .collect()
                })
                .collect(),
        }
    }

    /// Serializes the snapshot into the CRC-guarded persistence format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.slots_per_tenant as u64);
        enc.put_u64(self.next_session_id);
        enc.put_u64(self.submit_commands);
        enc.put_varint(self.tenants.len() as u64);
        for tenant in &self.tenants {
            enc.put_str(&tenant.name);
            enc.put_array32(tenant.measurement.as_bytes());
            let c = &tenant.counters;
            for v in [
                c.sessions_opened,
                c.sessions_closed,
                c.submitted,
                c.endorsed,
                c.rejected,
                c.failed,
                c.throttled,
                c.dropped,
            ] {
                enc.put_u64(v);
            }
            enc.put_varint(tenant.slots.len() as u64);
            for slot in &tenant.slots {
                enc.put_varint(slot.slot_id as u64);
                enc.put_bytes(&slot.sealed_state);
                // `drain_nanos` is deliberately not persisted: wall-clock
                // latency totals are per-incarnation (and would make
                // snapshot bytes non-deterministic — the canary's contract).
                let s = &slot.stats;
                for v in [s.batches, s.items, s.max_batch, s.drain_cycles] {
                    enc.put_u64(v);
                }
                enc.put_u64(slot.dirty_epoch);
                enc.put_u64(slot.state_epoch);
            }
        }
        enc.put_varint(self.sessions.len() as u64);
        for record in &self.sessions {
            enc.put_u64(record.session_id);
            enc.put_varint(record.tenant_idx as u64);
            enc.put_varint(record.slot as u64);
            enc.put_u64(record.opened_at_nanos);
        }
        SnapshotFrame {
            kind: GATEWAY_SNAPSHOT_KIND,
            epoch: self.epoch,
            created_at_nanos: self.created_at_nanos,
            payload: enc.into_bytes(),
        }
        .to_bytes()
    }

    /// Parses a serialized snapshot, failing closed with typed errors:
    /// [`GatewayError::SnapshotCorrupt`] for truncation, corruption, version
    /// skew, or malformed payloads — never a panic, never a partial value.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let frame = SnapshotFrame::from_bytes(bytes).map_err(GatewayError::SnapshotCorrupt)?;
        if frame.kind != GATEWAY_SNAPSHOT_KIND {
            return Err(GatewayError::SnapshotMismatch {
                reason: "not a gateway snapshot",
            });
        }
        fn parse<T>(result: core::result::Result<T, glimmer_wire::WireError>) -> Result<T> {
            result.map_err(GatewayError::SnapshotCorrupt)
        }
        let mut dec = Decoder::new(&frame.payload);
        let slots_per_tenant = parse(dec.get_varint())? as usize;
        let next_session_id = parse(dec.get_u64())?;
        let submit_commands = parse(dec.get_u64())?;
        let tenant_count = parse(dec.get_varint())? as usize;
        let mut tenants = Vec::with_capacity(tenant_count.min(1024));
        for _ in 0..tenant_count {
            let name = parse(dec.get_str())?;
            let measurement = Measurement(parse(dec.get_array32())?);
            let counters = TenantStats {
                sessions_opened: parse(dec.get_u64())?,
                sessions_closed: parse(dec.get_u64())?,
                submitted: parse(dec.get_u64())?,
                endorsed: parse(dec.get_u64())?,
                rejected: parse(dec.get_u64())?,
                failed: parse(dec.get_u64())?,
                throttled: parse(dec.get_u64())?,
                dropped: parse(dec.get_u64())?,
            };
            let slot_count = parse(dec.get_varint())? as usize;
            let mut slots = Vec::with_capacity(slot_count.min(1024));
            for _ in 0..slot_count {
                let slot_id = parse(dec.get_varint())? as usize;
                let sealed_state = parse(dec.get_bytes())?;
                let stats = SlotStats {
                    batches: parse(dec.get_u64())?,
                    items: parse(dec.get_u64())?,
                    max_batch: parse(dec.get_u64())?,
                    drain_cycles: parse(dec.get_u64())?,
                    ..SlotStats::default()
                };
                let dirty_epoch = parse(dec.get_u64())?;
                let state_epoch = parse(dec.get_u64())?;
                slots.push(SlotSnapshot {
                    slot_id,
                    sealed_state,
                    dirty_epoch,
                    state_epoch,
                    stats,
                });
            }
            tenants.push(TenantSnapshot {
                name,
                measurement,
                counters,
                slots,
            });
        }
        let session_count = parse(dec.get_varint())? as usize;
        let mut sessions = Vec::with_capacity(session_count.min(65_536));
        for _ in 0..session_count {
            sessions.push(SessionRecord {
                session_id: parse(dec.get_u64())?,
                tenant_idx: parse(dec.get_varint())? as usize,
                slot: parse(dec.get_varint())? as usize,
                opened_at_nanos: parse(dec.get_u64())?,
            });
        }
        parse(dec.finish())?;
        Ok(GatewaySnapshot {
            epoch: frame.epoch,
            created_at_nanos: frame.created_at_nanos,
            slots_per_tenant,
            next_session_id,
            submit_commands,
            tenants,
            sessions,
        })
    }
}

/// The identity of the frame a delta checkpoint extends: its epoch, its
/// canonical header bytes, and the per-slot (dirty, state) epochs it
/// captured. Produced by [`GatewaySnapshot::chain_base`] /
/// [`GatewayDelta::chain_base`]; consumed by
/// [`crate::Gateway::checkpoint_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainBase {
    /// The base frame's checkpoint epoch.
    pub epoch: u64,
    /// The base frame's canonical header bytes (plain, un-chained).
    pub header: Vec<u8>,
    /// Per tenant (snapshot order), per slot (slot-id order): the
    /// `(slot_id, dirty_epoch, state_epoch)` the base captured.
    pub slot_epochs: Vec<Vec<(usize, u64, u64)>>,
}

impl ChainBase {
    /// The `(dirty_epoch, state_epoch)` the base captured for one slot, if
    /// the base covered it.
    #[must_use]
    pub fn slot(&self, tenant_idx: usize, slot_id: usize) -> Option<(u64, u64)> {
        self.slot_epochs
            .get(tenant_idx)?
            .iter()
            .find_map(|&(id, dirty, state)| {
                if id == slot_id {
                    Some((dirty, state))
                } else {
                    None
                }
            })
    }
}

/// One pool slot's entry in a delta snapshot. Every slot appears (the
/// epoch map and stats must stay current), but only slots that mutated
/// since the base carry a fresh sealed export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaSlot {
    /// Slot index within the tenant's pool.
    pub slot_id: usize,
    /// The host-side dirty-epoch at capture time.
    pub dirty_epoch: u64,
    /// The enclave's state epoch at capture time.
    pub state_epoch: u64,
    /// A fresh sealed export, present exactly when the slot mutated since
    /// the base. Sealed under the *chained* AAD
    /// (`delta header ‖ base header`), unlike a full snapshot's blobs.
    pub sealed_state: Option<Vec<u8>>,
    /// The slot's drain counters at capture time (per-incarnation fields
    /// zeroed, as in [`SlotSnapshot::stats`]).
    pub stats: SlotStats,
}

/// One tenant's entry in a delta snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaTenant {
    /// Tenant name (application id).
    pub name: String,
    /// The tenant's enclave measurement (restore re-checks it).
    pub measurement: Measurement,
    /// Per-tenant quota/serving counters at capture time — re-emitted
    /// wholesale (they are a few u64s; only sealed exports are worth
    /// skipping).
    pub counters: TenantStats,
    /// Per-slot entries, in slot-id order.
    pub slots: Vec<DeltaSlot>,
}

/// An incremental gateway checkpoint: sealed state only for slots whose
/// dirty-epoch advanced past a named *base* frame, plus a full copy of the
/// cheap mutable state (session table, quota counters, id counters).
/// Restored by [`crate::Gateway::restore_chain`] as base + ordered deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayDelta {
    /// Checkpoint sequence number (shares the gateway's epoch counter with
    /// full snapshots, so chains and full snapshots order together).
    pub epoch: u64,
    /// The gateway clock's reading when the delta was captured.
    pub created_at_nanos: u64,
    /// The epoch of the frame this delta extends.
    pub base_epoch: u64,
    /// The canonical header bytes of the frame this delta extends. Chain
    /// validation compares these byte-for-byte, and every sealed blob in
    /// this delta is AAD-bound to `header ‖ base_header` — so even a
    /// forged base link fails inside the enclave.
    pub base_header: Vec<u8>,
    /// Pool width the delta was taken under.
    pub slots_per_tenant: usize,
    /// The session-id counter at capture time.
    pub next_session_id: u64,
    /// Gateway-wide submit-command counter at capture time.
    pub submit_commands: u64,
    /// Tenants in deterministic (name) order.
    pub tenants: Vec<DeltaTenant>,
    /// Established sessions at capture time, in session-id order — the
    /// full table, not a diff (rows are cheap; seals are not).
    pub sessions: Vec<SessionRecord>,
}

impl GatewayDelta {
    /// The canonical (plain) header bytes of this delta — what the *next*
    /// delta in a chain records as its `base_header`.
    #[must_use]
    pub fn header_bytes(&self) -> Vec<u8> {
        snapshot::header_bytes(GATEWAY_DELTA_KIND, self.epoch, self.created_at_nanos)
    }

    /// The chained sealing AAD (`header ‖ base_header`) this delta's fresh
    /// sealed exports are bound to.
    #[must_use]
    pub fn sealing_header_bytes(&self) -> Vec<u8> {
        snapshot::chained_header_bytes(
            GATEWAY_DELTA_KIND,
            self.epoch,
            self.created_at_nanos,
            &self.base_header,
        )
    }

    /// This delta's identity and per-slot epoch map, as the base the next
    /// delta in the chain extends.
    #[must_use]
    pub fn chain_base(&self) -> ChainBase {
        ChainBase {
            epoch: self.epoch,
            header: self.header_bytes(),
            slot_epochs: self
                .tenants
                .iter()
                .map(|t| {
                    t.slots
                        .iter()
                        .map(|s| (s.slot_id, s.dirty_epoch, s.state_epoch))
                        .collect()
                })
                .collect(),
        }
    }

    /// Checks that this delta directly extends the frame identified by
    /// `(prev_epoch, prev_header)`.
    ///
    /// # Errors
    /// [`GatewayError::SnapshotChainBroken`] when the delta names a
    /// different base epoch (gap, reorder, or wrong base) or different
    /// base header bytes (forged or cross-chain splice).
    pub fn check_extends(&self, prev_epoch: u64, prev_header: &[u8]) -> Result<()> {
        if self.base_epoch != prev_epoch {
            return Err(GatewayError::SnapshotChainBroken {
                reason: "delta does not extend the preceding frame's epoch",
            });
        }
        if self.base_header != prev_header {
            return Err(GatewayError::SnapshotChainBroken {
                reason: "delta base header does not match the preceding frame",
            });
        }
        Ok(())
    }

    /// Serializes the delta into the CRC-guarded persistence format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.base_epoch);
        enc.put_bytes(&self.base_header);
        enc.put_varint(self.slots_per_tenant as u64);
        enc.put_u64(self.next_session_id);
        enc.put_u64(self.submit_commands);
        enc.put_varint(self.tenants.len() as u64);
        for tenant in &self.tenants {
            enc.put_str(&tenant.name);
            enc.put_array32(tenant.measurement.as_bytes());
            let c = &tenant.counters;
            for v in [
                c.sessions_opened,
                c.sessions_closed,
                c.submitted,
                c.endorsed,
                c.rejected,
                c.failed,
                c.throttled,
                c.dropped,
            ] {
                enc.put_u64(v);
            }
            enc.put_varint(tenant.slots.len() as u64);
            for slot in &tenant.slots {
                enc.put_varint(slot.slot_id as u64);
                enc.put_u64(slot.dirty_epoch);
                enc.put_u64(slot.state_epoch);
                match &slot.sealed_state {
                    Some(blob) => {
                        enc.put_bool(true);
                        enc.put_bytes(blob);
                    }
                    None => enc.put_bool(false),
                }
                let s = &slot.stats;
                for v in [s.batches, s.items, s.max_batch, s.drain_cycles] {
                    enc.put_u64(v);
                }
            }
        }
        enc.put_varint(self.sessions.len() as u64);
        for record in &self.sessions {
            enc.put_u64(record.session_id);
            enc.put_varint(record.tenant_idx as u64);
            enc.put_varint(record.slot as u64);
            enc.put_u64(record.opened_at_nanos);
        }
        SnapshotFrame {
            kind: GATEWAY_DELTA_KIND,
            epoch: self.epoch,
            created_at_nanos: self.created_at_nanos,
            payload: enc.into_bytes(),
        }
        .to_bytes()
    }

    /// Parses a serialized delta, failing closed with typed errors — the
    /// delta counterpart of [`GatewaySnapshot::from_bytes`].
    ///
    /// # Errors
    /// [`GatewayError::SnapshotCorrupt`] for truncation, corruption,
    /// version skew, or malformed payloads;
    /// [`GatewayError::SnapshotMismatch`] for a frame of a different kind.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let frame = SnapshotFrame::from_bytes(bytes).map_err(GatewayError::SnapshotCorrupt)?;
        if frame.kind != GATEWAY_DELTA_KIND {
            return Err(GatewayError::SnapshotMismatch {
                reason: "not a gateway delta snapshot",
            });
        }
        fn parse<T>(result: core::result::Result<T, glimmer_wire::WireError>) -> Result<T> {
            result.map_err(GatewayError::SnapshotCorrupt)
        }
        let mut dec = Decoder::new(&frame.payload);
        let base_epoch = parse(dec.get_u64())?;
        let base_header = parse(dec.get_bytes())?;
        let slots_per_tenant = parse(dec.get_varint())? as usize;
        let next_session_id = parse(dec.get_u64())?;
        let submit_commands = parse(dec.get_u64())?;
        let tenant_count = parse(dec.get_varint())? as usize;
        let mut tenants = Vec::with_capacity(tenant_count.min(1024));
        for _ in 0..tenant_count {
            let name = parse(dec.get_str())?;
            let measurement = Measurement(parse(dec.get_array32())?);
            let counters = TenantStats {
                sessions_opened: parse(dec.get_u64())?,
                sessions_closed: parse(dec.get_u64())?,
                submitted: parse(dec.get_u64())?,
                endorsed: parse(dec.get_u64())?,
                rejected: parse(dec.get_u64())?,
                failed: parse(dec.get_u64())?,
                throttled: parse(dec.get_u64())?,
                dropped: parse(dec.get_u64())?,
            };
            let slot_count = parse(dec.get_varint())? as usize;
            let mut slots = Vec::with_capacity(slot_count.min(1024));
            for _ in 0..slot_count {
                let slot_id = parse(dec.get_varint())? as usize;
                let dirty_epoch = parse(dec.get_u64())?;
                let state_epoch = parse(dec.get_u64())?;
                let sealed_state = if parse(dec.get_bool())? {
                    Some(parse(dec.get_bytes())?)
                } else {
                    None
                };
                let stats = SlotStats {
                    batches: parse(dec.get_u64())?,
                    items: parse(dec.get_u64())?,
                    max_batch: parse(dec.get_u64())?,
                    drain_cycles: parse(dec.get_u64())?,
                    ..SlotStats::default()
                };
                slots.push(DeltaSlot {
                    slot_id,
                    dirty_epoch,
                    state_epoch,
                    sealed_state,
                    stats,
                });
            }
            tenants.push(DeltaTenant {
                name,
                measurement,
                counters,
                slots,
            });
        }
        let session_count = parse(dec.get_varint())? as usize;
        let mut sessions = Vec::with_capacity(session_count.min(65_536));
        for _ in 0..session_count {
            sessions.push(SessionRecord {
                session_id: parse(dec.get_u64())?,
                tenant_idx: parse(dec.get_varint())? as usize,
                slot: parse(dec.get_varint())? as usize,
                opened_at_nanos: parse(dec.get_u64())?,
            });
        }
        parse(dec.finish())?;
        Ok(GatewayDelta {
            epoch: frame.epoch,
            created_at_nanos: frame.created_at_nanos,
            base_epoch,
            base_header,
            slots_per_tenant,
            next_session_id,
            submit_commands,
            tenants,
            sessions,
        })
    }
}

/// A base snapshot plus its ordered delta chain — what
/// [`crate::Gateway::restore_chain`] rebuilds from. `deltas` must be in
/// capture order (each extending the previous frame); restore validates
/// every link fail-closed before touching any enclave. An empty `deltas`
/// is exactly a full-snapshot restore.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotChain<'a> {
    /// The full snapshot the chain starts from.
    pub base: &'a GatewaySnapshot,
    /// The deltas applied on top, oldest first.
    pub deltas: &'a [GatewayDelta],
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GatewaySnapshot {
        GatewaySnapshot {
            epoch: 3,
            created_at_nanos: 42,
            slots_per_tenant: 2,
            next_session_id: 17,
            submit_commands: 9,
            tenants: vec![TenantSnapshot {
                name: "iot-telemetry.example".to_string(),
                measurement: Measurement::of_bytes(b"glimmer"),
                counters: TenantStats {
                    sessions_opened: 4,
                    endorsed: 11,
                    ..TenantStats::default()
                },
                slots: vec![
                    SlotSnapshot {
                        slot_id: 0,
                        sealed_state: vec![1, 2, 3],
                        dirty_epoch: 5,
                        state_epoch: 12,
                        stats: SlotStats {
                            batches: 2,
                            items: 8,
                            ..SlotStats::default()
                        },
                    },
                    SlotSnapshot {
                        slot_id: 1,
                        sealed_state: vec![4, 5],
                        dirty_epoch: 0,
                        state_epoch: 3,
                        stats: SlotStats::default(),
                    },
                ],
            }],
            sessions: vec![
                SessionRecord {
                    session_id: 1,
                    tenant_idx: 0,
                    slot: 0,
                    opened_at_nanos: 7,
                },
                SessionRecord {
                    session_id: 2,
                    tenant_idx: 0,
                    slot: 1,
                    opened_at_nanos: 8,
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let snap = sample();
        let bytes = snap.to_bytes();
        assert_eq!(GatewaySnapshot::from_bytes(&bytes).unwrap(), snap);
        // Serialization is deterministic.
        assert_eq!(bytes, sample().to_bytes());
    }

    #[test]
    fn corruption_and_truncation_are_typed() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                GatewaySnapshot::from_bytes(&bytes[..cut]),
                Err(GatewayError::SnapshotCorrupt(_))
            ));
        }
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                matches!(
                    GatewaySnapshot::from_bytes(&corrupt),
                    Err(GatewayError::SnapshotCorrupt(_))
                ),
                "flip at {pos} must be typed corruption"
            );
        }
    }

    #[test]
    fn foreign_kind_is_rejected() {
        let mut frame = SnapshotFrame::from_bytes(&sample().to_bytes()).expect("valid frame");
        frame.kind = 99;
        assert!(matches!(
            GatewaySnapshot::from_bytes(&frame.to_bytes()),
            Err(GatewayError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn header_bytes_bind_kind_epoch_and_time() {
        let snap = sample();
        assert_eq!(
            snap.header_bytes(),
            snapshot::header_bytes(GATEWAY_SNAPSHOT_KIND, 3, 42)
        );
        let mut other = sample();
        other.epoch = 4;
        assert_ne!(snap.header_bytes(), other.header_bytes());
    }

    fn sample_delta() -> GatewayDelta {
        let base = sample();
        GatewayDelta {
            epoch: 4,
            created_at_nanos: 99,
            base_epoch: base.epoch,
            base_header: base.header_bytes(),
            slots_per_tenant: 2,
            next_session_id: 19,
            submit_commands: 12,
            tenants: vec![DeltaTenant {
                name: "iot-telemetry.example".to_string(),
                measurement: Measurement::of_bytes(b"glimmer"),
                counters: TenantStats {
                    sessions_opened: 5,
                    endorsed: 13,
                    ..TenantStats::default()
                },
                slots: vec![
                    DeltaSlot {
                        slot_id: 0,
                        dirty_epoch: 7,
                        state_epoch: 15,
                        sealed_state: Some(vec![6, 7, 8]),
                        stats: SlotStats {
                            batches: 3,
                            items: 10,
                            ..SlotStats::default()
                        },
                    },
                    DeltaSlot {
                        slot_id: 1,
                        dirty_epoch: 0,
                        state_epoch: 3,
                        sealed_state: None,
                        stats: SlotStats::default(),
                    },
                ],
            }],
            sessions: vec![SessionRecord {
                session_id: 2,
                tenant_idx: 0,
                slot: 1,
                opened_at_nanos: 8,
            }],
        }
    }

    #[test]
    fn delta_round_trip_and_chain_base() {
        let delta = sample_delta();
        let bytes = delta.to_bytes();
        assert_eq!(GatewayDelta::from_bytes(&bytes).unwrap(), delta);
        assert_eq!(bytes, sample_delta().to_bytes());

        // chain_base views expose the per-slot epoch maps.
        let base = sample().chain_base();
        assert_eq!(base.epoch, 3);
        assert_eq!(base.slot(0, 0), Some((5, 12)));
        assert_eq!(base.slot(0, 1), Some((0, 3)));
        assert_eq!(base.slot(0, 9), None);
        assert_eq!(base.slot(3, 0), None);
        let next = delta.chain_base();
        assert_eq!(next.epoch, 4);
        assert_eq!(next.header, delta.header_bytes());
        assert_eq!(next.slot(0, 0), Some((7, 15)));
    }

    #[test]
    fn delta_chain_validation_fails_closed() {
        let delta = sample_delta();
        let base = sample();
        delta
            .check_extends(base.epoch, &base.header_bytes())
            .unwrap();
        // Wrong epoch (gap / reorder).
        assert!(matches!(
            delta.check_extends(base.epoch + 1, &base.header_bytes()),
            Err(GatewayError::SnapshotChainBroken { .. })
        ));
        // Right epoch, wrong header bytes (cross-chain splice).
        let mut twin = base.clone();
        twin.created_at_nanos += 1;
        assert!(matches!(
            delta.check_extends(twin.epoch, &twin.header_bytes()),
            Err(GatewayError::SnapshotChainBroken { .. })
        ));
    }

    #[test]
    fn delta_sealing_header_chains_base_identity() {
        let delta = sample_delta();
        let plain = delta.header_bytes();
        let chained = delta.sealing_header_bytes();
        assert_eq!(&chained[..plain.len()], plain.as_slice());
        assert_eq!(&chained[plain.len()..], delta.base_header.as_slice());
        // A delta on a different base seals under a different AAD.
        let mut other = sample_delta();
        other.base_header = sample_delta().header_bytes();
        assert_ne!(chained, other.sealing_header_bytes());
    }

    #[test]
    fn delta_corruption_and_foreign_kinds_are_typed() {
        let bytes = sample_delta().to_bytes();
        for cut in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                GatewayDelta::from_bytes(&bytes[..cut]),
                Err(GatewayError::SnapshotCorrupt(_))
            ));
        }
        for pos in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= 0x40;
            assert!(
                matches!(
                    GatewayDelta::from_bytes(&corrupt),
                    Err(GatewayError::SnapshotCorrupt(_))
                ),
                "flip at {pos} must be typed corruption"
            );
        }
        // A full snapshot is not a delta, and vice versa.
        assert!(matches!(
            GatewayDelta::from_bytes(&sample().to_bytes()),
            Err(GatewayError::SnapshotMismatch { .. })
        ));
        assert!(matches!(
            GatewaySnapshot::from_bytes(&sample_delta().to_bytes()),
            Err(GatewayError::SnapshotMismatch { .. })
        ));
    }

    #[test]
    fn crash_points_display_and_hooks() {
        for point in CrashPoint::ALL {
            assert!(!point.to_string().is_empty());
            assert!(!NoCrash.reached(point));
            assert!(CrashAt(point).reached(point));
        }
        assert!(!CrashAt(CrashPoint::MidRestore).reached(CrashPoint::BeforeRestore));
        // The migration-only points are a subset of ALL (the restore
        // matrix filters them out; the rebalance matrix iterates them).
        for point in CrashPoint::MIGRATION {
            assert!(CrashPoint::ALL.contains(&point));
        }
    }
}
