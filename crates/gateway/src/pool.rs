//! The pre-provisioned enclave pool.
//!
//! Building a Glimmer enclave for one request is what makes the naive
//! glimmer-as-a-service path slow: every device pays image build and
//! measurement (EADD/EEXTEND cycles per page), attestation provisioning, and
//! key installation before its first contribution. A pool slot pays those
//! costs once, at gateway start-up, and then serves an open-ended stream of
//! sessions; the only per-request work left is one share of a batched ECALL.

use crate::config::TenantConfig;
use crate::error::{GatewayError, Result};
use crate::stats::SlotStats;
use glimmer_core::host::GlimmerClient;
use glimmer_core::protocol::{BatchItem, BatchReply, BatchRequest};
use glimmer_crypto::drbg::Drbg;
use sgx_sim::{AttestationService, Measurement, PlatformConfig};
use std::collections::VecDeque;
use std::time::Instant;

/// One pre-provisioned enclave and its request queue.
pub struct PoolSlot {
    /// Index within the tenant's pool.
    pub slot_id: usize,
    client: GlimmerClient,
    queue: VecDeque<BatchItem>,
    active_sessions: usize,
    stats: SlotStats,
}

impl PoolSlot {
    fn new(
        slot_id: usize,
        tenant: &TenantConfig,
        platform_config: PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
    ) -> Result<Self> {
        let mut client = GlimmerClient::new(
            tenant.descriptor.clone(),
            platform_config,
            &mut rng.fork(&format!("gateway-slot-{}-{}", tenant.name, slot_id)),
        )
        .map_err(GatewayError::Glimmer)?;
        client.provision_platform(avs);
        client
            .install_service_key(&tenant.service_key_secret)
            .map_err(GatewayError::Glimmer)?;
        Ok(PoolSlot {
            slot_id,
            client,
            queue: VecDeque::new(),
            active_sessions: 0,
            stats: SlotStats::default(),
        })
    }

    /// The slot's enclave runtime.
    pub fn client_mut(&mut self) -> &mut GlimmerClient {
        &mut self.client
    }

    /// Sessions currently routed here.
    #[must_use]
    pub fn active_sessions(&self) -> usize {
        self.active_sessions
    }

    /// Requests currently queued here.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn session_opened(&mut self) {
        self.active_sessions += 1;
    }

    pub(crate) fn session_closed(&mut self) {
        self.active_sessions = self.active_sessions.saturating_sub(1);
    }

    pub(crate) fn enqueue(&mut self, item: BatchItem) {
        self.queue.push_back(item);
    }

    /// Discards queued items belonging to `session_id`; returns how many.
    pub(crate) fn discard_session_items(&mut self, session_id: u64) -> usize {
        let before = self.queue.len();
        self.queue.retain(|item| item.session_id != session_id);
        before - self.queue.len()
    }

    /// Drains up to `max_batch` queued items through the enclave in one
    /// ECALL. Returns `None` when the queue is empty.
    pub(crate) fn drain(&mut self, max_batch: usize) -> Result<Option<BatchReply>> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        // Never exceed the enclave's own batch limit, whatever the config
        // says — an oversized batch would be rejected wholesale.
        let take = self
            .queue
            .len()
            .min(max_batch.clamp(1, glimmer_core::enclave_app::MAX_BATCH_ITEMS));
        let request = BatchRequest {
            items: self.queue.drain(..take).collect(),
        };
        let n = request.items.len() as u64;
        let cycles_before = self.client.cost_report().total_cycles;
        let start = Instant::now();
        let reply = match self.client.process_batch(&request) {
            Ok(reply) => reply,
            Err(e) => {
                // A whole-batch ECALL failure leaves every item unprocessed;
                // put them back at the front so nothing is silently lost.
                for item in request.items.into_iter().rev() {
                    self.queue.push_front(item);
                }
                return Err(GatewayError::Glimmer(e));
            }
        };
        let elapsed = start.elapsed();
        let cycles_after = self.client.cost_report().total_cycles;
        self.stats.batches += 1;
        self.stats.items += n;
        self.stats.max_batch = self.stats.max_batch.max(n);
        self.stats.drain_cycles += cycles_after - cycles_before;
        self.stats.drain_nanos += elapsed.as_nanos() as u64;
        Ok(Some(reply))
    }

    /// Snapshot of this slot's counters.
    #[must_use]
    pub fn stats(&self) -> SlotStats {
        let mut stats = self.stats.clone();
        stats.active_sessions = self.active_sessions;
        stats.queue_depth = self.queue.len();
        stats
    }
}

/// All pool slots belonging to one tenant, plus its published measurement.
pub struct TenantPool {
    pub(crate) config: TenantConfig,
    pub(crate) measurement: Measurement,
    pub(crate) slots: Vec<PoolSlot>,
}

impl TenantPool {
    pub(crate) fn new(
        config: TenantConfig,
        slots_per_tenant: usize,
        platform_config: &PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
    ) -> Result<Self> {
        let measurement = config.descriptor.measurement();
        let mut slots = Vec::with_capacity(slots_per_tenant);
        for slot_id in 0..slots_per_tenant.max(1) {
            slots.push(PoolSlot::new(
                slot_id,
                &config,
                platform_config.clone(),
                rng,
                avs,
            )?);
        }
        Ok(TenantPool {
            config,
            measurement,
            slots,
        })
    }

    /// The measurement devices must verify through attestation.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Picks the least-loaded slot for a new session: fewest active sessions,
    /// breaking ties by shallowest queue, then lowest slot id.
    #[must_use]
    pub fn least_loaded_slot(&self) -> usize {
        self.slots
            .iter()
            .enumerate()
            .min_by_key(|(id, slot)| (slot.active_sessions(), slot.queue_depth(), *id))
            .map(|(id, _)| id)
            .expect("tenant pool always has at least one slot")
    }

    /// Total requests queued across the tenant's slots.
    #[must_use]
    pub fn total_queued(&self) -> usize {
        self.slots.iter().map(PoolSlot::queue_depth).sum()
    }

    /// Total sessions across the tenant's slots.
    #[must_use]
    pub fn total_sessions(&self) -> usize {
        self.slots.iter().map(PoolSlot::active_sessions).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::host::GlimmerDescriptor;
    use glimmer_core::signing::ServiceKeyMaterial;

    fn pool(slots: usize) -> TenantPool {
        let mut rng = Drbg::from_seed([41u8; 32]);
        let mut avs = AttestationService::new([42u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        TenantPool::new(
            TenantConfig::new(
                "iot-telemetry.example",
                GlimmerDescriptor::iot_default(Vec::new()),
                material.secret_bytes(),
            ),
            slots,
            &PlatformConfig::default(),
            &mut rng,
            &mut avs,
        )
        .unwrap()
    }

    #[test]
    fn slots_are_preprovisioned_and_isolated_platforms() {
        let mut p = pool(3);
        assert_eq!(p.slots.len(), 3);
        let ids: Vec<_> = p.slots.iter().map(|s| s.client.platform().id()).collect();
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        for slot in &mut p.slots {
            // Key already installed, platform provisioned for attestation.
            assert!(slot.client_mut().status().unwrap().signing_key);
            assert!(slot.client_mut().platform().is_provisioned());
        }
        // All slots share the tenant measurement.
        assert_eq!(p.measurement(), p.config.descriptor.measurement());
    }

    #[test]
    fn least_loaded_prefers_fewest_sessions_then_queue() {
        let mut p = pool(3);
        assert_eq!(p.least_loaded_slot(), 0);
        p.slots[0].session_opened();
        assert_eq!(p.least_loaded_slot(), 1);
        p.slots[1].session_opened();
        assert_eq!(p.least_loaded_slot(), 2);
        p.slots[2].session_opened();
        // Tie on sessions: queue depth breaks it.
        p.slots[0].enqueue(BatchItem {
            session_id: 1,
            ciphertext: vec![],
        });
        assert_eq!(p.least_loaded_slot(), 1);
        p.slots[0].session_closed();
        assert_eq!(p.least_loaded_slot(), 0);
        assert_eq!(p.total_queued(), 1);
        assert_eq!(p.total_sessions(), 2);
        assert_eq!(p.slots[0].discard_session_items(1), 1);
        assert_eq!(p.total_queued(), 0);
    }

    #[test]
    fn drain_on_empty_queue_is_none() {
        let mut p = pool(1);
        assert!(p.slots[0].drain(16).unwrap().is_none());
        let stats = p.slots[0].stats();
        assert_eq!(stats.batches, 0);
    }
}
