//! The pre-provisioned enclave pool.
//!
//! Building a Glimmer enclave for one request is what makes the naive
//! glimmer-as-a-service path slow: every device pays image build and
//! measurement (EADD/EEXTEND cycles per page), attestation provisioning, and
//! key installation before its first contribution. A pool slot pays those
//! costs once, at gateway start-up, and then serves an open-ended stream of
//! sessions; the only per-request work left is one share of a batched ECALL.
//!
//! Pools are *construction-time* objects: `TenantPool::new` provisions a
//! tenant's slots on the start-up thread, and the gateway then moves each
//! [`PoolSlot`] into the shard worker that will own it exclusively for the
//! rest of its life (see the crate's `runtime` module). Session-count and queue-depth
//! gauges live in the shared routing layer, not here — a slot only knows its
//! enclave, its queue, and its drain counters.

use crate::config::TenantConfig;
use crate::error::{GatewayError, Result};
use crate::stats::SlotStats;
use crate::telemetry::{Telemetry, TraceStage};
use glimmer_core::host::GlimmerClient;
#[cfg(test)]
use glimmer_core::protocol::BatchReply;
use glimmer_core::protocol::{BatchItem, BatchReplyItem, BatchRequest};
use glimmer_crypto::drbg::Drbg;
use glimmer_wire::Encoder;
use sgx_sim::{AttestationService, Measurement, PlatformConfig};
use std::collections::VecDeque;
use std::time::Instant;

/// Reusable drain buffers, owned by one shard worker and shared across every
/// slot that worker drains. Both buffers are cleared — never reallocated —
/// between sweeps, so the host side of a steady-state drain performs no heap
/// allocation per request: the request encoder stops growing once it has
/// seen the largest batch, and the reply vector keeps its capacity while the
/// decoded outcomes are moved out to the caller.
///
/// Ownership rule: the scratch belongs to the *worker*, not the slot. A slot
/// only borrows it for the duration of one [`PoolSlot::drain_into`] call and
/// leaves its replies inside for the worker to consume (`drain(..)`) before
/// the next slot is drained.
#[derive(Default)]
pub(crate) struct DrainScratch {
    /// Wire encoding of the outgoing `BatchRequest` (reset per sweep).
    request: Encoder,
    /// Decoded reply items (cleared per sweep; capacity kept).
    pub(crate) replies: Vec<BatchReplyItem>,
    /// Trace tags of the drained items, index-aligned with `replies` (0 =
    /// untraced). The worker consumes them alongside the replies to stamp
    /// the `ReplyDelivered` trace stage. Cleared per sweep; capacity kept,
    /// so tracing adds no per-request allocation.
    pub(crate) traces: Vec<u64>,
}

/// A queued request plus the telemetry the gateway attached at admission:
/// the enqueue timestamp (for the queue-wait histogram) and the sampled
/// trace tag (0 for the untraced majority). Worker-internal — the wire
/// [`BatchItem`] is unchanged.
struct Queued {
    item: BatchItem,
    enqueued_at_nanos: u64,
    trace: u64,
}

/// One pre-provisioned enclave and its request queue.
pub struct PoolSlot {
    /// Index within the tenant's pool.
    pub slot_id: usize,
    client: GlimmerClient,
    queue: VecDeque<Queued>,
    stats: SlotStats,
    /// Monotonic host-side dirty-epoch: bumped by the owning shard worker
    /// on every state-mutating command (session open/accept/close, mask
    /// install, channel step, non-empty drain). A delta checkpoint skips
    /// slots whose epoch has not advanced past the base snapshot's. The
    /// worker mirrors the value into the routing layer's
    /// [`crate::runtime::SlotGauges::dirty_epoch`] atomic, which is what
    /// the checkpoint thread actually reads.
    pub(crate) dirty_epoch: u64,
}

impl PoolSlot {
    fn new(
        slot_id: usize,
        tenant: &TenantConfig,
        platform_config: PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
    ) -> Result<Self> {
        let mut client = GlimmerClient::new(
            tenant.descriptor.clone(),
            platform_config,
            &mut rng.fork(&format!("gateway-slot-{}-{}", tenant.name, slot_id)),
        )
        .map_err(GatewayError::Glimmer)?;
        client.provision_platform(avs);
        client
            .install_service_key(&tenant.service_key_secret)
            .map_err(GatewayError::Glimmer)?;
        Ok(PoolSlot {
            slot_id,
            client,
            queue: VecDeque::new(),
            stats: SlotStats::default(),
            dirty_epoch: 0,
        })
    }

    /// Rebuilds a slot from a checkpoint: the enclave is created exactly as
    /// in [`PoolSlot::new`] — same rng fork label, so the platform's
    /// simulated fuse secrets are those of the original machine — but
    /// instead of the provisioning ECALL sequence (service key install, and
    /// later a handshake pair plus mask installs per session) the serving
    /// state arrives in **one** `IMPORT_STATE` ECALL, unsealed inside the
    /// enclave. `restored_stats` carries the previous incarnation's drain
    /// counters so serving metrics stay cumulative across the restart.
    ///
    /// Fails closed with the glimmer-level unseal rejection (mapped to
    /// [`GatewayError::SealedBlobRejected`] by the caller) when the blob was
    /// tampered with, sealed under a different snapshot header, a different
    /// measurement, or a different platform.
    pub(crate) fn restore(
        tenant: &TenantConfig,
        platform_config: PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
        header: &[u8],
        snap: &crate::checkpoint::SlotSnapshot,
        live_sessions: &[u64],
    ) -> Result<Self> {
        let mut client = GlimmerClient::new(
            tenant.descriptor.clone(),
            platform_config,
            &mut rng.fork(&format!("gateway-slot-{}-{}", tenant.name, snap.slot_id)),
        )
        .map_err(GatewayError::Glimmer)?;
        client.provision_platform(avs);
        client
            .import_state(header, &snap.sealed_state, live_sessions)
            .map_err(GatewayError::Glimmer)?;
        Ok(PoolSlot {
            slot_id: snap.slot_id,
            client,
            queue: VecDeque::new(),
            // Resume the exporting incarnation's dirtiness clock, so the
            // first post-restore delta can still skip slots that stayed
            // idle across the restart.
            dirty_epoch: snap.dirty_epoch,
            stats: SlotStats {
                // Transient gauges restart at zero; the queue is empty by
                // construction (in-flight entries are deliberately not
                // persisted) and sessions re-pin via the restored table.
                active_sessions: 0,
                queue_depth: 0,
                ecalls: 0,
                last_drain_queue_depth: 0,
                ..snap.stats.clone()
            },
        })
    }

    /// Seals this slot's enclave serving state under `header` (the snapshot
    /// AAD) and returns `(state_epoch, sealed, stats)`. With
    /// `known_state_epoch: None` the export is forced (full checkpoints);
    /// with `Some(epoch)` the enclave skips the seal — returning `None`
    /// for the blob — when its state has not mutated since that epoch
    /// (delta checkpoints racing a concurrent dirty bump).
    pub(crate) fn export_checkpoint(
        &mut self,
        header: &[u8],
        known_state_epoch: Option<u64>,
    ) -> Result<(u64, Option<Vec<u8>>, SlotStats)> {
        let (state_epoch, sealed) = self
            .client
            .export_state_if_newer(header, known_state_epoch)
            .map_err(GatewayError::Glimmer)?;
        Ok((state_epoch, sealed, self.stats()))
    }

    /// The slot's enclave runtime.
    pub fn client_mut(&mut self) -> &mut GlimmerClient {
        &mut self.client
    }

    /// Requests currently queued here.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Appends one admitted item, stamped with the worker's enqueue time
    /// (for the queue-wait histogram) and its trace tag (0 = untraced).
    pub(crate) fn enqueue(&mut self, item: BatchItem, now_nanos: u64, trace: u64) {
        self.queue.push_back(Queued {
            item,
            enqueued_at_nanos: now_nanos,
            trace,
        });
    }

    /// Appends a whole group of admitted items in order (test convenience;
    /// the runtime enqueues `SubmitMany` items one by one as it fans them
    /// out to their slots).
    #[cfg(test)]
    pub(crate) fn enqueue_many(&mut self, items: impl IntoIterator<Item = BatchItem>) {
        self.queue.extend(items.into_iter().map(|item| Queued {
            item,
            enqueued_at_nanos: 0,
            trace: 0,
        }));
    }

    /// Discards queued items belonging to `session_id`; returns how many.
    pub(crate) fn discard_session_items(&mut self, session_id: u64) -> usize {
        let before = self.queue.len();
        self.queue
            .retain(|queued| queued.item.session_id != session_id);
        before - self.queue.len()
    }

    /// Drains up to `max_batch` queued items through the enclave in one
    /// ECALL, leaving the decoded outcomes in `scratch.replies` (cleared
    /// first). Returns the number of items drained, or `None` when the queue
    /// is empty.
    ///
    /// The batch is encoded straight from the queue into the scratch
    /// encoder *without popping*: a whole-batch ECALL failure leaves the
    /// queue untouched (no put-back loop, nothing silently lost), and a
    /// success drops the drained prefix in one `drain` call. Together with
    /// the reusable buffers this makes the steady-state host side of a
    /// sweep allocation-free per request.
    ///
    /// With `telemetry` attached (the hub plus the owning shard's index),
    /// the sweep also records each drained item's queue-wait, the batch
    /// size, and the full encode→enclave→decode latency into that shard's
    /// registries, stamps `DrainStart`/`EcallDone` on traced items, and
    /// leaves the per-item trace tags in `scratch.traces` for the worker's
    /// reply-delivery stamp — all from preallocated structures.
    pub(crate) fn drain_into(
        &mut self,
        max_batch: usize,
        scratch: &mut DrainScratch,
        telemetry: Option<(&Telemetry, usize)>,
    ) -> Result<Option<usize>> {
        if self.queue.is_empty() {
            return Ok(None);
        }
        self.stats.last_drain_queue_depth = self.queue.len();
        // Never exceed the enclave's own batch limit, whatever the config
        // says — an oversized batch would be rejected wholesale.
        let take = self
            .queue
            .len()
            .min(max_batch.clamp(1, glimmer_core::enclave_app::MAX_BATCH_ITEMS));
        let telemetry = telemetry.filter(|(hub, _)| hub.enabled());
        let drain_start = telemetry.map_or(0, |(hub, _)| hub.now_nanos());
        scratch.traces.clear();
        for queued in self.queue.iter().take(take) {
            scratch.traces.push(queued.trace);
            if let Some((hub, shard)) = telemetry {
                hub.record_queue_wait(shard, drain_start.saturating_sub(queued.enqueued_at_nanos));
                hub.trace_stage(queued.trace, TraceStage::DrainStart, drain_start);
            }
        }
        BatchRequest::encode_items_into(
            &mut scratch.request,
            self.queue.iter().take(take).map(|queued| &queued.item),
        );
        let cycles_before = self.client.cost_report().total_cycles;
        let start = Instant::now();
        self.client
            .process_batch_into(scratch.request.as_slice(), &mut scratch.replies)
            .map_err(GatewayError::Glimmer)?;
        let elapsed = start.elapsed();
        let cycles_after = self.client.cost_report().total_cycles;
        if let Some((hub, shard)) = telemetry {
            let ecall_done = hub.now_nanos();
            hub.record_ecall(shard, ecall_done.saturating_sub(drain_start));
            hub.record_batch_size(shard, take as u64);
            for &trace in &scratch.traces {
                hub.trace_stage(trace, TraceStage::EcallDone, ecall_done);
            }
        }
        self.queue.drain(..take);
        let n = take as u64;
        self.stats.batches += 1;
        self.stats.items += n;
        self.stats.max_batch = self.stats.max_batch.max(n);
        self.stats.drain_cycles += cycles_after - cycles_before;
        self.stats.drain_nanos += elapsed.as_nanos() as u64;
        Ok(Some(take))
    }

    /// [`PoolSlot::drain_into`] with one-shot buffers: allocates a fresh
    /// scratch per call, so it is test-only — the shard workers always use
    /// the reusable-scratch path.
    #[cfg(test)]
    pub(crate) fn drain(&mut self, max_batch: usize) -> Result<Option<BatchReply>> {
        let mut scratch = DrainScratch::default();
        Ok(self
            .drain_into(max_batch, &mut scratch, None)?
            .map(|_| BatchReply {
                items: std::mem::take(&mut scratch.replies),
            }))
    }

    /// Snapshot of this slot's drain counters. The routing-layer gauges
    /// (active sessions) are filled in by the shard worker that owns the
    /// slot; `queue_depth` reflects the worker-local queue.
    #[must_use]
    pub fn stats(&self) -> SlotStats {
        let mut stats = self.stats.clone();
        stats.queue_depth = self.queue.len();
        stats.ecalls = self.client.cost_report().ecalls;
        stats
    }
}

/// A tenant's freshly provisioned pool: its published measurement plus the
/// slots the runtime will distribute across shard workers.
pub struct TenantPool {
    pub(crate) measurement: Measurement,
    pub(crate) slots: Vec<PoolSlot>,
}

impl TenantPool {
    pub(crate) fn new(
        config: &TenantConfig,
        slots_per_tenant: usize,
        platform_config: &PlatformConfig,
        rng: &mut Drbg,
        avs: &mut AttestationService,
    ) -> Result<Self> {
        let measurement = config.descriptor.measurement();
        let mut slots = Vec::with_capacity(slots_per_tenant);
        for slot_id in 0..slots_per_tenant.max(1) {
            slots.push(PoolSlot::new(
                slot_id,
                config,
                platform_config.clone(),
                rng,
                avs,
            )?);
        }
        Ok(TenantPool { measurement, slots })
    }

    /// The measurement devices must verify through attestation.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// Number of provisioned slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always false: a pool provisions at least one slot.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use glimmer_core::host::GlimmerDescriptor;
    use glimmer_core::signing::ServiceKeyMaterial;

    fn pool(slots: usize) -> TenantPool {
        let mut rng = Drbg::from_seed([41u8; 32]);
        let mut avs = AttestationService::new([42u8; 32]);
        let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
        let config = TenantConfig::new(
            "iot-telemetry.example",
            GlimmerDescriptor::iot_default(Vec::new()),
            material.secret_bytes(),
        );
        TenantPool::new(
            &config,
            slots,
            &PlatformConfig::default(),
            &mut rng,
            &mut avs,
        )
        .unwrap()
    }

    #[test]
    fn slots_are_preprovisioned_and_isolated_platforms() {
        let mut p = pool(3);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        let ids: Vec<_> = p.slots.iter().map(|s| s.client.platform().id()).collect();
        assert_ne!(ids[0], ids[1]);
        assert_ne!(ids[1], ids[2]);
        for slot in &mut p.slots {
            // Key already installed, platform provisioned for attestation.
            assert!(slot.client_mut().status().unwrap().signing_key);
            assert!(slot.client_mut().platform().is_provisioned());
        }
        // All slots share the tenant measurement.
        assert_eq!(
            p.measurement(),
            GlimmerDescriptor::iot_default(Vec::new()).measurement()
        );
    }

    #[test]
    fn queueing_and_discard() {
        let mut p = pool(1);
        let slot = &mut p.slots[0];
        slot.enqueue(
            BatchItem {
                session_id: 1,
                ciphertext: vec![],
            },
            0,
            0,
        );
        slot.enqueue(
            BatchItem {
                session_id: 2,
                ciphertext: vec![],
            },
            0,
            0,
        );
        assert_eq!(slot.queue_depth(), 2);
        assert_eq!(slot.discard_session_items(1), 1);
        assert_eq!(slot.queue_depth(), 1);
        assert_eq!(slot.stats().queue_depth, 1);
    }

    #[test]
    fn drain_on_empty_queue_is_none() {
        let mut p = pool(1);
        assert!(p.slots[0].drain(16).unwrap().is_none());
        let stats = p.slots[0].stats();
        assert_eq!(stats.batches, 0);
    }

    #[test]
    fn enqueue_many_preserves_order_and_drain_into_reuses_the_scratch() {
        let mut p = pool(1);
        let slot = &mut p.slots[0];
        slot.enqueue_many((0..5u64).map(|session_id| BatchItem {
            session_id,
            ciphertext: vec![0u8; 16],
        }));
        assert_eq!(slot.queue_depth(), 5);

        let mut scratch = DrainScratch::default();
        // First sweep: three of five items, outcomes in arrival order.
        assert_eq!(slot.drain_into(3, &mut scratch, None).unwrap(), Some(3));
        let first: Vec<u64> = scratch.replies.iter().map(|r| r.session_id).collect();
        assert_eq!(first, vec![0, 1, 2]);
        assert_eq!(slot.queue_depth(), 2);
        let request_capacity = scratch.request.capacity();
        assert!(request_capacity > 0);

        // Second sweep reuses both buffers: the smaller batch replaces the
        // replies (no stale items) and fits the grown request buffer.
        assert_eq!(slot.drain_into(3, &mut scratch, None).unwrap(), Some(2));
        let second: Vec<u64> = scratch.replies.iter().map(|r| r.session_id).collect();
        assert_eq!(second, vec![3, 4]);
        assert_eq!(scratch.request.capacity(), request_capacity);
        assert_eq!(slot.queue_depth(), 0);
        assert_eq!(slot.drain_into(3, &mut scratch, None).unwrap(), None);
        assert_eq!(slot.stats().batches, 2);
        assert_eq!(slot.stats().items, 5);
    }
}
