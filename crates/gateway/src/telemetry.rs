//! Host-side observability for the serving pipeline: lock-free metrics,
//! sampled request traces, and a text-exposition snapshot.
//!
//! The paper's trust split means the gateway operator never sees payloads —
//! telemetry is their *only* window into the service. Everything in this
//! module therefore measures the **host-side pipeline around** the sealed
//! enclave work and records labels, counts, and timestamps exclusively:
//! no plaintext, ciphertext, mask material, or payload-derived value ever
//! enters a counter, histogram bucket, trace span, or event record.
//!
//! The design mirrors the shared-nothing stats discipline of
//! [`crate::stats`]:
//!
//! * **Counters and gauges** are plain atomics updated with relaxed
//!   ordering by whichever thread observes the event (admission totals on
//!   the routing threads, queue-depth gauges on the shard workers).
//! * **Histograms** ([`Histogram`]) are fixed arrays of 64 atomic log2
//!   buckets — recording is wait-free and allocation-free, reading merges
//!   per-shard registries into one [`HistogramSnapshot`] exactly like
//!   [`crate::SlotStatsRow`] rows are stitched on read.
//! * **Traces** live in a preallocated ring ([`TraceSpan`] is the read-side
//!   view): a sampled submit draws a trace id and each pipeline stage
//!   stamps its timestamp from the injected [`Clock`], so traces are
//!   deterministic under [`crate::ManualClock`].
//! * **Events** are a bounded journal of the most recent admission
//!   rejections, for postmortems; only the (cold) rejection path touches
//!   its lock.
//!
//! A [`TelemetrySnapshot`] renders as Prometheus-style text exposition
//! ([`TelemetrySnapshot::render_prometheus`]) and as JSON
//! ([`TelemetrySnapshot::render_json`]); [`parse_exposition`] and
//! [`parse_json_samples`] read both back into the same canonical sample
//! map, which is how the round-trip is tested end to end.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::Clock;
use crate::error::{GatewayError, QuotaResource};

/// Number of log2 buckets in every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Returns the bucket index for a recorded value: bucket 0 holds exact
/// zeros, bucket `i` (for `1 <= i < 63`) holds `[2^(i-1), 2^i)`, and the
/// last bucket holds everything from `2^62` up.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket, used as the `le` label and as the
/// quantile estimate for values landing in the bucket. The last bucket is
/// unbounded (`u64::MAX`, rendered as `+Inf`).
#[must_use]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of a bucket (0 for bucket 0, `2^(i-1)` otherwise).
#[must_use]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

/// A lock-free fixed-bucket log2 histogram.
///
/// Recording is a handful of relaxed atomic adds — wait-free and
/// allocation-free, safe to call from the drain hot path. The only ordering
/// constraint is that [`Histogram::record`] bumps `count` *last* (release)
/// and [`Histogram::snapshot`] reads it *first* (acquire): a concurrent
/// snapshot can therefore under-count in-flight records but every counter
/// it reports is a value that was truly reached, bucket totals never lag
/// behind `count`, and successive snapshots never regress.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation. Wait-free, allocation-free.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        // `count` goes last with release ordering; see the type-level doc.
        self.count.fetch_add(1, Ordering::Release);
    }

    /// Takes a consistent read-side copy (see the type-level doc for the
    /// exact consistency contract under concurrent recording).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // `count` first (acquire): everything a completed `record` wrote
        // before its count bump is then visible below.
        let count = self.count.load(Ordering::Acquire);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// A plain-value copy of a [`Histogram`], mergeable across shards and
/// queryable for quantile estimates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_index`] for the layout).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wraps on overflow; callers record
    /// nanoseconds and counts, which stay far from the edge in practice).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot into this one (bucket-wise addition); the
    /// result is exactly what one histogram fed both record streams would
    /// have reported.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// True if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean observed value (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` observation, capped at the
    /// true observed maximum. The estimate is exact for bucket-0 values and
    /// otherwise overshoots by less than 2x (one log2 bucket).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

/// Why admission accepted or refused work, as a dense counter index.
///
/// `Accepted` counts admitted submit requests; the rejection reasons cover
/// both submit rejections and session-open rejections (quota class
/// included), mapped from [`GatewayError`] by [`AdmitReason::from_error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum AdmitReason {
    /// Request admitted onto a shard queue.
    Accepted = 0,
    /// The session id was unknown (expired, closed, or never opened).
    UnknownSession,
    /// The session existed but its handshake had not completed.
    SessionNotEstablished,
    /// The tenant's live-session quota was exhausted (session open refused).
    SessionQuota,
    /// The tenant's queued-request quota was exhausted.
    QueueQuota,
    /// The tenant's endorsement budget was exhausted.
    EndorsementBudget,
    /// The target slot's queue hit the configured backpressure depth.
    Backpressure,
    /// A shard worker was unavailable (shutdown or crashed).
    RuntimeUnavailable,
    /// Any other error (wire, snapshot, crash-injection, ...).
    Other,
}

impl AdmitReason {
    /// Number of distinct reasons (the admission counter array length).
    pub const COUNT: usize = 9;

    /// Every reason, in counter order.
    pub const ALL: [AdmitReason; AdmitReason::COUNT] = [
        AdmitReason::Accepted,
        AdmitReason::UnknownSession,
        AdmitReason::SessionNotEstablished,
        AdmitReason::SessionQuota,
        AdmitReason::QueueQuota,
        AdmitReason::EndorsementBudget,
        AdmitReason::Backpressure,
        AdmitReason::RuntimeUnavailable,
        AdmitReason::Other,
    ];

    /// Stable label used in exposition output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AdmitReason::Accepted => "accepted",
            AdmitReason::UnknownSession => "unknown_session",
            AdmitReason::SessionNotEstablished => "session_not_established",
            AdmitReason::SessionQuota => "session_quota",
            AdmitReason::QueueQuota => "queue_quota",
            AdmitReason::EndorsementBudget => "endorsement_budget",
            AdmitReason::Backpressure => "backpressure",
            AdmitReason::RuntimeUnavailable => "runtime_unavailable",
            AdmitReason::Other => "other",
        }
    }

    /// Maps a gateway error to its rejection reason.
    #[must_use]
    pub fn from_error(err: &GatewayError) -> AdmitReason {
        match err {
            GatewayError::UnknownSession(_) => AdmitReason::UnknownSession,
            GatewayError::SessionNotEstablished(_) => AdmitReason::SessionNotEstablished,
            GatewayError::QuotaExceeded { resource, .. } => match resource {
                QuotaResource::Sessions => AdmitReason::SessionQuota,
                QuotaResource::QueuedRequests => AdmitReason::QueueQuota,
                QuotaResource::Endorsements => AdmitReason::EndorsementBudget,
            },
            GatewayError::Backpressure { .. } => AdmitReason::Backpressure,
            GatewayError::RuntimeUnavailable => AdmitReason::RuntimeUnavailable,
            _ => AdmitReason::Other,
        }
    }
}

/// The five pipeline stages a sampled request is stamped at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TraceStage {
    /// Admission control accepted the request (routing thread).
    Admitted = 0,
    /// The shard worker appended it to its slot queue.
    Enqueued,
    /// A drain sweep picked it out of the queue.
    DrainStart,
    /// The batch ECALL containing it returned.
    EcallDone,
    /// Its reply was handed to the response channel.
    ReplyDelivered,
}

/// Number of trace stages.
pub const TRACE_STAGES: usize = 5;

impl TraceStage {
    /// Every stage, in pipeline order.
    pub const ALL: [TraceStage; TRACE_STAGES] = [
        TraceStage::Admitted,
        TraceStage::Enqueued,
        TraceStage::DrainStart,
        TraceStage::EcallDone,
        TraceStage::ReplyDelivered,
    ];

    /// Stable label used in exposition output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceStage::Admitted => "admitted",
            TraceStage::Enqueued => "enqueued",
            TraceStage::DrainStart => "drain_start",
            TraceStage::EcallDone => "ecall_done",
            TraceStage::ReplyDelivered => "reply_delivered",
        }
    }
}

/// Read-side view of one sampled request's journey through the pipeline.
///
/// Stage timestamps come from the gateway's injected [`Clock`]
/// (`now_nanos`), so under [`crate::ManualClock`] they are exact,
/// reproducible values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// The sampled request's trace id (monotonically assigned, never 0).
    pub trace_id: u64,
    /// The session the request belonged to.
    pub session_id: u64,
    /// Clock nanos at each [`TraceStage`], `None` while unreached.
    pub stages: [Option<u64>; TRACE_STAGES],
}

impl TraceSpan {
    /// Timestamp recorded for one stage.
    #[must_use]
    pub fn stage(&self, stage: TraceStage) -> Option<u64> {
        self.stages[stage as usize]
    }

    /// True once all five stages carry a timestamp.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(Option::is_some)
    }

    /// True if the recorded stage timestamps never decrease in pipeline
    /// order (unrecorded stages are skipped).
    #[must_use]
    pub fn is_monotonic(&self) -> bool {
        let mut last = 0u64;
        for stamp in self.stages.iter().flatten() {
            if *stamp < last {
                return false;
            }
            last = *stamp;
        }
        true
    }
}

/// One journaled admission rejection, for postmortems. Carries labels and
/// counts only — never request contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryEvent {
    /// Clock nanos when the rejection was recorded.
    pub at_nanos: u64,
    /// Why admission refused the work.
    pub reason: AdmitReason,
    /// Owning tenant, when the error identified one.
    pub tenant: Option<Arc<str>>,
    /// Session id, when the rejection targeted a known session.
    pub session_id: Option<u64>,
    /// How many requests the rejection covered (batched admission rejects
    /// whole groups atomically).
    pub count: u64,
}

/// Tuning knobs for the telemetry subsystem, embedded in
/// [`crate::GatewayConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When false every record call returns immediately and
    /// snapshots come back empty — the E16 overhead-comparison baseline.
    pub enabled: bool,
    /// Sample every Nth admitted submit for tracing (1 traces everything,
    /// 0 disables tracing while keeping metrics).
    pub trace_sample_interval: u64,
    /// Trace ring capacity: how many recent sampled requests are retained.
    pub trace_capacity: usize,
    /// Event journal capacity: how many recent rejections are retained.
    pub event_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: true,
            trace_sample_interval: 64,
            trace_capacity: 64,
            event_capacity: 64,
        }
    }
}

/// One sampled request's ring slot. Stage cells store `nanos + 1` so 0 can
/// mean "unrecorded"; the id cell is 0 while the slot is being recycled,
/// which makes stale stage writes from an overwritten trace harmless.
#[derive(Debug)]
struct TraceCell {
    id: AtomicU64,
    session: AtomicU64,
    stages: [AtomicU64; TRACE_STAGES],
}

#[derive(Debug)]
struct TraceRing {
    next: AtomicU64,
    cells: Vec<TraceCell>,
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        TraceRing {
            next: AtomicU64::new(0),
            cells: (0..capacity)
                .map(|_| TraceCell {
                    id: AtomicU64::new(0),
                    session: AtomicU64::new(0),
                    stages: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
        }
    }

    fn cell(&self, id: u64) -> &TraceCell {
        &self.cells[((id - 1) % self.cells.len() as u64) as usize]
    }

    /// Claims the next trace id, recycles its ring slot, and stamps the
    /// `Admitted` stage. Returns 0 (no trace) when the ring has no capacity.
    fn begin(&self, session_id: u64, now_nanos: u64) -> u64 {
        if self.cells.is_empty() {
            return 0;
        }
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        let cell = self.cell(id);
        // Invalidate first so concurrent stage writers for the overwritten
        // trace id see a mismatch and drop their stamp.
        cell.id.store(0, Ordering::Release);
        cell.session.store(session_id, Ordering::Relaxed);
        for stage in &cell.stages[1..] {
            stage.store(0, Ordering::Relaxed);
        }
        cell.stages[TraceStage::Admitted as usize].store(now_nanos + 1, Ordering::Relaxed);
        cell.id.store(id, Ordering::Release);
        id
    }

    /// Stamps one stage of a live trace; silently drops the write if the
    /// ring slot has been recycled for a newer trace.
    fn stage(&self, trace_id: u64, stage: TraceStage, now_nanos: u64) {
        if trace_id == 0 || self.cells.is_empty() {
            return;
        }
        let cell = self.cell(trace_id);
        if cell.id.load(Ordering::Acquire) == trace_id {
            cell.stages[stage as usize].store(now_nanos + 1, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> Vec<TraceSpan> {
        let mut spans: Vec<TraceSpan> = self
            .cells
            .iter()
            .filter_map(|cell| {
                let id = cell.id.load(Ordering::Acquire);
                if id == 0 {
                    return None;
                }
                Some(TraceSpan {
                    trace_id: id,
                    session_id: cell.session.load(Ordering::Relaxed),
                    stages: std::array::from_fn(|i| match cell.stages[i].load(Ordering::Relaxed) {
                        0 => None,
                        stamp => Some(stamp - 1),
                    }),
                })
            })
            .collect();
        spans.sort_by_key(|span| span.trace_id);
        spans
    }
}

/// Per-shard metric registry, written only by the owning shard worker
/// (uncontended relaxed atomics) and merged on read — the histogram
/// equivalent of stitching [`crate::SlotStatsRow`] rows.
#[derive(Debug, Default)]
pub(crate) struct ShardTelemetry {
    /// Nanos a request waited in its slot queue before a drain picked it up.
    queue_wait_nanos: Histogram,
    /// Nanos one batch ECALL took (encode → enclave → decode).
    ecall_nanos: Histogram,
    /// Items per drained batch.
    batch_size: Histogram,
    /// Live gauge: total queued requests across the shard's slots, sampled
    /// at the start of each drain sweep.
    queue_depth: AtomicU64,
    /// Drain sweeps performed (so the gauge's freshness is legible).
    drain_sweeps: AtomicU64,
}

/// The telemetry hub: one per gateway, shared by routing threads, shard
/// workers, the checkpoint path, and the session executor.
///
/// All record methods are allocation-free; all except the (cold) rejection
/// journal are lock-free. When built disabled, every record call is a
/// single branch.
pub struct Telemetry {
    enabled: bool,
    clock: Arc<dyn Clock>,
    admission: [AtomicU64; AdmitReason::COUNT],
    shards: Vec<ShardTelemetry>,
    checkpoint_nanos: Histogram,
    delta_checkpoint_nanos: Histogram,
    restore_nanos: Histogram,
    executor_poll_nanos: Histogram,
    executor_wake_nanos: Histogram,
    checkpoint_slots_exported: AtomicU64,
    checkpoint_slots_skipped: AtomicU64,
    submit_seq: AtomicU64,
    trace_interval: u64,
    traces: TraceRing,
    events: Mutex<std::collections::VecDeque<TelemetryEvent>>,
    event_capacity: usize,
    ingest_parsed: AtomicU64,
    ingest_parse_errors: AtomicU64,
    ingest_quota_rejected: AtomicU64,
    net_connections_accepted: AtomicU64,
    net_connections_closed: AtomicU64,
    net_frames_in: AtomicU64,
    net_frames_out: AtomicU64,
    net_frame_errors: AtomicU64,
    net_idle_timeouts: AtomicU64,
    executor_timer_fires: AtomicU64,
    sessions_evicted: AtomicU64,
    migration_nanos: Histogram,
    migrations_completed: AtomicU64,
    migrations_aborted: AtomicU64,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.enabled)
            .field("shards", &self.shards.len())
            .field("trace_interval", &self.trace_interval)
            .finish_non_exhaustive()
    }
}

impl Telemetry {
    /// Builds a hub for `shards` shard workers, reading timestamps from the
    /// gateway's injected clock.
    #[must_use]
    pub(crate) fn new(config: &TelemetryConfig, clock: Arc<dyn Clock>, shards: usize) -> Telemetry {
        let enabled = config.enabled;
        Telemetry {
            enabled,
            clock,
            admission: std::array::from_fn(|_| AtomicU64::new(0)),
            shards: (0..shards).map(|_| ShardTelemetry::default()).collect(),
            checkpoint_nanos: Histogram::new(),
            delta_checkpoint_nanos: Histogram::new(),
            restore_nanos: Histogram::new(),
            executor_poll_nanos: Histogram::new(),
            executor_wake_nanos: Histogram::new(),
            checkpoint_slots_exported: AtomicU64::new(0),
            checkpoint_slots_skipped: AtomicU64::new(0),
            submit_seq: AtomicU64::new(0),
            trace_interval: if enabled {
                config.trace_sample_interval
            } else {
                0
            },
            traces: TraceRing::new(if enabled { config.trace_capacity } else { 0 }),
            events: Mutex::new(std::collections::VecDeque::with_capacity(if enabled {
                config.event_capacity
            } else {
                0
            })),
            event_capacity: if enabled { config.event_capacity } else { 0 },
            ingest_parsed: AtomicU64::new(0),
            ingest_parse_errors: AtomicU64::new(0),
            ingest_quota_rejected: AtomicU64::new(0),
            net_connections_accepted: AtomicU64::new(0),
            net_connections_closed: AtomicU64::new(0),
            net_frames_in: AtomicU64::new(0),
            net_frames_out: AtomicU64::new(0),
            net_frame_errors: AtomicU64::new(0),
            net_idle_timeouts: AtomicU64::new(0),
            executor_timer_fires: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
            migration_nanos: Histogram::new(),
            migrations_completed: AtomicU64::new(0),
            migrations_aborted: AtomicU64::new(0),
        }
    }

    /// Counts `n` TCP connections accepted by the socket front door.
    pub(crate) fn record_net_accepted(&self, n: u64) {
        if self.enabled {
            self.net_connections_accepted
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` front-door connections closed (any cause: clean EOF,
    /// protocol error, idle timeout, server shutdown).
    pub(crate) fn record_net_closed(&self, n: u64) {
        if self.enabled {
            self.net_connections_closed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` request frames decoded off front-door sockets.
    pub(crate) fn record_net_frames_in(&self, n: u64) {
        if self.enabled {
            self.net_frames_in.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` reply/ack frames written to front-door sockets.
    pub(crate) fn record_net_frames_out(&self, n: u64) {
        if self.enabled {
            self.net_frames_out.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` malformed/oversized frames that terminated a connection.
    pub(crate) fn record_net_frame_errors(&self, n: u64) {
        if self.enabled {
            self.net_frame_errors.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` connections closed by the idle-deadline timer.
    pub(crate) fn record_net_idle_timeouts(&self, n: u64) {
        if self.enabled {
            self.net_idle_timeouts.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` timer-wheel entries fired by the session executor.
    pub(crate) fn record_timer_fires(&self, n: u64) {
        if self.enabled {
            self.executor_timer_fires.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` stale pending sessions reclaimed by eviction.
    pub(crate) fn record_sessions_evicted(&self, n: u64) {
        if self.enabled {
            self.sessions_evicted.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` replay-ingest records parsed from a scenario source.
    ///
    /// Public (unlike the serving-path recorders) because the ingest driver
    /// lives outside this crate: a replay run mirrors its loader and
    /// admission accounting into the hub so recorded traffic is observable
    /// exactly like live traffic.
    pub fn record_ingest_parsed(&self, n: u64) {
        if self.enabled {
            self.ingest_parsed.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` malformed scenario lines the replay loader rejected
    /// (counted, never dropped silently).
    pub fn record_ingest_parse_errors(&self, n: u64) {
        if self.enabled {
            self.ingest_parse_errors.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` replayed requests terminally rejected by quota/admission
    /// during ingest (after any backpressure retry).
    pub fn record_ingest_quota_rejected(&self, n: u64) {
        if self.enabled {
            self.ingest_quota_rejected.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Whether recording is on (false for the zero-overhead baseline mode).
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current nanos from the gateway's injected clock (0 when disabled, so
    /// disabled hot paths skip the clock read entirely).
    pub(crate) fn now_nanos(&self) -> u64 {
        if self.enabled {
            self.clock.now_nanos()
        } else {
            0
        }
    }

    /// Counts `n` admitted submit requests.
    pub(crate) fn admit_accept(&self, n: u64) {
        if self.enabled {
            self.admission[AdmitReason::Accepted as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Counts `n` rejected requests under the error's reason and journals
    /// the rejection. Cold path: may take the (short) journal lock.
    pub(crate) fn admit_reject(&self, err: &GatewayError, n: u64, session_id: Option<u64>) {
        if !self.enabled {
            return;
        }
        let reason = AdmitReason::from_error(err);
        self.admission[reason as usize].fetch_add(n, Ordering::Relaxed);
        if self.event_capacity == 0 {
            return;
        }
        let tenant = match err {
            GatewayError::QuotaExceeded { tenant, .. }
            | GatewayError::Backpressure { tenant, .. }
            | GatewayError::SealedBlobRejected { tenant } => Some(Arc::clone(tenant)),
            _ => None,
        };
        let event = TelemetryEvent {
            at_nanos: self.clock.now_nanos(),
            reason,
            tenant,
            session_id,
            count: n,
        };
        let mut events = self
            .events
            .lock()
            .expect("telemetry event journal poisoned");
        if events.len() == self.event_capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// Reserves `n` submit sequence numbers for trace sampling — one atomic
    /// add per admitted *group*, not per request.
    pub(crate) fn submit_sampler(&self, n: usize) -> SubmitSampler {
        if self.trace_interval == 0 || self.traces.cells.is_empty() {
            return SubmitSampler {
                first: 0,
                interval: 0,
            };
        }
        SubmitSampler {
            first: self.submit_seq.fetch_add(n as u64, Ordering::Relaxed),
            interval: self.trace_interval,
        }
    }

    /// Starts a trace for one sampled request (stamps `Admitted` now).
    fn trace_begin(&self, session_id: u64) -> u64 {
        self.traces.begin(session_id, self.clock.now_nanos())
    }

    /// Stamps one stage of a sampled request's trace. `trace_id` 0 is the
    /// "not sampled" tag and returns immediately.
    pub(crate) fn trace_stage(&self, trace_id: u64, stage: TraceStage, now_nanos: u64) {
        if trace_id != 0 {
            self.traces.stage(trace_id, stage, now_nanos);
        }
    }

    /// Records how long a request sat queued before its drain (shard worker).
    pub(crate) fn record_queue_wait(&self, shard: usize, nanos: u64) {
        if self.enabled {
            self.shards[shard].queue_wait_nanos.record(nanos);
        }
    }

    /// Records one batch ECALL's latency (shard worker).
    pub(crate) fn record_ecall(&self, shard: usize, nanos: u64) {
        if self.enabled {
            self.shards[shard].ecall_nanos.record(nanos);
        }
    }

    /// Records one drained batch's item count (shard worker).
    pub(crate) fn record_batch_size(&self, shard: usize, items: u64) {
        if self.enabled {
            self.shards[shard].batch_size.record(items);
        }
    }

    /// Updates the shard's live queue-depth gauge at the start of a drain
    /// sweep (shard worker).
    pub(crate) fn record_drain_depth(&self, shard: usize, depth: u64) {
        if self.enabled {
            let shard = &self.shards[shard];
            shard.queue_depth.store(depth, Ordering::Relaxed);
            shard.drain_sweeps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a completed checkpoint's wall duration.
    pub(crate) fn record_checkpoint(&self, nanos: u64) {
        if self.enabled {
            self.checkpoint_nanos.record(nanos);
        }
    }

    /// Records a completed **delta** checkpoint's wall duration — kept as
    /// its own series (not folded into `checkpoint_nanos`) because the
    /// whole point of the incremental path is that its distribution sits
    /// far below the full-capture one; merging them would bury the claim.
    pub(crate) fn record_delta_checkpoint(&self, nanos: u64) {
        if self.enabled {
            self.delta_checkpoint_nanos.record(nanos);
        }
    }

    /// Counts a checkpoint's per-slot export decisions: `exported` slots
    /// paid an `EXPORT_STATE` ECALL, `skipped` slots were proven clean and
    /// paid nothing. The skip ratio is the E18 housekeeping claim made
    /// observable in production.
    pub(crate) fn count_checkpoint_slots(&self, exported: u64, skipped: u64) {
        if self.enabled {
            self.checkpoint_slots_exported
                .fetch_add(exported, Ordering::Relaxed);
            self.checkpoint_slots_skipped
                .fetch_add(skipped, Ordering::Relaxed);
        }
    }

    /// Records a committed live migration's wall duration (slot claim to
    /// post-commit fence).
    pub(crate) fn record_migration(&self, nanos: u64) {
        if self.enabled {
            self.migration_nanos.record(nanos);
            self.migrations_completed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a migration that failed closed back to its source shard
    /// (injected crash, export failure, or runtime teardown mid-protocol).
    pub(crate) fn record_migration_aborted(&self) {
        if self.enabled {
            self.migrations_aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a completed restore's wall duration.
    pub(crate) fn record_restore(&self, nanos: u64) {
        if self.enabled {
            self.restore_nanos.record(nanos);
        }
    }

    /// Records one executor task poll's duration.
    pub(crate) fn record_executor_poll(&self, nanos: u64) {
        if self.enabled {
            self.executor_poll_nanos.record(nanos);
        }
    }

    /// Records the delay between a task wake and the poll that served it.
    pub(crate) fn record_executor_wake(&self, nanos: u64) {
        if self.enabled {
            self.executor_wake_nanos.record(nanos);
        }
    }

    /// Merges every registry into a plain-value snapshot: per-shard
    /// histograms are folded together (and the per-shard gauges kept
    /// per-shard), traces and events are copied out.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut queue_wait_nanos = HistogramSnapshot::default();
        let mut ecall_nanos = HistogramSnapshot::default();
        let mut batch_size = HistogramSnapshot::default();
        let mut shard_queue_depth = Vec::with_capacity(self.shards.len());
        let mut shard_drain_sweeps = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            queue_wait_nanos.merge(&shard.queue_wait_nanos.snapshot());
            ecall_nanos.merge(&shard.ecall_nanos.snapshot());
            batch_size.merge(&shard.batch_size.snapshot());
            shard_queue_depth.push(shard.queue_depth.load(Ordering::Relaxed));
            shard_drain_sweeps.push(shard.drain_sweeps.load(Ordering::Relaxed));
        }
        TelemetrySnapshot {
            admission: AdmitReason::ALL
                .iter()
                .map(|&reason| {
                    (
                        reason,
                        self.admission[reason as usize].load(Ordering::Relaxed),
                    )
                })
                .collect(),
            shard_queue_depth,
            shard_drain_sweeps,
            queue_wait_nanos,
            ecall_nanos,
            batch_size,
            checkpoint_nanos: self.checkpoint_nanos.snapshot(),
            delta_checkpoint_nanos: self.delta_checkpoint_nanos.snapshot(),
            restore_nanos: self.restore_nanos.snapshot(),
            executor_poll_nanos: self.executor_poll_nanos.snapshot(),
            executor_wake_nanos: self.executor_wake_nanos.snapshot(),
            traces: self.traces.snapshot(),
            events: self
                .events
                .lock()
                .expect("telemetry event journal poisoned")
                .iter()
                .cloned()
                .collect(),
            ingest_parsed: self.ingest_parsed.load(Ordering::Relaxed),
            ingest_parse_errors: self.ingest_parse_errors.load(Ordering::Relaxed),
            ingest_quota_rejected: self.ingest_quota_rejected.load(Ordering::Relaxed),
            checkpoint_slots_exported: self.checkpoint_slots_exported.load(Ordering::Relaxed),
            checkpoint_slots_skipped: self.checkpoint_slots_skipped.load(Ordering::Relaxed),
            net_connections_accepted: self.net_connections_accepted.load(Ordering::Relaxed),
            net_connections_closed: self.net_connections_closed.load(Ordering::Relaxed),
            net_frames_in: self.net_frames_in.load(Ordering::Relaxed),
            net_frames_out: self.net_frames_out.load(Ordering::Relaxed),
            net_frame_errors: self.net_frame_errors.load(Ordering::Relaxed),
            net_idle_timeouts: self.net_idle_timeouts.load(Ordering::Relaxed),
            executor_timer_fires: self.executor_timer_fires.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
            migration_nanos: self.migration_nanos.snapshot(),
            migrations_completed: self.migrations_completed.load(Ordering::Relaxed),
            migrations_aborted: self.migrations_aborted.load(Ordering::Relaxed),
        }
    }
}

/// A reserved block of submit sequence numbers; decides which requests in
/// an admitted group get trace ids (see [`Telemetry::submit_sampler`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SubmitSampler {
    first: u64,
    interval: u64,
}

impl SubmitSampler {
    /// Returns the trace tag for the group's `offset`-th request: a fresh
    /// trace id if that sequence number is sampled, 0 otherwise.
    pub(crate) fn tag(&self, telemetry: &Telemetry, offset: usize, session_id: u64) -> u64 {
        if self.interval == 0 || !(self.first + offset as u64).is_multiple_of(self.interval) {
            0
        } else {
            telemetry.trace_begin(session_id)
        }
    }
}

/// Plain-value snapshot of the whole telemetry hub, renderable as
/// Prometheus-style text exposition and as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Admission decisions per [`AdmitReason`], in counter order.
    pub admission: Vec<(AdmitReason, u64)>,
    /// Live queued-request gauge per shard, sampled at drain time.
    pub shard_queue_depth: Vec<u64>,
    /// Drain sweeps performed per shard.
    pub shard_drain_sweeps: Vec<u64>,
    /// Queue-wait latency, merged across shards (nanos).
    pub queue_wait_nanos: HistogramSnapshot,
    /// Batch-ECALL latency, merged across shards (nanos).
    pub ecall_nanos: HistogramSnapshot,
    /// Drained batch sizes, merged across shards (items).
    pub batch_size: HistogramSnapshot,
    /// Full-checkpoint durations (nanos).
    pub checkpoint_nanos: HistogramSnapshot,
    /// Delta-checkpoint durations (nanos) — separate from
    /// `checkpoint_nanos` so the incremental path's speedup is visible in
    /// the exposition, not averaged away.
    pub delta_checkpoint_nanos: HistogramSnapshot,
    /// Restore durations (nanos).
    pub restore_nanos: HistogramSnapshot,
    /// Executor poll durations (nanos).
    pub executor_poll_nanos: HistogramSnapshot,
    /// Executor wake-to-poll delays (nanos).
    pub executor_wake_nanos: HistogramSnapshot,
    /// Recent sampled request traces, oldest trace id first.
    pub traces: Vec<TraceSpan>,
    /// Recent admission rejections, oldest first.
    pub events: Vec<TelemetryEvent>,
    /// Replay-ingest records parsed from scenario sources.
    pub ingest_parsed: u64,
    /// Malformed scenario lines the replay loader rejected.
    pub ingest_parse_errors: u64,
    /// Replayed requests terminally rejected by quota/admission during
    /// ingest.
    pub ingest_quota_rejected: u64,
    /// Pool slots whose checkpoint capture paid an `EXPORT_STATE` ECALL.
    pub checkpoint_slots_exported: u64,
    /// Pool slots a delta checkpoint proved clean and skipped (no barrier,
    /// no seal, no ECALL).
    pub checkpoint_slots_skipped: u64,
    /// TCP connections accepted by the socket front door.
    pub net_connections_accepted: u64,
    /// Front-door connections closed (any cause).
    pub net_connections_closed: u64,
    /// Request frames decoded off front-door sockets.
    pub net_frames_in: u64,
    /// Reply/ack frames written to front-door sockets.
    pub net_frames_out: u64,
    /// Malformed/oversized frames that terminated a connection.
    pub net_frame_errors: u64,
    /// Connections closed by the idle-deadline timer.
    pub net_idle_timeouts: u64,
    /// Timer-wheel entries fired by the session executor.
    pub executor_timer_fires: u64,
    /// Stale pending sessions reclaimed by eviction.
    pub sessions_evicted: u64,
    /// Committed live-migration durations (nanos), slot claim to
    /// post-commit fence.
    pub migration_nanos: HistogramSnapshot,
    /// Live migrations committed (the slot now serves from its new shard).
    pub migrations_completed: u64,
    /// Live migrations that failed closed back to their source shard.
    pub migrations_aborted: u64,
}

/// Exposition names for the snapshot's histograms, paired with accessors —
/// single source of truth for rendering and tests.
const HISTOGRAM_NAMES: [&str; 9] = [
    "glimmer_queue_wait_nanos",
    "glimmer_ecall_nanos",
    "glimmer_batch_size",
    "glimmer_checkpoint_nanos",
    "glimmer_delta_checkpoint_nanos",
    "glimmer_restore_nanos",
    "glimmer_executor_poll_nanos",
    "glimmer_executor_wake_nanos",
    "glimmer_migration_nanos",
];

impl TelemetrySnapshot {
    /// The snapshot's histograms with their exposition names, in render
    /// order.
    #[must_use]
    pub fn histograms(&self) -> [(&'static str, &HistogramSnapshot); 9] {
        [
            (HISTOGRAM_NAMES[0], &self.queue_wait_nanos),
            (HISTOGRAM_NAMES[1], &self.ecall_nanos),
            (HISTOGRAM_NAMES[2], &self.batch_size),
            (HISTOGRAM_NAMES[3], &self.checkpoint_nanos),
            (HISTOGRAM_NAMES[4], &self.delta_checkpoint_nanos),
            (HISTOGRAM_NAMES[5], &self.restore_nanos),
            (HISTOGRAM_NAMES[6], &self.executor_poll_nanos),
            (HISTOGRAM_NAMES[7], &self.executor_wake_nanos),
            (HISTOGRAM_NAMES[8], &self.migration_nanos),
        ]
    }

    /// Every numeric sample in render order, keyed by canonical
    /// (quote-free) name: `glimmer_admission_total{reason=accepted}`. Both
    /// the Prometheus and JSON renderers derive from this list, which is
    /// what makes the formats round-trip-equivalent by construction.
    #[must_use]
    pub fn sample_lines(&self) -> Vec<(String, u64)> {
        let mut lines = Vec::new();
        for &(reason, count) in &self.admission {
            lines.push((
                format!("glimmer_admission_total{{reason={}}}", reason.label()),
                count,
            ));
        }
        for (shard, &depth) in self.shard_queue_depth.iter().enumerate() {
            lines.push((format!("glimmer_shard_queue_depth{{shard={shard}}}"), depth));
        }
        for (shard, &sweeps) in self.shard_drain_sweeps.iter().enumerate() {
            lines.push((
                format!("glimmer_shard_drain_sweeps_total{{shard={shard}}}"),
                sweeps,
            ));
        }
        for (outcome, count) in [
            ("parsed", self.ingest_parsed),
            ("parse_error", self.ingest_parse_errors),
            ("quota_rejected", self.ingest_quota_rejected),
        ] {
            lines.push((
                format!("glimmer_ingest_records_total{{outcome={outcome}}}"),
                count,
            ));
        }
        for (outcome, count) in [
            ("exported", self.checkpoint_slots_exported),
            ("skipped", self.checkpoint_slots_skipped),
        ] {
            lines.push((
                format!("glimmer_checkpoint_slots_total{{outcome={outcome}}}"),
                count,
            ));
        }
        for (outcome, count) in [
            ("completed", self.migrations_completed),
            ("aborted", self.migrations_aborted),
        ] {
            lines.push((
                format!("glimmer_migrations_total{{outcome={outcome}}}"),
                count,
            ));
        }
        for (event, count) in [
            ("accepted", self.net_connections_accepted),
            ("closed", self.net_connections_closed),
        ] {
            lines.push((
                format!("glimmer_net_connections_total{{event={event}}}"),
                count,
            ));
        }
        for (direction, count) in [("in", self.net_frames_in), ("out", self.net_frames_out)] {
            lines.push((
                format!("glimmer_net_frames_total{{direction={direction}}}"),
                count,
            ));
        }
        lines.push((
            "glimmer_net_frame_errors_total".to_string(),
            self.net_frame_errors,
        ));
        lines.push((
            "glimmer_net_idle_timeouts_total".to_string(),
            self.net_idle_timeouts,
        ));
        lines.push((
            "glimmer_executor_timer_fires_total".to_string(),
            self.executor_timer_fires,
        ));
        lines.push((
            "glimmer_sessions_evicted_total".to_string(),
            self.sessions_evicted,
        ));
        for (name, hist) in self.histograms() {
            let mut cumulative = 0u64;
            let top = hist
                .buckets
                .iter()
                .rposition(|&c| c != 0)
                .unwrap_or(0)
                .min(HISTOGRAM_BUCKETS - 2);
            for (i, &bucket) in hist.buckets.iter().enumerate().take(top + 1) {
                cumulative += bucket;
                lines.push((
                    format!("{name}_bucket{{le={}}}", bucket_upper_bound(i)),
                    cumulative,
                ));
            }
            lines.push((format!("{name}_bucket{{le=+Inf}}"), hist.count));
            lines.push((format!("{name}_sum"), hist.sum));
            lines.push((format!("{name}_count"), hist.count));
            lines.push((format!("{name}_max"), hist.max));
            lines.push((format!("{name}_p50"), hist.p50()));
            lines.push((format!("{name}_p90"), hist.p90()));
            lines.push((format!("{name}_p99"), hist.p99()));
        }
        lines
    }

    /// [`TelemetrySnapshot::sample_lines`] as a map, for order-insensitive
    /// comparison against parsed exposition output.
    #[must_use]
    pub fn samples(&self) -> BTreeMap<String, u64> {
        self.sample_lines().into_iter().collect()
    }

    /// Renders Prometheus-style text exposition: `# `-prefixed comment
    /// lines, then one `name{label="value"} count` sample per line.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# Glimmer gateway telemetry (host-side pipeline only;\n");
        out.push_str("# no payload data — see ARCHITECTURE.md \"Telemetry\").\n");
        out.push_str("# Histogram `le` bounds are inclusive log2 upper bounds.\n");
        for (key, value) in self.sample_lines() {
            out.push_str(&quote_labels(&key));
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders the snapshot as JSON: the canonical sample map plus the
    /// trace spans and rejection events.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"samples\": {");
        let lines = self.sample_lines();
        for (i, (key, value)) in lines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            push_json_string(&mut out, key);
            out.push_str(": ");
            out.push_str(&value.to_string());
        }
        out.push_str("\n  },\n  \"traces\": [");
        for (i, span) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"trace_id\": {}, \"session_id\": {}, \"stages\": {{",
                span.trace_id, span.session_id
            ));
            let mut first = true;
            for stage in TraceStage::ALL {
                if let Some(stamp) = span.stage(stage) {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    push_json_string(&mut out, stage.label());
                    out.push_str(&format!(": {stamp}"));
                }
            }
            out.push_str("}}");
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"at_nanos\": {}, \"reason\": ",
                event.at_nanos
            ));
            push_json_string(&mut out, event.reason.label());
            if let Some(tenant) = &event.tenant {
                out.push_str(", \"tenant\": ");
                push_json_string(&mut out, tenant);
            }
            if let Some(session) = event.session_id {
                out.push_str(&format!(", \"session_id\": {session}"));
            }
            out.push_str(&format!(", \"count\": {}}}", event.count));
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Re-quotes a canonical sample key for Prometheus output:
/// `name{reason=accepted}` becomes `name{reason="accepted"}`.
fn quote_labels(key: &str) -> String {
    let Some(open) = key.find('{') else {
        return key.to_string();
    };
    let (name, rest) = key.split_at(open);
    let labels = rest
        .trim_start_matches('{')
        .trim_end_matches('}')
        .split(',')
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => format!("{k}=\"{v}\""),
            None => pair.to_string(),
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{name}{{{labels}}}")
}

/// Appends a JSON string literal (escaping backslash, quote, and control
/// characters — everything telemetry labels can contain).
fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses Prometheus-style text exposition back into the canonical sample
/// map: comment and blank lines are skipped, label quotes are stripped, and
/// each remaining line must be `key value` with an unsigned integer value.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("exposition line without a value: {line:?}"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("non-integer sample value in line: {line:?}"))?;
        samples.insert(key.replace('"', ""), value);
    }
    Ok(samples)
}

/// Parses the `"samples"` object out of [`TelemetrySnapshot::render_json`]
/// output into the canonical sample map. A minimal hand-rolled scanner —
/// the workspace is dependency-free by design — that understands exactly
/// the string-key / unsigned-integer-value shape the renderer emits.
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn parse_json_samples(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let start = text
        .find("\"samples\"")
        .ok_or_else(|| "no \"samples\" key in JSON".to_string())?;
    let rest = &text[start + "\"samples\"".len()..];
    let brace = rest
        .find('{')
        .ok_or_else(|| "no object after \"samples\"".to_string())?;
    let mut chars = rest[brace + 1..].char_indices().peekable();
    let body = &rest[brace + 1..];
    let mut samples = BTreeMap::new();
    loop {
        // Skip whitespace and separators to the next key or the end brace.
        let key_start = loop {
            match chars.next() {
                None => return Err("unterminated samples object".to_string()),
                Some((_, c)) if c.is_whitespace() || c == ',' => {}
                Some((_, '}')) => return Ok(samples),
                Some((i, '"')) => break i + 1,
                Some((i, c)) => return Err(format!("unexpected {c:?} at samples offset {i}")),
            }
        };
        let mut key = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated JSON string".to_string()),
                Some((_, '"')) => break,
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => key.push('"'),
                    Some((_, '\\')) => key.push('\\'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (_, d) = chars.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + d.to_digit(16).ok_or("bad \\u escape digit")?;
                        }
                        key.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                },
                Some((_, c)) => key.push(c),
            }
        }
        let _ = key_start; // offsets only matter for error messages above
                           // Expect `: <integer>`.
        loop {
            match chars.next() {
                None => return Err("missing value after key".to_string()),
                Some((_, c)) if c.is_whitespace() => {}
                Some((_, ':')) => break,
                Some((i, c)) => return Err(format!("expected ':' got {c:?} at offset {i}")),
            }
        }
        let mut digits = String::new();
        let value = loop {
            match chars.peek() {
                None => return Err("unterminated value".to_string()),
                Some(&(_, c)) if c.is_ascii_digit() => {
                    digits.push(c);
                    chars.next();
                }
                Some(&(_, c)) if c.is_whitespace() && digits.is_empty() => {
                    chars.next();
                }
                Some(&(i, c)) => {
                    if digits.is_empty() {
                        return Err(format!("expected digits got {c:?} at offset {i}"));
                    }
                    break digits
                        .parse::<u64>()
                        .map_err(|_| format!("sample value out of range: {digits}"))?;
                }
            }
        };
        let _ = body;
        samples.insert(key, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use proptest::prelude::*;

    fn test_hub(shards: usize, interval: u64) -> (Arc<ManualClock>, Telemetry) {
        let clock = Arc::new(ManualClock::new());
        let hub = Telemetry::new(
            &TelemetryConfig {
                trace_sample_interval: interval,
                ..TelemetryConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
            shards,
        );
        (clock, hub)
    }

    #[test]
    fn bucket_layout_is_exhaustive_and_ordered() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let hist = Histogram::new();
        for v in [0u64, 10, 20, 100, 1000, 1000, 1000, 5000, 100_000, 100_000] {
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.max, 100_000);
        // p50 lands in 1000's bucket [512, 1024); estimate is its upper bound.
        assert_eq!(snap.p50(), 1023);
        // p99 / p100-ish land in the max's bucket, capped at the true max.
        assert_eq!(snap.p99(), 100_000);
        assert_eq!(snap.quantile(1.0), 100_000);
        assert_eq!(snap.quantile(0.0), 0);
        assert!((snap.mean() - 20_813.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = Histogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn every_value_lands_inside_its_bucket(value in any::<u64>()) {
            let i = bucket_index(value);
            prop_assert!(i < HISTOGRAM_BUCKETS);
            prop_assert!(bucket_lower_bound(i) <= value);
            prop_assert!(value <= bucket_upper_bound(i));
        }

        #[test]
        fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }

        #[test]
        fn merge_equals_combined_recording(
            left in proptest::collection::vec(any::<u64>(), 0..64),
            right in proptest::collection::vec(any::<u64>(), 0..64),
        ) {
            let a = Histogram::new();
            let b = Histogram::new();
            let combined = Histogram::new();
            for &v in &left {
                a.record(v);
                combined.record(v);
            }
            for &v in &right {
                b.record(v);
                combined.record(v);
            }
            let mut merged = a.snapshot();
            merged.merge(&b.snapshot());
            prop_assert_eq!(merged, combined.snapshot());
        }

        #[test]
        fn quantile_estimates_bound_the_true_rank_value(
            mut values in proptest::collection::vec(any::<u64>(), 1..64),
            q_millis in 0u64..=1000,
        ) {
            let hist = Histogram::new();
            for &v in &values {
                hist.record(v);
            }
            let snap = hist.snapshot();
            let q = q_millis as f64 / 1000.0;
            let estimate = snap.quantile(q);
            values.sort_unstable();
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            // The estimate sits in the true value's bucket (capped at max):
            // never below the true value's bucket lower bound, never above
            // the observed maximum.
            prop_assert!(estimate >= bucket_lower_bound(bucket_index(truth)));
            prop_assert!(estimate <= snap.max);
        }
    }

    #[test]
    fn sampler_draws_every_interval_th_submit() {
        let (_clock, hub) = test_hub(1, 4);
        // Reserve 8 sequence numbers: offsets 0 and 4 are multiples of 4.
        let sampler = hub.submit_sampler(8);
        let tags: Vec<u64> = (0..8).map(|off| sampler.tag(&hub, off, 7)).collect();
        assert!(tags[0] != 0 && tags[4] != 0);
        assert_eq!(tags.iter().filter(|&&t| t != 0).count(), 2);
        // The next reservation continues the sequence: offsets 0..4 cover
        // seq 8..12, so only seq 8 (offset 0) samples.
        let sampler = hub.submit_sampler(4);
        let tags: Vec<u64> = (0..4).map(|off| sampler.tag(&hub, off, 7)).collect();
        assert_eq!(tags.iter().filter(|&&t| t != 0).count(), 1);
    }

    #[test]
    fn trace_ring_recycles_and_guards_stale_writes() {
        let clock = Arc::new(ManualClock::new());
        let hub = Telemetry::new(
            &TelemetryConfig {
                trace_sample_interval: 1,
                trace_capacity: 2,
                ..TelemetryConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
            1,
        );
        let sampler = hub.submit_sampler(3);
        let t1 = sampler.tag(&hub, 0, 101);
        let t2 = sampler.tag(&hub, 1, 102);
        let t3 = sampler.tag(&hub, 2, 103); // recycles t1's ring slot
        clock.advance_nanos(10);
        hub.trace_stage(t1, TraceStage::Enqueued, 10); // stale: must be dropped
        hub.trace_stage(t3, TraceStage::Enqueued, 10);
        let spans = hub.snapshot().traces;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace_id, t2);
        assert_eq!(spans[1].trace_id, t3);
        assert_eq!(spans[1].session_id, 103);
        assert_eq!(spans[1].stage(TraceStage::Enqueued), Some(10));
        assert!(spans.iter().all(TraceSpan::is_monotonic));
        let _ = t1;
    }

    #[test]
    fn disabled_hub_records_nothing() {
        let clock = Arc::new(ManualClock::new());
        let hub = Telemetry::new(
            &TelemetryConfig {
                enabled: false,
                ..TelemetryConfig::default()
            },
            clock as Arc<dyn Clock>,
            2,
        );
        assert!(!hub.enabled());
        hub.admit_accept(5);
        hub.admit_reject(&GatewayError::RuntimeUnavailable, 2, None);
        hub.record_ecall(0, 100);
        hub.record_queue_wait(1, 100);
        assert_eq!(hub.submit_sampler(10).tag(&hub, 0, 1), 0);
        let snap = hub.snapshot();
        assert!(snap.admission.iter().all(|&(_, n)| n == 0));
        assert!(snap.ecall_nanos.is_empty());
        assert!(snap.traces.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn event_journal_is_bounded_and_fifo() {
        let clock = Arc::new(ManualClock::new());
        let hub = Telemetry::new(
            &TelemetryConfig {
                event_capacity: 2,
                ..TelemetryConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
            1,
        );
        for session in 1..=3u64 {
            clock.advance_nanos(1);
            hub.admit_reject(&GatewayError::UnknownSession(session), 1, Some(session));
        }
        let events = hub.snapshot().events;
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].session_id, Some(2));
        assert_eq!(events[1].session_id, Some(3));
        assert_eq!(events[1].at_nanos, 3);
        assert_eq!(events[1].reason, AdmitReason::UnknownSession);
    }

    #[test]
    fn exposition_and_json_round_trip_to_identical_samples() {
        let (clock, hub) = test_hub(2, 1);
        hub.admit_accept(41);
        hub.admit_reject(
            &GatewayError::Backpressure {
                tenant: Arc::from("iot-telemetry.example"),
                slot: 1,
                depth: 9,
            },
            1,
            Some(12),
        );
        hub.record_queue_wait(0, 500);
        hub.record_queue_wait(1, 9_000);
        hub.record_ecall(0, 123_456);
        hub.record_batch_size(0, 32);
        hub.record_drain_depth(0, 7);
        hub.record_checkpoint(1_000_000);
        hub.record_delta_checkpoint(50_000);
        hub.count_checkpoint_slots(2, 38);
        clock.advance_nanos(77);
        let tag = hub.submit_sampler(1).tag(&hub, 0, 12);
        hub.trace_stage(tag, TraceStage::ReplyDelivered, 99);
        let snap = hub.snapshot();

        let prom = snap.render_prometheus();
        let json = snap.render_json();
        let from_prom = parse_exposition(&prom).expect("exposition parses");
        let from_json = parse_json_samples(&json).expect("JSON parses");
        assert_eq!(from_prom, from_json);
        assert_eq!(from_prom, snap.samples());
        assert_eq!(
            from_prom["glimmer_admission_total{reason=accepted}"], 41,
            "canonical keys are quote-free"
        );
        assert_eq!(from_prom["glimmer_admission_total{reason=backpressure}"], 1);
        assert_eq!(from_prom["glimmer_shard_queue_depth{shard=0}"], 7);
        assert_eq!(from_prom["glimmer_ecall_nanos_count"], 1);
        assert!(from_prom.contains_key("glimmer_ecall_nanos_p50"));
        assert!(from_prom.contains_key("glimmer_ecall_nanos_p99"));
        assert!(from_prom.contains_key("glimmer_queue_wait_nanos_p50"));
        assert!(from_prom.contains_key("glimmer_queue_wait_nanos_p99"));
        assert_eq!(
            from_prom["glimmer_checkpoint_slots_total{outcome=exported}"],
            2
        );
        assert_eq!(
            from_prom["glimmer_checkpoint_slots_total{outcome=skipped}"],
            38
        );
        assert_eq!(from_prom["glimmer_delta_checkpoint_nanos_count"], 1);
        assert_eq!(from_prom["glimmer_delta_checkpoint_nanos_sum"], 50_000);
        assert_eq!(from_prom["glimmer_checkpoint_nanos_count"], 1);
        // The rendered forms carry the quoted/structured variants.
        assert!(prom.contains("glimmer_admission_total{reason=\"accepted\"} 41"));
        assert!(prom.contains("glimmer_queue_wait_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(json.contains("\"tenant\": \"iot-telemetry.example\""));
        assert!(json.contains("\"reply_delivered\": 99"));
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(parse_exposition("metric_without_value").is_err());
        assert!(parse_exposition("metric abc").is_err());
        assert!(parse_json_samples("{}").is_err());
        assert!(parse_json_samples("{\"samples\": {\"k\": }}").is_err());
        assert!(parse_json_samples("{\"samples\": {\"k\" 1}}").is_err());
        // Comments, blanks and trailing sections are fine.
        let ok = parse_exposition("# c\n\nm 3\n").unwrap();
        assert_eq!(ok["m"], 3);
    }
}
