//! Typed gateway rejections.

use crate::checkpoint::CrashPoint;
use crate::runtime::BarrierOp;
use glimmer_core::GlimmerError;
use std::sync::Arc;

/// Which per-tenant limit an admission decision tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaResource {
    /// `TenantQuota::max_sessions`.
    Sessions,
    /// `TenantQuota::max_queued`.
    QueuedRequests,
    /// `TenantQuota::endorsement_budget`.
    Endorsements,
}

impl core::fmt::Display for QuotaResource {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuotaResource::Sessions => write!(f, "sessions"),
            QuotaResource::QueuedRequests => write!(f, "queued requests"),
            QuotaResource::Endorsements => write!(f, "endorsements"),
        }
    }
}

/// Errors returned by the gateway's admission and serving paths.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayError {
    /// The named tenant is not enrolled.
    UnknownTenant(String),
    /// Two tenants were enrolled under the same name.
    DuplicateTenant(String),
    /// No session with this id exists.
    UnknownSession(u64),
    /// The tenant has no pool slot with this index.
    UnknownSlot {
        /// The tenant whose pool was addressed.
        tenant: String,
        /// The out-of-range slot index.
        slot: usize,
    },
    /// The session exists but its handshake has not completed.
    SessionNotEstablished(u64),
    /// The session's handshake already completed.
    SessionAlreadyEstablished(u64),
    /// The slot's queue is full; the caller should back off and retry.
    Backpressure {
        /// Owning tenant — the gateway's interned label (an `Arc<str>`
        /// clone), so the throttle/backpressure rejection path never
        /// allocates a fresh `String` per rejected request.
        tenant: Arc<str>,
        /// The overloaded slot.
        slot: usize,
        /// Its queue depth at rejection time.
        depth: usize,
    },
    /// A per-tenant quota is exhausted.
    QuotaExceeded {
        /// The tenant whose quota tripped (interned label; see
        /// [`GatewayError::Backpressure`]).
        tenant: Arc<str>,
        /// Which limit.
        resource: QuotaResource,
    },
    /// A migration named a target shard outside the configured fleet.
    UnknownShard {
        /// The requested shard index.
        shard: usize,
        /// How many shards the gateway runs.
        shards: usize,
    },
    /// A shard worker thread is gone (the runtime is shutting down or a
    /// worker panicked), so the command could not be served.
    RuntimeUnavailable,
    /// An enclave refused a sealed or AEAD-protected input for this tenant:
    /// a tampered/spliced sealed state blob on the restore path, or an
    /// encrypted mask delivery that failed channel authentication. The
    /// tenant label is the gateway's interned `Arc<str>` (no allocation per
    /// rejection, matching the quota/backpressure errors).
    SealedBlobRejected {
        /// The tenant whose sealed input was rejected.
        tenant: Arc<str>,
    },
    /// A snapshot and the restore-time configuration disagree (different
    /// tenant set, measurement, or pool shape) — restore fails closed before
    /// touching any enclave.
    SnapshotMismatch {
        /// What disagreed.
        reason: &'static str,
    },
    /// Snapshot bytes failed envelope validation (truncation, bit rot,
    /// version skew, malformed payload).
    SnapshotCorrupt(glimmer_wire::WireError),
    /// A delta snapshot chain failed validation: a delta claims a base
    /// epoch/header that does not match the frame it was applied to (splice
    /// or reorder), or the chain has a gap. Restore fails closed before
    /// touching any enclave.
    SnapshotChainBroken {
        /// What broke.
        reason: &'static str,
    },
    /// A quiesce claim was refused because another operation already holds
    /// it. Covers both scopes: a whole-gateway barrier (checkpoint or
    /// shutdown) refused while another fleet-wide operation held it, and a
    /// *slot-level* claim — a streamed/delta capture and a live migration
    /// contending for the same slot, or a fleet pause finding a slot
    /// mid-migration. Interleaving the underlying worker pauses would
    /// deadlock the shard workers (each paused waiting for the other
    /// operation's release), so the loser fails typed and the caller
    /// retries after the winner finishes — except after shutdown, whose
    /// claim is terminal.
    BarrierConflict {
        /// The operation currently holding the barrier.
        in_progress: BarrierOp,
        /// The operation that was refused.
        requested: BarrierOp,
    },
    /// An injected crash fault fired at the given point (test harness only;
    /// the deterministic stand-in for the process dying there).
    CrashInjected(CrashPoint),
    /// An underlying Glimmer/enclave operation failed.
    Glimmer(GlimmerError),
}

impl core::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GatewayError::UnknownTenant(name) => write!(f, "unknown tenant {name:?}"),
            GatewayError::DuplicateTenant(name) => {
                write!(f, "tenant {name:?} enrolled more than once")
            }
            GatewayError::UnknownSession(id) => write!(f, "unknown session {id}"),
            GatewayError::UnknownSlot { tenant, slot } => {
                write!(f, "tenant {tenant:?} has no pool slot {slot}")
            }
            GatewayError::SessionNotEstablished(id) => {
                write!(f, "session {id} has not completed its handshake")
            }
            GatewayError::SessionAlreadyEstablished(id) => {
                write!(f, "session {id} already completed its handshake")
            }
            GatewayError::Backpressure {
                tenant,
                slot,
                depth,
            } => write!(
                f,
                "backpressure: tenant {tenant:?} slot {slot} queue depth {depth}"
            ),
            GatewayError::QuotaExceeded { tenant, resource } => {
                write!(f, "tenant {tenant:?} exceeded its {resource} quota")
            }
            GatewayError::UnknownShard { shard, shards } => {
                write!(f, "no shard {shard} (the fleet runs {shards})")
            }
            GatewayError::RuntimeUnavailable => {
                write!(f, "gateway runtime unavailable (shard worker stopped)")
            }
            GatewayError::SealedBlobRejected { tenant } => {
                write!(f, "enclave rejected sealed input for tenant {tenant:?}")
            }
            GatewayError::SnapshotMismatch { reason } => {
                write!(
                    f,
                    "snapshot does not match the restore configuration: {reason}"
                )
            }
            GatewayError::SnapshotCorrupt(e) => write!(f, "snapshot corrupt: {e}"),
            GatewayError::SnapshotChainBroken { reason } => {
                write!(f, "snapshot delta chain broken: {reason}")
            }
            GatewayError::BarrierConflict {
                in_progress,
                requested,
            } => write!(
                f,
                "cannot {requested}: a {in_progress} already holds the quiesce barrier"
            ),
            GatewayError::CrashInjected(point) => {
                write!(f, "injected crash fault at {point}")
            }
            GatewayError::Glimmer(e) => write!(f, "glimmer error: {e}"),
        }
    }
}

impl std::error::Error for GatewayError {}

impl From<GlimmerError> for GatewayError {
    fn from(e: GlimmerError) -> Self {
        GatewayError::Glimmer(e)
    }
}

/// Result alias for gateway operations.
pub type Result<T> = core::result::Result<T, GatewayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        for (err, needle) in [
            (
                GatewayError::UnknownTenant("maps".to_string()),
                "unknown tenant",
            ),
            (
                GatewayError::DuplicateTenant("maps".to_string()),
                "more than once",
            ),
            (GatewayError::UnknownSession(7), "unknown session 7"),
            (
                GatewayError::UnknownSlot {
                    tenant: "iot".to_string(),
                    slot: 9,
                },
                "no pool slot 9",
            ),
            (GatewayError::SessionNotEstablished(8), "handshake"),
            (GatewayError::SessionAlreadyEstablished(9), "already"),
            (
                GatewayError::Backpressure {
                    tenant: Arc::from("iot"),
                    slot: 2,
                    depth: 64,
                },
                "backpressure",
            ),
            (
                GatewayError::QuotaExceeded {
                    tenant: Arc::from("iot"),
                    resource: QuotaResource::Endorsements,
                },
                "endorsements",
            ),
            (
                GatewayError::UnknownShard {
                    shard: 4,
                    shards: 2,
                },
                "no shard 4",
            ),
            (GatewayError::RuntimeUnavailable, "runtime unavailable"),
            (
                GatewayError::SealedBlobRejected {
                    tenant: Arc::from("iot"),
                },
                "sealed input",
            ),
            (
                GatewayError::SnapshotMismatch {
                    reason: "tenant set",
                },
                "tenant set",
            ),
            (
                GatewayError::SnapshotCorrupt(glimmer_wire::WireError::BadMagic),
                "snapshot corrupt",
            ),
            (
                GatewayError::SnapshotChainBroken {
                    reason: "gap in delta chain",
                },
                "chain broken",
            ),
            (
                GatewayError::BarrierConflict {
                    in_progress: BarrierOp::Checkpoint,
                    requested: BarrierOp::Shutdown,
                },
                "quiesce barrier",
            ),
            (
                GatewayError::BarrierConflict {
                    in_progress: BarrierOp::Rebalance,
                    requested: BarrierOp::Checkpoint,
                },
                "a rebalance already holds",
            ),
            (
                GatewayError::CrashInjected(CrashPoint::BeforeRestore),
                "injected crash",
            ),
            (
                GatewayError::Glimmer(GlimmerError::NotProvisioned("key")),
                "glimmer error",
            ),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
        for resource in [
            QuotaResource::Sessions,
            QuotaResource::QueuedRequests,
            QuotaResource::Endorsements,
        ] {
            assert!(!resource.to_string().is_empty());
        }
        let from: GatewayError = GlimmerError::Protocol("x").into();
        assert!(matches!(from, GatewayError::Glimmer(_)));
    }
}
