//! The gateway facade: admission, routing, and batched serving.

use crate::checkpoint::{
    ChainBase, CrashHooks, CrashPoint, DeltaSlot, DeltaTenant, GatewayDelta, GatewaySnapshot,
    NoCrash, SessionRecord, SlotSnapshot, SnapshotChain, TenantSnapshot, GATEWAY_DELTA_KIND,
    GATEWAY_SNAPSHOT_KIND,
};
use crate::clock::{Clock, SystemClock};
use crate::config::{GatewayConfig, TenantConfig, TenantQuota};
use crate::error::{GatewayError, QuotaResource, Result};
use crate::frontend::completion::{completion_pair, Completion};
use crate::pool::{PoolSlot, TenantPool};
use crate::rebalance::{MigrationReport, SlotLoad};
use crate::runtime::{
    BarrierGuard, BarrierOp, Reply, ShardCommand, ShardDrainReport, ShardWorker, Shared,
    SlotCheckpoint, SlotClaim, SlotEntry, SlotExport, SlotGauges, SlotInfo, TenantCounters,
    TenantMeta, WorkerSlot, BARRIER_IDLE,
};
use crate::session::{SessionEntry, SessionState, SessionTable};
use crate::stats::GatewayStats;
use crate::telemetry::{Telemetry, TelemetrySnapshot};
use glimmer_core::blinding::MaskShare;
use glimmer_core::channel::{ChannelAccept, ChannelOffer};
use glimmer_core::enclave_app::MaskDelivery;
use glimmer_core::protocol::{BatchItem, BatchOutcome};
use glimmer_core::GlimmerError;
use glimmer_crypto::drbg::Drbg;
use sgx_sim::{AttestationService, Measurement, SgxError};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One drained reply, routed back to the device that owns the session.
#[derive(Debug, Clone)]
pub struct GatewayResponse {
    /// The session the reply belongs to.
    pub session_id: u64,
    /// The owning tenant's interned name — an `Arc<str>` clone, not a string
    /// allocation, so the drain path stays allocation-free per endorsement.
    pub tenant: Arc<str>,
    /// The enclave's outcome for the item.
    pub outcome: BatchOutcome,
}

/// A sharded, multi-tenant enclave-pool server for glimmer-as-a-service
/// traffic.
///
/// The gateway owns, per tenant, a pool of pre-provisioned Glimmer enclaves
/// (image built, platform attested, endorsement key installed — all paid once
/// at start-up), a session table mapping device sessions onto pool slots with
/// least-loaded sharding, per-slot request queues drained through one
/// `PROCESS_BATCH` ECALL per round, and admission control (session quotas,
/// queue-depth backpressure, endorsement budgets).
///
/// # Runtime
///
/// Serving runs on a shard-per-core runtime (the crate-internal `runtime`
/// module): pool slots
/// are distributed round-robin over [`GatewayConfig::shards`] worker
/// threads, each of which exclusively owns its slots (enclaves, queues,
/// drain counters — shared-nothing). The `Gateway` value itself is a thin
/// routing handle: every method takes `&self`, the type is `Send + Sync`,
/// and callers on any number of threads may submit and drain concurrently.
/// Dropping the gateway shuts the workers down; [`Gateway::shutdown`] does
/// the same after draining in-flight work first.
///
/// The gateway itself is *untrusted*, exactly like the remote host of
/// Section 4.2: it only ever sees ciphertext, attestation transcripts, and
/// the public one-bit endorsed/failed outcome per request.
pub struct Gateway {
    shared: Arc<Shared>,
    senders: Vec<Sender<ShardCommand>>,
    workers: Vec<JoinHandle<()>>,
}

// The whole point of the `&self` API: one gateway handle may be shared
// across threads. The compiler proves it, these assertions document it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Gateway>();
};

impl core::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Gateway")
            .field("shards", &self.senders.len())
            .field("tenants", &self.shared.tenants.len())
            .finish_non_exhaustive()
    }
}

/// One tenant's pool, ready for the runtime — either freshly provisioned
/// ([`Gateway::with_clock`]) or rebuilt from sealed checkpoint state
/// ([`Gateway::restore_with_hooks`]).
struct TenantBuild {
    name: Arc<str>,
    quota: TenantQuota,
    measurement: Measurement,
    counters: TenantCounters,
    slots: Vec<PoolSlot>,
}

/// What [`Gateway::restore_impl`] rebuilds from: the (possibly folded)
/// snapshot, plus — on the delta-chain path — one pre-resolved sealing AAD
/// per `[tenant_idx][slot_id]` (`None` means every slot unseals under the
/// snapshot's own header).
struct RestoreSource<'a> {
    snapshot: &'a GatewaySnapshot,
    slot_aads: Option<&'a [Vec<Vec<u8>>]>,
}

impl Gateway {
    /// Builds the gateway: creates and provisions `slots_per_tenant` enclaves
    /// for every tenant up front, then spawns the shard workers and hands
    /// each its share of the slots. Uses the production [`SystemClock`].
    pub fn new(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
    ) -> Result<Self> {
        Self::with_clock(config, tenants, avs, rng, Arc::new(SystemClock::new()))
    }

    /// [`Gateway::new`] with an injected [`Clock`] (deterministic
    /// stale-pending eviction under test).
    pub fn with_clock(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        // Provision pools in deterministic (name) order, refusing duplicate
        // enrollments before any enclave is built for the duplicate.
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for tenant in &tenants {
            if !seen.insert(tenant.name.as_str()) {
                return Err(GatewayError::DuplicateTenant(tenant.name.clone()));
            }
        }
        let mut tenants = tenants;
        tenants.sort_by(|a, b| a.name.cmp(&b.name));

        let mut builds = Vec::with_capacity(tenants.len());
        for tenant in tenants {
            let pool = TenantPool::new(
                &tenant,
                config.slots_per_tenant,
                &config.platform_config,
                rng,
                avs,
            )?;
            let measurement = pool.measurement();
            builds.push(TenantBuild {
                name: Arc::from(tenant.name.as_str()),
                quota: tenant.quota,
                measurement,
                counters: TenantCounters::default(),
                slots: pool.slots,
            });
        }
        Self::assemble(config, clock, builds, SessionTable::new(), 0, 0)
    }

    /// Rebuilds a serving gateway from a checkpoint, on the same (simulated)
    /// machine, without re-running tenant provisioning: each pool slot's
    /// enclave is recreated from the descriptor and refilled from its
    /// sealed state export in a single `IMPORT_STATE` ECALL — no service-key
    /// provisioning, no session re-handshakes, no mask re-installs. Devices
    /// that held established sessions keep serving with the channel keys
    /// they already have.
    ///
    /// `rng` stands in for the machine's hardware identity: the platform
    /// fuse secrets are drawn from it with the same fork labels as the
    /// original construction, so it must be a generator in the same state
    /// the original `Gateway::new` received (same seed, same position).
    /// Sealed blobs from any other machine fail closed with
    /// [`GatewayError::SealedBlobRejected`].
    ///
    /// # Errors
    ///
    /// Restore fails closed, with typed errors, on every mismatch: a
    /// snapshot taken under a different pool shape or tenant set
    /// ([`GatewayError::SnapshotMismatch`]), corrupted snapshot bytes
    /// ([`GatewayError::SnapshotCorrupt`] from
    /// [`GatewaySnapshot::from_bytes`]), and tampered, spliced, or
    /// cross-measurement sealed state ([`GatewayError::SealedBlobRejected`]).
    ///
    /// # Examples
    ///
    /// See [`Gateway::checkpoint`] for the full checkpoint → crash →
    /// restore round trip.
    pub fn restore(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        snapshot: &GatewaySnapshot,
        avs: &mut AttestationService,
        rng: &mut Drbg,
    ) -> Result<Self> {
        Self::restore_with_clock(
            config,
            tenants,
            snapshot,
            avs,
            rng,
            Arc::new(SystemClock::new()),
        )
    }

    /// [`Gateway::restore`] with an injected [`Clock`].
    pub fn restore_with_clock(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        snapshot: &GatewaySnapshot,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        Self::restore_with_hooks(config, tenants, snapshot, avs, rng, clock, &NoCrash)
    }

    /// [`Gateway::restore_with_clock`] with injected [`CrashHooks`] (the
    /// crash-fault-injection harness; production uses [`NoCrash`]).
    pub fn restore_with_hooks(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        snapshot: &GatewaySnapshot,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
        hooks: &dyn CrashHooks,
    ) -> Result<Self> {
        Self::restore_impl(
            config,
            tenants,
            RestoreSource {
                snapshot,
                slot_aads: None,
            },
            avs,
            rng,
            clock,
            hooks,
        )
    }

    /// The shared restore engine behind [`Gateway::restore_with_hooks`] and
    /// [`Gateway::restore_chain_with_hooks`]: the only difference between a
    /// full-snapshot restore and a delta-chain restore is which AAD each
    /// slot's sealed blob must unseal under, so the chain path pre-resolves
    /// one AAD per slot and everything else is one code path.
    fn restore_impl(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        source: RestoreSource<'_>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
        hooks: &dyn CrashHooks,
    ) -> Result<Self> {
        let RestoreSource {
            snapshot,
            slot_aads,
        } = source;
        let crash = |point: CrashPoint| -> Result<()> {
            if hooks.reached(point) {
                Err(GatewayError::CrashInjected(point))
            } else {
                Ok(())
            }
        };
        let restore_start_nanos = clock.now_nanos();
        crash(CrashPoint::BeforeRestore)?;
        // Fail closed on any config/snapshot disagreement BEFORE touching an
        // enclave: a wrong restore must never half-build a gateway.
        if config.slots_per_tenant != snapshot.slots_per_tenant {
            return Err(GatewayError::SnapshotMismatch {
                reason: "pool width (slots_per_tenant) differs",
            });
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for tenant in &tenants {
            if !seen.insert(tenant.name.as_str()) {
                return Err(GatewayError::DuplicateTenant(tenant.name.clone()));
            }
        }
        let mut tenants = tenants;
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        if tenants.len() != snapshot.tenants.len() {
            return Err(GatewayError::SnapshotMismatch {
                reason: "tenant set differs",
            });
        }
        let expected_slots = config.slots_per_tenant.max(1);
        for (tenant, snap) in tenants.iter().zip(&snapshot.tenants) {
            if tenant.name != snap.name {
                return Err(GatewayError::SnapshotMismatch {
                    reason: "tenant names differ",
                });
            }
            if tenant.descriptor.measurement() != snap.measurement {
                return Err(GatewayError::SnapshotMismatch {
                    reason: "tenant measurement differs",
                });
            }
            if snap.slots.len() != expected_slots {
                return Err(GatewayError::SnapshotMismatch {
                    reason: "slot count differs",
                });
            }
            for (i, slot) in snap.slots.iter().enumerate() {
                if slot.slot_id != i {
                    return Err(GatewayError::SnapshotMismatch {
                        reason: "slot ids not contiguous",
                    });
                }
            }
        }
        let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
        for record in &snapshot.sessions {
            let valid = record.tenant_idx < snapshot.tenants.len()
                && record.slot < snapshot.tenants[record.tenant_idx].slots.len()
                && record.session_id < snapshot.next_session_id
                && seen_ids.insert(record.session_id);
            if !valid {
                return Err(GatewayError::SnapshotMismatch {
                    reason: "invalid session record",
                });
            }
        }

        let header = snapshot.header_bytes();
        let mut builds = Vec::with_capacity(tenants.len());
        for (tenant_idx, (tenant, snap)) in tenants.iter().zip(&snapshot.tenants).enumerate() {
            let name: Arc<str> = Arc::from(tenant.name.as_str());
            let mut slots = Vec::with_capacity(snap.slots.len());
            for slot_snap in &snap.slots {
                // The authoritative live set for this slot: the enclave
                // keeps exactly these sessions and erases any orphans its
                // sealed export carried (sessions closed concurrently with
                // the checkpoint barrier).
                let live_sessions: Vec<u64> = snapshot
                    .sessions
                    .iter()
                    .filter(|r| r.tenant_idx == tenant_idx && r.slot == slot_snap.slot_id)
                    .map(|r| r.session_id)
                    .collect();
                // A full snapshot seals every slot under the snapshot
                // header; a delta chain seals each slot under the chained
                // header of whichever frame last exported it.
                let aad: &[u8] = slot_aads.map_or(header.as_slice(), |a| {
                    a[tenant_idx][slot_snap.slot_id].as_slice()
                });
                let slot = PoolSlot::restore(
                    tenant,
                    config.platform_config.clone(),
                    rng,
                    avs,
                    aad,
                    slot_snap,
                    &live_sessions,
                )
                .map_err(|e| match e {
                    // The enclave refused the sealed state: tampered,
                    // spliced from another snapshot, wrong measurement, or
                    // wrong machine. Typed, tenant-labelled, fail-closed.
                    GatewayError::Glimmer(GlimmerError::Sgx(SgxError::UnsealDenied(_))) => {
                        GatewayError::SealedBlobRejected {
                            tenant: name.clone(),
                        }
                    }
                    other => other,
                })?;
                slots.push(slot);
            }
            builds.push(TenantBuild {
                name,
                quota: tenant.quota.clone(),
                measurement: snap.measurement,
                counters: TenantCounters::from_stats(&snap.counters),
                slots,
            });
            if tenant_idx == 0 {
                crash(CrashPoint::MidRestore)?;
            }
        }

        // Re-seat the established sessions: the enclaves hold their channel
        // keys again (restored from sealed state), the devices never lost
        // theirs, so the table entry is all the routing layer needs.
        let entries = snapshot.sessions.iter().map(|record| {
            (
                record.session_id,
                SessionEntry {
                    tenant: builds[record.tenant_idx].name.clone(),
                    tenant_idx: record.tenant_idx,
                    slot: record.slot,
                    state: SessionState::Established,
                    opened_at_nanos: record.opened_at_nanos,
                },
            )
        });
        let table = SessionTable::restore(entries, snapshot.next_session_id);
        let gateway = Self::assemble(
            config,
            Arc::clone(&clock),
            builds,
            table,
            snapshot.epoch,
            snapshot.submit_commands,
        )?;
        // The restore-duration histogram lives in the *new* incarnation's
        // hub: the whole rebuild (validation, per-slot IMPORT_STATE ECALLs,
        // table re-seat, worker spawn) is one observation.
        gateway
            .shared
            .telemetry
            .record_restore(clock.now_nanos().saturating_sub(restore_start_nanos));
        Ok(gateway)
    }

    /// Final construction step shared by [`Gateway::with_clock`] and
    /// [`Gateway::restore_with_hooks`]: distributes the (provisioned or
    /// restored) pool slots round-robin over the shard workers, recomputes
    /// the session gauges from the table, and spawns the runtime.
    fn assemble(
        config: GatewayConfig,
        clock: Arc<dyn Clock>,
        builds: Vec<TenantBuild>,
        table: SessionTable,
        checkpoint_epoch: u64,
        submit_commands: u64,
    ) -> Result<Self> {
        let shards = config.shards.max(1);
        let mut metas = Vec::with_capacity(builds.len());
        let mut worker_slots: Vec<Vec<WorkerSlot>> = (0..shards).map(|_| Vec::new()).collect();
        let mut next_shard = 0usize;
        for (tenant_idx, build) in builds.into_iter().enumerate() {
            let mut slot_infos = Vec::with_capacity(build.slots.len());
            for slot in build.slots {
                let gauges = Arc::new(SlotGauges::default());
                // Seed the shared dirty-epoch gauge from the slot's (fresh
                // or restored) epoch, so a delta checkpoint taken before the
                // slot's next mutation sees the resumed clock, not zero.
                gauges.dirty_epoch.store(slot.dirty_epoch, Ordering::SeqCst);
                let shard = next_shard;
                next_shard = (next_shard + 1) % shards;
                slot_infos.push(SlotInfo::new(
                    shard,
                    worker_slots[shard].len(),
                    Arc::clone(&gauges),
                ));
                worker_slots[shard].push(WorkerSlot {
                    tenant_idx,
                    slot,
                    gauges,
                });
            }
            metas.push(TenantMeta {
                name: build.name,
                quota: build.quota,
                measurement: build.measurement,
                counters: build.counters,
                live_sessions: AtomicUsize::new(0),
                queued: AtomicUsize::new(0),
                slots: slot_infos,
            });
        }

        // Recompute the session gauges from the (possibly restored) table:
        // every live entry holds one unit of its tenant's session quota and
        // pins one slot. For a fresh gateway the table is empty and this is
        // a no-op.
        for (_, entry) in table.iter() {
            let meta = &metas[entry.tenant_idx];
            meta.live_sessions.fetch_add(1, Ordering::SeqCst);
            meta.slots[entry.slot]
                .gauges
                .active_sessions
                .fetch_add(1, Ordering::SeqCst);
        }

        let shared = Arc::new(Shared {
            telemetry: Arc::new(Telemetry::new(
                &config.telemetry,
                Arc::clone(&clock),
                shards,
            )),
            config,
            clock,
            tenants: metas,
            table: Mutex::new(table),
            submit_commands: AtomicU64::new(submit_commands),
            checkpoint_epoch: AtomicU64::new(checkpoint_epoch),
            barrier: AtomicU8::new(crate::runtime::BARRIER_IDLE),
            pinned_workers: AtomicUsize::new(0),
            migration: Mutex::new(()),
        });

        // Shard-to-core assignment for `pin_cores`: round-robin over the
        // detected core count, so surplus shards share cores instead of
        // failing to pin.
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

        // All shard channels exist before any worker spawns: every worker
        // holds senders to every shard, which is what lets a tombstoned
        // (migrated-away) slot forward stray commands to its new owner.
        let mut senders = Vec::with_capacity(shards);
        let mut receivers = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let mut workers = Vec::with_capacity(shards);
        for (shard_id, (slots, rx)) in worker_slots.into_iter().zip(receivers).enumerate() {
            let worker = ShardWorker {
                shard_id,
                shared: Arc::clone(&shared),
                slots: slots
                    .into_iter()
                    .map(|ws| SlotEntry::Occupied(Box::new(ws)))
                    .collect(),
                rx,
                senders: senders.clone(),
                scratch: Default::default(),
            };
            let pin_core = worker.shared.config.pin_cores.then_some(shard_id % cores);
            let pin_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("gateway-shard-{shard_id}"))
                .spawn(move || {
                    // Pin before the first receive so any synchronous
                    // command round-trip observes the final pinned count.
                    if let Some(core) = pin_core {
                        if crate::affinity::pin_to_core(core) {
                            pin_shared.pinned_workers.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    drop(pin_shared);
                    worker.run()
                })
                .map_err(|_| GatewayError::RuntimeUnavailable)?;
            workers.push(handle);
        }

        Ok(Gateway {
            shared,
            senders,
            workers,
        })
    }

    /// Number of shard worker threads serving this gateway.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.senders.len()
    }

    /// Workers the kernel accepted a `pin_cores` affinity mask for: `0`
    /// when `GatewayConfig::pin_cores` is off or pinning is unsupported,
    /// up to [`Gateway::shard_count`] otherwise. Workers pin before their
    /// first command receive, so the count is final once any synchronous
    /// call (e.g. [`Gateway::stats`]) has round-tripped the shards.
    #[must_use]
    pub fn pinned_workers(&self) -> usize {
        self.shared.pinned_workers.load(Ordering::SeqCst)
    }

    /// Every pool slot's live load — current owning shard and queued
    /// requests, read from the same gauges the placement policy maintains
    /// at admission time — in deterministic (tenant name, slot id) order.
    /// This is [`crate::rebalance::plan_rebalance`]'s input.
    #[must_use]
    pub fn slot_loads(&self) -> Vec<SlotLoad> {
        let mut loads = Vec::new();
        for tenant in &self.shared.tenants {
            for (slot_id, info) in tenant.slots.iter().enumerate() {
                loads.push(SlotLoad {
                    tenant: Arc::clone(&tenant.name),
                    slot_id,
                    shard: info.shard(),
                    queued: info.gauges.queue_depth.load(Ordering::SeqCst) as u64,
                });
            }
        }
        loads
    }

    /// The enrolled tenant names, in deterministic order.
    #[must_use]
    pub fn tenant_names(&self) -> Vec<String> {
        self.shared
            .tenants
            .iter()
            .map(|t| t.name.to_string())
            .collect()
    }

    /// The measurement a device connecting to `tenant` must verify.
    pub fn measurement(&self, tenant: &str) -> Result<Measurement> {
        let idx = self.shared.tenant_idx(tenant)?;
        Ok(self.shared.tenants[idx].measurement)
    }

    fn tenant(&self, name: &str) -> Result<&TenantMeta> {
        Ok(&self.shared.tenants[self.shared.tenant_idx(name)?])
    }

    fn send(&self, shard: usize, command: ShardCommand) -> Result<()> {
        self.senders[shard]
            .send(command)
            .map_err(|_| GatewayError::RuntimeUnavailable)
    }

    fn recv<T>(rx: &Receiver<T>) -> Result<T> {
        rx.recv().map_err(|_| GatewayError::RuntimeUnavailable)
    }

    fn session_entry(&self, session_id: u64) -> Result<SessionEntry> {
        Ok(self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .get(session_id)?
            .clone())
    }

    /// Queue-depth-aware placement: scores every slot of the tenant as
    /// `queue_depth + session_weight * active_sessions` and picks the
    /// minimum (ties: fewest sessions, then lowest slot id).
    ///
    /// Counting live queue depth — not just session count — is what keeps a
    /// hot tenant from skewing one shard: slots map statically to shards, so
    /// steering new sessions away from deep queues flattens the E12
    /// critical-path metric. Sessions still weigh in (at
    /// [`crate::GatewayConfig::placement_session_weight`] queued-request
    /// units each) because a bound-but-idle session predicts future load.
    fn least_loaded_slot(meta: &TenantMeta, session_weight: usize) -> usize {
        meta.slots
            .iter()
            .enumerate()
            .min_by_key(|(id, info)| {
                let sessions = info.gauges.active_sessions.load(Ordering::SeqCst);
                let depth = info.gauges.queue_depth.load(Ordering::SeqCst);
                (
                    depth.saturating_add(session_weight.saturating_mul(sessions)),
                    sessions,
                    *id,
                )
            })
            .map(|(id, _)| id)
            .expect("tenant pool always has at least one slot")
    }

    /// Admission, placement, and table insert for a new session — the
    /// front-end-independent first half of an open. Returns the routing
    /// triple `(session_id, tenant_idx, slot_id)` the enclave command and
    /// its settle step need.
    fn open_session_admit(&self, tenant: &str) -> Result<(u64, usize, usize)> {
        let tenant_idx = self.shared.tenant_idx(tenant)?;
        let meta = &self.shared.tenants[tenant_idx];
        // Reserve a session-quota slot first; roll back on any failure so a
        // racing open can never overshoot the quota.
        let prev = meta.live_sessions.fetch_add(1, Ordering::SeqCst);
        if prev >= meta.quota.max_sessions {
            meta.live_sessions.fetch_sub(1, Ordering::SeqCst);
            meta.counters.throttled.fetch_add(1, Ordering::SeqCst);
            let err = GatewayError::QuotaExceeded {
                tenant: meta.name.clone(),
                resource: QuotaResource::Sessions,
            };
            self.shared.telemetry.admit_reject(&err, 1, None);
            return Err(err);
        }
        let slot_id = Self::least_loaded_slot(meta, self.shared.config.placement_session_weight);
        let info = &meta.slots[slot_id];
        info.gauges.active_sessions.fetch_add(1, Ordering::SeqCst);
        let session_id = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .open(
                meta.name.clone(),
                tenant_idx,
                slot_id,
                self.shared.clock.now_nanos(),
            );
        Ok((session_id, tenant_idx, slot_id))
    }

    /// Undoes [`Gateway::open_session_admit`] after the enclave side failed.
    fn open_session_rollback(&self, session_id: u64, tenant_idx: usize, slot_id: usize) {
        let meta = &self.shared.tenants[tenant_idx];
        // Roll the reservation back only if this thread actually removed
        // the entry: a concurrent close/eviction that beat us here already
        // ran the gauge rollback, and decrementing twice would wrap the
        // unsigned gauges.
        let removed = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .close(session_id)
            .is_ok();
        if removed {
            meta.slots[slot_id]
                .gauges
                .active_sessions
                .fetch_sub(1, Ordering::SeqCst);
            meta.live_sessions.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Outcome handling shared by the blocking and async front-ends: commit
    /// the open on success, roll back admission on failure.
    pub(crate) fn open_session_settle(
        &self,
        session_id: u64,
        tenant_idx: usize,
        slot_id: usize,
        outcome: Result<ChannelOffer>,
    ) -> Result<(u64, ChannelOffer)> {
        match outcome {
            Ok(offer) => {
                self.shared.tenants[tenant_idx]
                    .counters
                    .sessions_opened
                    .fetch_add(1, Ordering::SeqCst);
                Ok((session_id, offer))
            }
            Err(e) => {
                self.open_session_rollback(session_id, tenant_idx, slot_id);
                Err(e)
            }
        }
    }

    /// Opens a device session for `tenant`: admits it against the session
    /// quota, pins it to the least-loaded pool slot, and returns the
    /// attestation offer the device verifies.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownTenant`] for an unenrolled tenant,
    /// [`GatewayError::QuotaExceeded`] when the tenant's session quota is
    /// full, [`GatewayError::RuntimeUnavailable`] when the owning shard
    /// worker is gone, and any enclave-side failure as
    /// [`GatewayError::Glimmer`]. On every error the admission reservation
    /// is rolled back.
    pub fn open_session(&self, tenant: &str) -> Result<(u64, ChannelOffer)> {
        let (session_id, tenant_idx, slot_id) = self.open_session_admit(tenant)?;
        let (shard, slot) = self.shared.tenants[tenant_idx].slots[slot_id].location();
        let (tx, rx) = channel();
        let outcome = self
            .send(
                shard,
                ShardCommand::OpenSession {
                    slot,
                    session_id,
                    reply: Reply::Sync(tx),
                },
            )
            .and_then(|()| Self::recv(&rx))
            .and_then(|result| result);
        self.open_session_settle(session_id, tenant_idx, slot_id, outcome)
    }

    /// Async-front-end first half of [`Gateway::open_session`]: admits and
    /// sends the enclave command with a waker-notified completion instead of
    /// parking in `recv`. The caller awaits the completion and passes its
    /// outcome to [`Gateway::open_session_settle`] —
    /// [`AsyncGateway`](crate::frontend::AsyncGateway) owns that pairing.
    pub(crate) fn open_session_begin(
        &self,
        tenant: &str,
    ) -> Result<(u64, usize, usize, Completion<Result<ChannelOffer>>)> {
        let (session_id, tenant_idx, slot_id) = self.open_session_admit(tenant)?;
        let (shard, slot) = self.shared.tenants[tenant_idx].slots[slot_id].location();
        let (completer, completion) = completion_pair();
        match self.send(
            shard,
            ShardCommand::OpenSession {
                slot,
                session_id,
                reply: Reply::Async(completer),
            },
        ) {
            Ok(()) => Ok((session_id, tenant_idx, slot_id, completion)),
            Err(e) => {
                self.open_session_rollback(session_id, tenant_idx, slot_id);
                Err(e)
            }
        }
    }

    /// Route lookup + state check for a handshake completion, shared by
    /// both front-ends.
    fn complete_session_route(&self, session_id: u64) -> Result<SessionEntry> {
        let entry = self.session_entry(session_id)?;
        if entry.state == SessionState::Established {
            return Err(GatewayError::SessionAlreadyEstablished(session_id));
        }
        Ok(entry)
    }

    /// Outcome handling shared by the blocking and async front-ends: on
    /// enclave success, mark the table entry established (cleaning up the
    /// eviction race); on failure, tear the wedged pending session down.
    ///
    /// The failure and race cleanups inside perform a synchronous enclave
    /// close: they park until the owning shard worker reaches the command —
    /// behind whatever that shard already has queued, which on a loaded
    /// gateway can include whole drain sweeps. An async caller's executor
    /// thread stalls for that backlog when it hits one of these paths. That
    /// is a deliberate trade: they only run when a handshake actually
    /// failed or lost an eviction race — error paths, not steady-state
    /// serving — and the alternative (fire-and-forget cleanup) would leave
    /// the enclave's session table silently divergent on exactly the paths
    /// where consistency matters most.
    pub(crate) fn complete_session_settle(
        &self,
        session_id: u64,
        entry: &SessionEntry,
        outcome: Result<()>,
    ) -> Result<()> {
        let (shard, slot) = self.shared.tenants[entry.tenant_idx].slots[entry.slot].location();
        if let Err(e) = outcome {
            // The enclave consumed the pending handshake, so this session id
            // can never complete; tear it down instead of leaving a wedged
            // Pending entry pinning the slot and the tenant's session quota.
            // The device retries by opening a fresh session. Only a session
            // that is STILL pending is torn down: if a concurrent duplicate
            // completion won the race and established it, this loser's error
            // must not destroy the now-valid session.
            self.close_session_if_pending(session_id);
            return Err(e);
        }
        let established = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .establish(session_id)
            .map(|_| ());
        if let Err(GatewayError::UnknownSession(_)) = established {
            // A concurrent eviction removed the entry between the enclave
            // accept succeeding and this establish (the evictor's enclave
            // close raced the in-flight handshake). The gateway will never
            // route this id again, so erase the keys the enclave just
            // installed rather than leaking the session in the slot forever.
            // Gauges were already rolled back by whoever removed the entry.
            let (tx, rx) = channel();
            if self
                .send(
                    shard,
                    ShardCommand::CloseSession {
                        slot,
                        session_id,
                        reply: Reply::Sync(tx),
                    },
                )
                .is_ok()
            {
                let _ = Self::recv(&rx);
            }
        }
        established
    }

    /// Completes a session's attested handshake with the device's response.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] for a dead id,
    /// [`GatewayError::SessionAlreadyEstablished`] for a duplicate
    /// completion, [`GatewayError::RuntimeUnavailable`] when the shard
    /// worker is gone, and enclave rejections as [`GatewayError::Glimmer`].
    /// A failed completion tears the pending session down (the enclave
    /// consumed the handshake), so the device retries with a fresh
    /// [`Gateway::open_session`].
    pub fn complete_session(&self, session_id: u64, accept: &ChannelAccept) -> Result<()> {
        let entry = self.complete_session_route(session_id)?;
        let (shard, slot) = self.shared.tenants[entry.tenant_idx].slots[entry.slot].location();
        let (tx, rx) = channel();
        let outcome = self
            .send(
                shard,
                ShardCommand::AcceptSession {
                    slot,
                    session_id,
                    accept: accept.clone(),
                    reply: Reply::Sync(tx),
                },
            )
            .and_then(|()| Self::recv(&rx))
            .and_then(|result| result);
        self.complete_session_settle(session_id, &entry, outcome)
    }

    /// Async-front-end first half of [`Gateway::complete_session`]; the
    /// caller awaits the completion and settles through
    /// [`Gateway::complete_session_settle`].
    pub(crate) fn complete_session_begin(
        &self,
        session_id: u64,
        accept: &ChannelAccept,
    ) -> Result<(SessionEntry, Completion<Result<()>>)> {
        let entry = self.complete_session_route(session_id)?;
        let (shard, slot) = self.shared.tenants[entry.tenant_idx].slots[entry.slot].location();
        let (completer, completion) = completion_pair();
        match self.send(
            shard,
            ShardCommand::AcceptSession {
                slot,
                session_id,
                accept: accept.clone(),
                reply: Reply::Async(completer),
            },
        ) {
            Ok(()) => Ok((entry, completion)),
            Err(e) => {
                let _ = self.complete_session_settle(session_id, &entry, Err(e.clone()));
                Err(e)
            }
        }
    }

    /// Closes a session: erases its channel keys inside the enclave and
    /// discards any requests it still had queued.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] when the id is not live,
    /// [`GatewayError::RuntimeUnavailable`] when the owning shard worker is
    /// gone, and enclave-side failures as [`GatewayError::Glimmer`]. The
    /// table entry and its quota reservation are released even when the
    /// enclave-side erase fails.
    pub fn close_session(&self, session_id: u64) -> Result<()> {
        let entry = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .close(session_id)?;
        self.finish_close(session_id, &entry)
    }

    /// Async-front-end first half of [`Gateway::close_session`]: removes the
    /// table entry, rolls the gauges back, and sends the enclave close with
    /// a completion. The caller awaits it and settles through
    /// [`Gateway::close_session_settle`].
    pub(crate) fn close_session_begin(
        &self,
        session_id: u64,
    ) -> Result<(usize, Completion<Result<()>>)> {
        let entry = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .close(session_id)?;
        let meta = &self.shared.tenants[entry.tenant_idx];
        let info = &meta.slots[entry.slot];
        let (shard, slot) = info.location();
        info.gauges.active_sessions.fetch_sub(1, Ordering::SeqCst);
        meta.live_sessions.fetch_sub(1, Ordering::SeqCst);
        let (completer, completion) = completion_pair();
        self.send(
            shard,
            ShardCommand::CloseSession {
                slot,
                session_id,
                reply: Reply::Async(completer),
            },
        )?;
        Ok((entry.tenant_idx, completion))
    }

    /// Outcome handling for an async close: count the close on success.
    pub(crate) fn close_session_settle(
        &self,
        tenant_idx: usize,
        outcome: Result<()>,
    ) -> Result<()> {
        outcome?;
        self.shared.tenants[tenant_idx]
            .counters
            .sessions_closed
            .fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Tears the session down only if it is still pending — the
    /// check-and-remove happens under one table lock, so it can never race a
    /// concurrent establishment into closing an established session. Returns
    /// whether the session was actually removed.
    fn close_session_if_pending(&self, session_id: u64) -> bool {
        let entry = {
            let mut table = self.shared.table.lock().expect("session table poisoned");
            match table.get(session_id) {
                Ok(e) if e.state == SessionState::Pending => table.close(session_id).ok(),
                _ => None,
            }
        };
        match entry {
            Some(entry) => {
                let _ = self.finish_close(session_id, &entry);
                true
            }
            None => false,
        }
    }

    /// Gauge rollback + enclave teardown for an entry already removed from
    /// the session table.
    fn finish_close(&self, session_id: u64, entry: &SessionEntry) -> Result<()> {
        let meta = &self.shared.tenants[entry.tenant_idx];
        let info = &meta.slots[entry.slot];
        let (shard, slot) = info.location();
        info.gauges.active_sessions.fetch_sub(1, Ordering::SeqCst);
        meta.live_sessions.fetch_sub(1, Ordering::SeqCst);
        let (tx, rx) = channel();
        self.send(
            shard,
            ShardCommand::CloseSession {
                slot,
                session_id,
                reply: Reply::Sync(tx),
            },
        )?;
        let outcome = Self::recv(&rx).and_then(|result| result);
        self.close_session_settle(entry.tenant_idx, outcome)
    }

    /// Installs a blinding mask share into the enclave serving `session_id`
    /// (the tenant's blinding service issues one per client and round).
    ///
    /// The mask is bound to the session inside the enclave: the session
    /// becomes authorized to contribute as the mask's client id, and only as
    /// client ids bound this way. That binding is what stops co-located
    /// sessions on a pooled slot from impersonating each other's devices.
    ///
    /// This plaintext variant hands the mask values to the gateway process,
    /// so it is only appropriate when the tenant operates the gateway
    /// itself. Against an untrusted gateway, use the attested tenant
    /// channel ([`Gateway::tenant_channel_offer`]) and
    /// [`Gateway::install_mask_encrypted`], which keep mask values sealed
    /// end-to-end between the tenant and the enclave.
    pub fn install_mask(&self, session_id: u64, mask: &MaskShare) -> Result<()> {
        self.install_mask_delivery(session_id, MaskDelivery::plain(mask))
    }

    /// Installs a session-bound mask from an AEAD-encrypted delivery sealed
    /// under the tenant's attested channel to the session's slot. The
    /// gateway relays the ciphertext; only the enclave can open it.
    pub fn install_mask_encrypted(
        &self,
        session_id: u64,
        nonce: [u8; 12],
        ciphertext: Vec<u8>,
    ) -> Result<()> {
        self.install_mask_delivery(session_id, MaskDelivery::Encrypted { nonce, ciphertext })
    }

    /// Maps an enclave AEAD refusal of a sealed mask delivery (tampered
    /// ciphertext, wrong slot's channel key, replayed nonce) to the typed,
    /// tenant-labelled rejection instead of a stringly enclave abort.
    pub(crate) fn install_mask_settle(tenant: &Arc<str>, outcome: Result<()>) -> Result<()> {
        outcome.map_err(|e| match e {
            GatewayError::Glimmer(GlimmerError::Sgx(SgxError::UnsealDenied(_))) => {
                GatewayError::SealedBlobRejected {
                    tenant: tenant.clone(),
                }
            }
            other => other,
        })
    }

    fn install_mask_delivery(&self, session_id: u64, delivery: MaskDelivery) -> Result<()> {
        let entry = self.session_entry(session_id)?;
        let (shard, slot) = self.shared.tenants[entry.tenant_idx].slots[entry.slot].location();
        let (tx, rx) = channel();
        self.send(
            shard,
            ShardCommand::InstallMask {
                slot,
                session_id,
                delivery,
                reply: Reply::Sync(tx),
            },
        )?;
        let outcome = Self::recv(&rx).and_then(|result| result);
        Self::install_mask_settle(&entry.tenant, outcome)
    }

    /// Async-front-end first half of [`Gateway::install_mask`] /
    /// [`Gateway::install_mask_encrypted`]: routes the delivery with a
    /// completion; the caller awaits and settles through
    /// [`Gateway::install_mask_settle`] with the returned tenant label.
    pub(crate) fn install_mask_begin(
        &self,
        session_id: u64,
        delivery: MaskDelivery,
    ) -> Result<(Arc<str>, Completion<Result<()>>)> {
        let entry = self.session_entry(session_id)?;
        let (shard, slot) = self.shared.tenants[entry.tenant_idx].slots[entry.slot].location();
        let (completer, completion) = completion_pair();
        self.send(
            shard,
            ShardCommand::InstallMask {
                slot,
                session_id,
                delivery,
                reply: Reply::Async(completer),
            },
        )?;
        Ok((entry.tenant, completion))
    }

    /// The pool slot a session is pinned to — the tenant needs it to seal
    /// mask deliveries under the right slot's channel key.
    pub fn session_slot(&self, session_id: u64) -> Result<usize> {
        Ok(self.session_entry(session_id)?.slot)
    }

    /// The shard worker that owns a session's slot. Batch producers (the
    /// replay ingest driver) group a submission window by this key so each
    /// [`Gateway::submit_batch`] call lands on one shard — one
    /// `SubmitMany` command instead of a cross-shard scatter.
    pub fn session_shard(&self, session_id: u64) -> Result<usize> {
        let entry = self.session_entry(session_id)?;
        Ok(self.shared.tenants[entry.tenant_idx].slots[entry.slot].shard())
    }

    /// Number of pool slots serving `tenant`.
    pub fn slot_count(&self, tenant: &str) -> Result<usize> {
        Ok(self.tenant(tenant)?.slots.len())
    }

    fn tenant_slot(&self, tenant: &str, slot: usize) -> Result<&SlotInfo> {
        let meta = self.tenant(tenant)?;
        meta.slots
            .get(slot)
            .ok_or_else(|| GatewayError::UnknownSlot {
                tenant: tenant.to_string(),
                slot,
            })
    }

    /// Starts the attested tenant channel on one pool slot: returns the
    /// enclave's offer for the *tenant* (not a device) to verify and answer.
    /// Once completed, the tenant can seal mask deliveries to that slot.
    pub fn tenant_channel_offer(&self, tenant: &str, slot: usize) -> Result<ChannelOffer> {
        let (shard, slot) = self.tenant_slot(tenant, slot)?.location();
        let (tx, rx) = channel();
        self.send(
            shard,
            ShardCommand::TenantChannelOffer {
                slot,
                reply: Reply::Sync(tx),
            },
        )?;
        Self::recv(&rx)?
    }

    /// Completes the attested tenant channel on one pool slot.
    pub fn complete_tenant_channel(
        &self,
        tenant: &str,
        slot: usize,
        accept: &ChannelAccept,
    ) -> Result<()> {
        let (shard, slot) = self.tenant_slot(tenant, slot)?.location();
        let (tx, rx) = channel();
        self.send(
            shard,
            ShardCommand::TenantChannelComplete {
                slot,
                accept: accept.clone(),
                reply: Reply::Sync(tx),
            },
        )?;
        Self::recv(&rx)?
    }

    /// Reserve-then-check admission for a group of `n` requests bound for
    /// one slot, paid as **one** atomic sequence regardless of group size:
    /// one `fetch_add(n)` per gauge, rolled back in full on any failure so
    /// rejection is atomic — either the whole group is admitted or none of
    /// it is.
    ///
    /// The failing request's tenant label is the interned `Arc<str>`, so a
    /// throttle/backpressure storm does not allocate a `String` per
    /// rejection.
    fn reserve_admission(&self, meta: &TenantMeta, slot_id: usize, n: usize) -> Result<()> {
        // Tenant-wide queued-request quota.
        let prev_queued = meta.queued.fetch_add(n, Ordering::SeqCst);
        if prev_queued + n > meta.quota.max_queued {
            meta.queued.fetch_sub(n, Ordering::SeqCst);
            meta.counters
                .throttled
                .fetch_add(n as u64, Ordering::SeqCst);
            return Err(GatewayError::QuotaExceeded {
                tenant: meta.name.clone(),
                resource: QuotaResource::QueuedRequests,
            });
        }
        // Endorsement budget: only endorsements consume it, but queued
        // requests reserve against it so the budget can never overshoot
        // mid-batch — a group that would cross the line mid-batch rejects
        // here, atomically, before anything is enqueued. A rejected
        // contribution releases its reservation at drain time (queue
        // shrinks, `endorsed` does not grow).
        if let Some(budget) = meta.quota.endorsement_budget {
            let reserved = meta.counters.endorsed.load(Ordering::SeqCst) + (prev_queued + n) as u64;
            if reserved > budget {
                meta.queued.fetch_sub(n, Ordering::SeqCst);
                meta.counters
                    .throttled
                    .fetch_add(n as u64, Ordering::SeqCst);
                return Err(GatewayError::QuotaExceeded {
                    tenant: meta.name.clone(),
                    resource: QuotaResource::Endorsements,
                });
            }
        }
        // Per-slot queue-depth backpressure.
        let info = &meta.slots[slot_id];
        let prev_depth = info.gauges.queue_depth.fetch_add(n, Ordering::SeqCst);
        if prev_depth + n > self.shared.config.max_queue_depth {
            info.gauges.queue_depth.fetch_sub(n, Ordering::SeqCst);
            meta.queued.fetch_sub(n, Ordering::SeqCst);
            meta.counters
                .throttled
                .fetch_add(n as u64, Ordering::SeqCst);
            return Err(GatewayError::Backpressure {
                tenant: meta.name.clone(),
                slot: slot_id,
                depth: prev_depth,
            });
        }
        Ok(())
    }

    /// Undoes a successful [`Gateway::reserve_admission`] (used when the
    /// runtime refuses the command after the gauges were already bumped).
    fn release_admission(meta: &TenantMeta, slot_id: usize, n: usize) {
        meta.slots[slot_id]
            .gauges
            .queue_depth
            .fetch_sub(n, Ordering::SeqCst);
        meta.queued.fetch_sub(n, Ordering::SeqCst);
    }

    /// Sends a submit-path command and counts it (the E13 command metric).
    fn send_submit(&self, shard: usize, command: ShardCommand) -> Result<()> {
        self.send(shard, command)?;
        self.shared.submit_commands.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Admits one encrypted request into its session's slot queue.
    ///
    /// # Errors
    ///
    /// Rejections are typed: quota exhaustion ([`GatewayError::QuotaExceeded`])
    /// and queue-depth backpressure ([`GatewayError::Backpressure`]) both leave
    /// the request unqueued so the device can retry elsewhere or later.
    ///
    /// Admission is reserve-then-check over atomic gauges, so concurrent
    /// submitters can never overshoot a quota: the loser of a race has its
    /// reservation rolled back and sees the same typed rejection a
    /// sequential caller would. Bulk producers should prefer
    /// [`Gateway::submit_many`] / [`Gateway::submit_batch`], which pay this
    /// admission sequence and the shard-queue command once per group instead
    /// of once per request.
    pub fn submit(&self, session_id: u64, ciphertext: Vec<u8>) -> Result<()> {
        let result = self.submit_inner(session_id, ciphertext);
        match &result {
            Ok(()) => self.shared.telemetry.admit_accept(1),
            Err(e) => self.shared.telemetry.admit_reject(e, 1, Some(session_id)),
        }
        result
    }

    fn submit_inner(&self, session_id: u64, ciphertext: Vec<u8>) -> Result<()> {
        let entry = self.session_entry(session_id)?;
        if entry.state != SessionState::Established {
            return Err(GatewayError::SessionNotEstablished(session_id));
        }
        let meta = &self.shared.tenants[entry.tenant_idx];
        self.reserve_admission(meta, entry.slot, 1)?;
        let telemetry = &self.shared.telemetry;
        let trace = telemetry.submit_sampler(1).tag(telemetry, 0, session_id);
        let (shard, slot) = meta.slots[entry.slot].location();
        let sent = self.send_submit(
            shard,
            ShardCommand::Submit {
                slot,
                item: BatchItem {
                    session_id,
                    ciphertext,
                },
                trace,
            },
        );
        if sent.is_err() {
            Self::release_admission(meta, entry.slot, 1);
            return sent;
        }
        meta.counters.submitted.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Admits a whole group of encrypted requests from **one session** with
    /// a single admission sequence and a single shard-queue command.
    ///
    /// Compared to calling [`Gateway::submit`] in a loop, a group of `n`
    /// requests pays one `fetch_add(n)` reservation per gauge instead of
    /// `n` CAS sequences, and pushes one `SubmitMany` command instead of
    /// `n` `Submit` commands — cutting channel and atomic traffic by the
    /// batch factor on the hot path.
    ///
    /// Admission is **atomic across the group**: a group that would exceed
    /// the queued quota, the endorsement budget, or the slot's queue depth
    /// mid-batch is rejected whole — no items are enqueued and every
    /// reservation is rolled back — so a retrying producer never has to
    /// guess which suffix was admitted. Items are enqueued in vector order.
    /// An empty group is a no-op.
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownSession`] / [`GatewayError::SessionNotEstablished`]
    /// for a bad route, [`GatewayError::QuotaExceeded`] and
    /// [`GatewayError::Backpressure`] when the whole group does not fit, and
    /// [`GatewayError::RuntimeUnavailable`] when the shard worker is gone —
    /// in every case nothing was enqueued.
    ///
    /// # Examples
    ///
    /// ```
    /// use glimmer_core::blinding::BlindingService;
    /// use glimmer_core::host::GlimmerDescriptor;
    /// use glimmer_core::protocol::{Contribution, ContributionPayload, PrivateData};
    /// use glimmer_core::remote::IotDeviceSession;
    /// use glimmer_core::signing::ServiceKeyMaterial;
    /// use glimmer_crypto::drbg::Drbg;
    /// use glimmer_gateway::{Gateway, GatewayConfig, TenantConfig};
    /// use sgx_sim::AttestationService;
    ///
    /// const APP: &str = "iot-telemetry.example";
    /// let mut rng = Drbg::from_seed([1u8; 32]);
    /// let mut avs = AttestationService::new([2u8; 32]);
    /// let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    /// let gateway = Gateway::new(
    ///     GatewayConfig { slots_per_tenant: 1, ..GatewayConfig::default() },
    ///     vec![TenantConfig::new(
    ///         APP,
    ///         GlimmerDescriptor::iot_default(Vec::new()),
    ///         material.secret_bytes(),
    ///     )],
    ///     &mut avs,
    ///     &mut rng,
    /// )
    /// .unwrap();
    ///
    /// // Establish one device session and authorize it for client id 0.
    /// let approved = gateway.measurement(APP).unwrap();
    /// let (sid, offer) = gateway.open_session(APP).unwrap();
    /// let (accept, mut device) =
    ///     IotDeviceSession::connect(&offer, &avs, &approved, &mut rng).unwrap();
    /// gateway.complete_session(sid, &accept).unwrap();
    /// let masks = BlindingService::new([3u8; 32]).zero_sum_masks(0, &[0], 4);
    /// gateway.install_mask(sid, &masks[0]).unwrap();
    ///
    /// // The session's stream rides in as ONE admission sequence and ONE
    /// // shard-queue command, instead of one of each per request.
    /// let stream: Vec<Vec<u8>> = (0..3)
    ///     .map(|_| {
    ///         device.encrypt_request(
    ///             Contribution {
    ///                 app_id: APP.to_string(),
    ///                 client_id: 0,
    ///                 round: 0,
    ///                 payload: ContributionPayload::IotReadings { samples: vec![0.5; 4] },
    ///             },
    ///             PrivateData::None,
    ///         )
    ///     })
    ///     .collect();
    /// gateway.submit_many(sid, stream).unwrap();
    /// assert_eq!(gateway.drain_all().unwrap().len(), 3);
    /// ```
    pub fn submit_many(&self, session_id: u64, ciphertexts: Vec<Vec<u8>>) -> Result<()> {
        let n = ciphertexts.len() as u64;
        let result = self.submit_many_inner(session_id, ciphertexts);
        match &result {
            Ok(()) if n > 0 => self.shared.telemetry.admit_accept(n),
            Ok(()) => {}
            Err(e) => self.shared.telemetry.admit_reject(e, n, Some(session_id)),
        }
        result
    }

    fn submit_many_inner(&self, session_id: u64, ciphertexts: Vec<Vec<u8>>) -> Result<()> {
        let n = ciphertexts.len();
        if n == 0 {
            return Ok(());
        }
        let entry = self.session_entry(session_id)?;
        if entry.state != SessionState::Established {
            return Err(GatewayError::SessionNotEstablished(session_id));
        }
        let meta = &self.shared.tenants[entry.tenant_idx];
        self.reserve_admission(meta, entry.slot, n)?;
        let telemetry = &self.shared.telemetry;
        let sampler = telemetry.submit_sampler(n);
        let (shard, worker_idx) = meta.slots[entry.slot].location();
        // One exact-capacity vector is the whole per-call allocation cost.
        let items = ciphertexts
            .into_iter()
            .enumerate()
            .map(|(offset, ciphertext)| {
                (
                    worker_idx,
                    BatchItem {
                        session_id,
                        ciphertext,
                    },
                    sampler.tag(telemetry, offset, session_id),
                )
            })
            .collect();
        let sent = self.send_submit(shard, ShardCommand::SubmitMany { items });
        if sent.is_err() {
            Self::release_admission(meta, entry.slot, n);
            return sent;
        }
        meta.counters
            .submitted
            .fetch_add(n as u64, Ordering::SeqCst);
        Ok(())
    }

    /// Bulk admission across **many sessions** (the workload-generator /
    /// connection-multiplexer path): requests are grouped per slot, every
    /// group is reserved with one atomic sequence, and each shard receives
    /// at most one `SubmitMany` command for the whole call.
    ///
    /// Admission control is atomic across the call: if any session is
    /// unknown or unestablished, or any group trips a quota or
    /// backpressure, **nothing** is enqueued and every reservation already
    /// taken is rolled back before the error returns. The only partial
    /// outcome is a dying runtime ([`GatewayError::RuntimeUnavailable`]):
    /// shards are independent, so groups already handed to healthy shards
    /// stay queued while the dead shard's reservations are released.
    ///
    /// Within each slot, items keep the order they have in `requests`, so a
    /// single-threaded producer that replaces per-request `submit` calls
    /// with `submit_batch` chunks observes bit-identical drain results.
    pub fn submit_batch(&self, requests: Vec<(u64, Vec<u8>)>) -> Result<()> {
        if requests.is_empty() {
            return Ok(());
        }
        let total = requests.len() as u64;
        // Resolve every request's route once, under one table lock, into a
        // compact per-request vector. The bulk path deliberately avoids
        // maps: a chunk touches few distinct slots and shards, so
        // linear-probe count vectors keep the whole call at a handful of
        // allocations however many requests it carries.
        let mut routes: Vec<(usize, usize)> = Vec::with_capacity(requests.len());
        {
            let table = self.shared.table.lock().expect("session table poisoned");
            for (session_id, _) in &requests {
                let entry = match table.get(*session_id) {
                    Ok(entry) => entry,
                    Err(e) => {
                        // Routing failures refuse the whole batch.
                        self.shared
                            .telemetry
                            .admit_reject(&e, total, Some(*session_id));
                        return Err(e);
                    }
                };
                if entry.state != SessionState::Established {
                    let e = GatewayError::SessionNotEstablished(*session_id);
                    self.shared
                        .telemetry
                        .admit_reject(&e, total, Some(*session_id));
                    return Err(e);
                }
                routes.push((entry.tenant_idx, entry.slot));
            }
        }
        // Per-(tenant, slot) group sizes.
        let mut group_counts: Vec<(usize, usize, usize)> = Vec::new();
        for &(tenant_idx, slot_id) in &routes {
            match group_counts
                .iter_mut()
                .find(|(t, s, _)| *t == tenant_idx && *s == slot_id)
            {
                Some((_, _, n)) => *n += 1,
                None => group_counts.push((tenant_idx, slot_id, 1)),
            }
        }
        // Reserve group by group; the first failure rolls back every group
        // already reserved, so the whole batch rejects atomically.
        for (i, &(tenant_idx, slot_id, n)) in group_counts.iter().enumerate() {
            if let Err(e) = self.reserve_admission(&self.shared.tenants[tenant_idx], slot_id, n) {
                for &(t, s, m) in &group_counts[..i] {
                    Self::release_admission(&self.shared.tenants[t], s, m);
                }
                // Every request in the batch is refused, not just the group
                // that tripped the limit: count the rolled-back and
                // never-attempted groups as throttled too (the failing
                // group's `n` was already counted by reserve_admission), so
                // the per-tenant stat matches what the same rejection would
                // record arriving through `submit`/`submit_many`.
                for (j, &(t, _, m)) in group_counts.iter().enumerate() {
                    if j != i {
                        self.shared.tenants[t]
                            .counters
                            .throttled
                            .fetch_add(m as u64, Ordering::SeqCst);
                    }
                }
                self.shared.telemetry.admit_reject(&e, total, None);
                return Err(e);
            }
        }
        // One location read per (tenant, slot) group: every decision below
        // — shard bucket sizes, per-item worker indices, per-shard
        // accounting — derives from this single consistent snapshot. A
        // migration committed after the read at worst routes the whole
        // group through its old shard's forwarding tombstone; it can never
        // split a group across disagreeing reads.
        let group_locs: Vec<(usize, usize)> = group_counts
            .iter()
            .map(|&(t, s, _)| self.shared.tenants[t].slots[s].location())
            .collect();
        let loc_of = |tenant_idx: usize, slot_id: usize| {
            group_counts
                .iter()
                .position(|&(t, s, _)| t == tenant_idx && s == slot_id)
                .map(|i| group_locs[i])
                .expect("every route was counted into a group above")
        };
        // One flat, exact-capacity item vector per shard, filled in arrival
        // order (per-slot order is therefore the caller's order).
        let mut shard_counts: Vec<(usize, usize)> = Vec::new();
        for &(tenant_idx, slot_id) in &routes {
            let (shard, _) = loc_of(tenant_idx, slot_id);
            match shard_counts.iter_mut().find(|(s, _)| *s == shard) {
                Some((_, n)) => *n += 1,
                None => shard_counts.push((shard, 1)),
            }
        }
        // (worker slot index, item, trace tag) triples grouped by shard.
        type TaggedItems = Vec<(usize, BatchItem, u64)>;
        let mut per_shard: Vec<(usize, TaggedItems)> = shard_counts
            .iter()
            .map(|&(shard, n)| (shard, Vec::with_capacity(n)))
            .collect();
        let telemetry = &self.shared.telemetry;
        let sampler = telemetry.submit_sampler(routes.len());
        for (offset, ((session_id, ciphertext), &(tenant_idx, slot_id))) in
            requests.into_iter().zip(&routes).enumerate()
        {
            let (shard, worker_idx) = loc_of(tenant_idx, slot_id);
            let bucket = per_shard
                .iter_mut()
                .find(|(s, _)| *s == shard)
                .expect("every shard was counted above");
            bucket.1.push((
                worker_idx,
                BatchItem {
                    session_id,
                    ciphertext,
                },
                sampler.tag(telemetry, offset, session_id),
            ));
        }
        let mut first_error: Option<GatewayError> = None;
        for (shard, items) in per_shard {
            let count = items.len() as u64;
            match self.send_submit(shard, ShardCommand::SubmitMany { items }) {
                Ok(()) => {
                    telemetry.admit_accept(count);
                    for &(t, s, n) in &group_counts {
                        if loc_of(t, s).0 == shard {
                            self.shared.tenants[t]
                                .counters
                                .submitted
                                .fetch_add(n as u64, Ordering::SeqCst);
                        }
                    }
                }
                Err(e) => {
                    // This shard's worker is gone; its items were never
                    // enqueued, so release exactly its groups' reservations.
                    for &(t, s, n) in &group_counts {
                        if loc_of(t, s).0 == shard {
                            Self::release_admission(&self.shared.tenants[t], s, n);
                        }
                    }
                    telemetry.admit_reject(&e, count, None);
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drains every slot's queue through its enclave — one `PROCESS_BATCH`
    /// ECALL per non-empty slot, up to `max_batch` items each — and returns
    /// the replies for the caller to route back to devices. All shards drain
    /// their slots concurrently; replies are aggregated in shard order, so
    /// the result is deterministic for a deterministic workload.
    ///
    /// A slot whose whole-batch ECALL fails keeps its items queued — and a
    /// shard whose worker is gone is skipped — without aborting the sweep:
    /// replies already produced by other slots carry endorsements that
    /// consumed budget and replay nonces, so they must reach their devices.
    /// The first error is reported only after the sweep, and only if no
    /// responses were produced at all.
    pub fn drain(&self) -> Result<Vec<GatewayResponse>> {
        // Fan out first so every shard drains in parallel, then gather in
        // shard order. A dead shard contributes an error, never an abort:
        // the healthy shards' replies must still be gathered and returned.
        let mut pending = Vec::with_capacity(self.senders.len());
        let mut first_error: Option<GatewayError> = None;
        for shard in 0..self.senders.len() {
            let (tx, rx) = channel();
            match self.send(
                shard,
                ShardCommand::Drain {
                    reply: Reply::Sync(tx),
                },
            ) {
                Ok(()) => pending.push(rx),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        let mut responses = Vec::new();
        for rx in &pending {
            match Self::recv(rx) {
                Ok(report) => Self::fold_drain_report(report, &mut responses, &mut first_error),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        Self::drain_finish(responses, first_error)
    }

    /// Merges one shard's drain report into the sweep's aggregation.
    pub(crate) fn fold_drain_report(
        report: ShardDrainReport,
        responses: &mut Vec<GatewayResponse>,
        first_error: &mut Option<GatewayError>,
    ) {
        responses.extend(report.responses);
        if let Some(e) = report.first_error {
            first_error.get_or_insert(e);
        }
    }

    /// Finishes a sweep with the blocking path's error policy: an error
    /// surfaces only when no responses were produced at all.
    pub(crate) fn drain_finish(
        responses: Vec<GatewayResponse>,
        first_error: Option<GatewayError>,
    ) -> Result<Vec<GatewayResponse>> {
        match first_error {
            Some(e) if responses.is_empty() => Err(e),
            _ => Ok(responses),
        }
    }

    /// Async-front-end first half of [`Gateway::drain`]: fans the drain
    /// command out to every shard with waker-notified completions. The
    /// caller awaits the completions in shard order (so aggregation order
    /// matches the blocking path exactly) and folds them with
    /// [`Gateway::fold_drain_report`] / [`Gateway::drain_finish`].
    pub(crate) fn drain_begin(&self) -> (Vec<Completion<ShardDrainReport>>, Option<GatewayError>) {
        let mut pending = Vec::with_capacity(self.senders.len());
        let mut first_error: Option<GatewayError> = None;
        for shard in 0..self.senders.len() {
            let (completer, completion) = completion_pair();
            match self.send(
                shard,
                ShardCommand::Drain {
                    reply: Reply::Async(completer),
                },
            ) {
                Ok(()) => pending.push(completion),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        (pending, first_error)
    }

    /// Drains repeatedly until every queue is empty (bounded by queue sizes
    /// when no new work arrives concurrently).
    ///
    /// Like [`Gateway::drain`], replies already produced are never dropped:
    /// if a sweep fails after earlier sweeps yielded replies, the replies
    /// collected so far are returned and the error resurfaces on the next
    /// call (the failing slot keeps its items queued).
    pub fn drain_all(&self) -> Result<Vec<GatewayResponse>> {
        let mut all = Vec::new();
        loop {
            match self.drain() {
                Ok(batch) if batch.is_empty() => break,
                Ok(batch) => all.extend(batch),
                Err(e) if all.is_empty() => return Err(e),
                Err(_) => break,
            }
        }
        Ok(all)
    }

    /// Requests currently queued for `tenant` across its slots.
    pub fn queued(&self, tenant: &str) -> Result<usize> {
        Ok(self.tenant(tenant)?.queued.load(Ordering::SeqCst))
    }

    /// Live sessions (pending + established) across all tenants.
    #[must_use]
    pub fn live_sessions(&self) -> usize {
        self.shared
            .table
            .lock()
            .expect("session table poisoned")
            .len()
    }

    /// Closes every session still pending after `older_than` (per the
    /// gateway's injected [`Clock`]) and returns the evicted ids. Without
    /// this, a client that requests handshake offers and never completes
    /// them would pin its tenant's session quota forever; operators call
    /// this on a timer.
    pub fn evict_stale_pending(&self, older_than: std::time::Duration) -> Vec<u64> {
        let now = self.shared.clock.now_nanos();
        let stale = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .stale_pending(older_than, now);
        // The stale list is a snapshot; a device may complete its handshake
        // between the snapshot and this loop. Each teardown therefore
        // re-checks pending-ness under the table lock, so a session that
        // just established is spared (and not reported as evicted).
        let evicted: Vec<u64> = stale
            .into_iter()
            .filter(|&session_id| self.close_session_if_pending(session_id))
            .collect();
        self.shared
            .telemetry
            .record_sessions_evicted(evicted.len() as u64);
        evicted
    }

    /// The configuration this gateway was built with (eviction periods,
    /// shard/batch limits, the front door's [`NetConfig`](crate::NetConfig)).
    #[must_use]
    pub fn config(&self) -> &crate::GatewayConfig {
        &self.shared.config
    }

    /// The gateway's injected [`Clock`] — share it with a
    /// [`SessionExecutor`](crate::frontend::SessionExecutor) so front-end
    /// timers (idle deadlines, eviction periods) and the gateway's own
    /// staleness decisions read the same time source.
    #[must_use]
    pub fn clock_handle(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.shared.clock)
    }

    /// Captures a crash-consistent checkpoint of the serving gateway:
    /// sealed per-slot enclave state (service keys, session channel keys,
    /// masks, replay nonces, auditor counters — sealed *by the enclaves*,
    /// opaque to the gateway), the established-session table, per-tenant
    /// quota counters, and per-slot stats.
    ///
    /// The capture quiesces the shard workers with a two-phase barrier:
    /// every worker pauses at its command queue, the routing layer snapshots
    /// the shared state while nothing mutates enclave state, then the
    /// workers export their slots' sealed state and resume. Traffic
    /// submitted concurrently is simply ordered after the checkpoint (FIFO
    /// shard queues), so the snapshot is a consistent cut in the direction
    /// that matters: every session in the captured table has its keys in
    /// the captured enclave state (the enclave accept always precedes the
    /// table establish). The reverse can transiently fail — a
    /// `close_session` racing the barrier removes the table entry first,
    /// leaving the session's keys in the sealed export — which is why
    /// restore hands each enclave the authoritative live set and prunes
    /// everything else at import.
    ///
    /// Deliberately **not** captured: in-flight queue entries (unacked —
    /// devices retransmit after a restart, and their replay nonces are only
    /// recorded at processing time, so the retransmission is accepted
    /// exactly once) and pending handshakes (ephemeral DH secrets must die
    /// with the process).
    ///
    /// # Errors
    ///
    /// [`GatewayError::BarrierConflict`] when another checkpoint (or a
    /// shutdown) already holds the worker quiesce barrier,
    /// [`GatewayError::RuntimeUnavailable`] when a shard worker is gone,
    /// and enclave export failures as [`GatewayError::Glimmer`]. A failed
    /// checkpoint releases the paused workers untouched.
    ///
    /// # Examples
    ///
    /// A checkpoint survives the process: rebuild the gateway from its
    /// serialized snapshot with [`Gateway::restore`] instead of
    /// re-provisioning every enclave. The rng stands in for the machine's
    /// hardware identity, so restore must receive a generator in the same
    /// state `Gateway::new` did:
    ///
    /// ```
    /// use glimmer_core::host::GlimmerDescriptor;
    /// use glimmer_core::signing::ServiceKeyMaterial;
    /// use glimmer_crypto::drbg::Drbg;
    /// use glimmer_gateway::{Gateway, GatewayConfig, GatewaySnapshot, TenantConfig};
    /// use sgx_sim::AttestationService;
    ///
    /// let mut rng = Drbg::from_seed([4u8; 32]);
    /// let mut avs = AttestationService::new([5u8; 32]);
    /// let material = ServiceKeyMaterial::generate(&mut rng).unwrap();
    /// let config = || GatewayConfig { slots_per_tenant: 1, ..GatewayConfig::default() };
    /// let tenants = || {
    ///     vec![TenantConfig::new(
    ///         "maps.example",
    ///         GlimmerDescriptor::iot_default(Vec::new()),
    ///         material.secret_bytes(),
    ///     )]
    /// };
    ///
    /// let machine_seed = [6u8; 32];
    /// let gateway = Gateway::new(
    ///     config(),
    ///     tenants(),
    ///     &mut avs,
    ///     &mut Drbg::from_seed(machine_seed),
    /// )
    /// .unwrap();
    /// let bytes = gateway.checkpoint().unwrap().to_bytes();
    /// drop(gateway); // the crash: every enclave dies with the process
    ///
    /// let snapshot = GatewaySnapshot::from_bytes(&bytes).unwrap();
    /// let restored = Gateway::restore(
    ///     config(),
    ///     tenants(),
    ///     &snapshot,
    ///     &mut avs,
    ///     &mut Drbg::from_seed(machine_seed), // same machine identity
    /// )
    /// .unwrap();
    /// assert_eq!(restored.tenant_names(), vec!["maps.example".to_string()]);
    /// ```
    pub fn checkpoint(&self) -> Result<GatewaySnapshot> {
        self.checkpoint_with_hooks(&NoCrash)
    }

    /// [`Gateway::checkpoint`] with injected [`CrashHooks`] — the
    /// crash-fault-injection harness kills the checkpoint at any labelled
    /// [`CrashPoint`]; an aborted checkpoint releases the paused workers
    /// untouched and returns [`GatewayError::CrashInjected`].
    pub fn checkpoint_with_hooks(&self, hooks: &dyn CrashHooks) -> Result<GatewaySnapshot> {
        let crash = |point: CrashPoint| -> Result<()> {
            if hooks.reached(point) {
                Err(GatewayError::CrashInjected(point))
            } else {
                Ok(())
            }
        };
        crash(CrashPoint::BeforeCheckpoint)?;
        let checkpoint_start_nanos = self.shared.clock.now_nanos();
        // One whole-gateway quiesce operation at a time: a second
        // checkpoint (or a shutdown) arriving while this one holds the
        // two-phase worker barrier would deadlock the workers, so the loser
        // gets a typed error instead. The guard releases on every exit
        // path, including injected crashes and export failures.
        let _barrier = BarrierGuard::acquire(&self.shared, BarrierOp::Checkpoint)?;
        // A migration claims its slot *before* re-checking the global
        // barrier (SeqCst store-then-load on both sides), so scanning the
        // per-slot claims after taking the global guard above guarantees
        // at least one of two racing coordinators sees the other and backs
        // off with a typed error. Skipping this scan would deadlock: a
        // mid-flight migration leaves its source worker paused, and the
        // fleet-wide pause below would wait on that worker forever.
        for tenant in self.shared.tenants.iter() {
            for info in tenant.slots.iter() {
                let claimed = info.gauges.claim.load(Ordering::SeqCst);
                if claimed != BARRIER_IDLE {
                    return Err(GatewayError::BarrierConflict {
                        in_progress: BarrierOp::decode(claimed)
                            .expect("non-idle slot claim always holds an encoded op"),
                        requested: BarrierOp::Checkpoint,
                    });
                }
            }
        }
        let epoch = self.shared.checkpoint_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let created_at_nanos = self.shared.clock.now_nanos();
        let header = Arc::new(glimmer_wire::snapshot::header_bytes(
            GATEWAY_SNAPSHOT_KIND,
            epoch,
            created_at_nanos,
        ));

        // Phase 1: barrier in. Every worker acknowledges the checkpoint and
        // pauses. On any failure (or injected crash) from here on, dropping
        // the `go` senders releases the paused workers untouched.
        let mut readies = Vec::with_capacity(self.senders.len());
        let mut gos = Vec::with_capacity(self.senders.len());
        let mut replies = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (ready_tx, ready_rx) = channel();
            let (go_tx, go_rx) = channel();
            let (reply_tx, reply_rx) = channel();
            self.send(
                shard,
                ShardCommand::Checkpoint {
                    header: Arc::clone(&header),
                    ready: ready_tx,
                    go: go_rx,
                    reply: reply_tx,
                },
            )?;
            readies.push(ready_rx);
            gos.push(go_tx);
            replies.push(reply_rx);
        }
        for rx in &readies {
            Self::recv(rx)?;
        }
        crash(CrashPoint::WorkersQuiesced)?;

        // Consistent capture of the shared state while every worker is
        // paused: only Established sessions are persisted (their enclave
        // keys are in the exports below; pending handshakes are dropped and
        // devices reopen them).
        let (sessions, next_session_id) = {
            let table = self.shared.table.lock().expect("session table poisoned");
            let mut records: Vec<SessionRecord> = table
                .iter()
                .filter(|(_, entry)| entry.state == SessionState::Established)
                .map(|(id, entry)| SessionRecord {
                    session_id: *id,
                    tenant_idx: entry.tenant_idx,
                    slot: entry.slot,
                    opened_at_nanos: entry.opened_at_nanos,
                })
                .collect();
            records.sort_unstable_by_key(|record| record.session_id);
            (records, table.next_id())
        };
        let counters: Vec<_> = self
            .shared
            .tenants
            .iter()
            .map(|meta| meta.counters.snapshot())
            .collect();
        let submit_commands = self.shared.submit_commands.load(Ordering::SeqCst);
        crash(CrashPoint::StateCaptured)?;

        // Phase 2: barrier out. Workers export their slots' sealed state
        // (still before any queued command runs on them) and resume.
        for go in &gos {
            let _ = go.send(true);
        }
        let mut exported: Vec<SlotCheckpoint> = Vec::new();
        for rx in &replies {
            exported.extend(Self::recv(rx)??);
        }
        crash(CrashPoint::SlotsExported)?;

        // Assemble, grouping slots per tenant in slot-id order (exports
        // arrive in shard order).
        let mut per_tenant: Vec<Vec<SlotSnapshot>> =
            (0..self.shared.tenants.len()).map(|_| Vec::new()).collect();
        for export in exported {
            per_tenant[export.tenant_idx].push(SlotSnapshot {
                slot_id: export.slot_id,
                dirty_epoch: export.dirty_epoch,
                state_epoch: export.state_epoch,
                stats: Self::persisted_stats(&export.stats),
                sealed_state: export.sealed_state,
            });
        }
        let tenants = self
            .shared
            .tenants
            .iter()
            .zip(per_tenant)
            .zip(counters)
            .map(|((meta, mut slots), tenant_counters)| {
                slots.sort_unstable_by_key(|slot| slot.slot_id);
                TenantSnapshot {
                    name: meta.name.to_string(),
                    measurement: meta.measurement,
                    counters: tenant_counters,
                    slots,
                }
            })
            .collect();
        let snapshot = GatewaySnapshot {
            epoch,
            created_at_nanos,
            slots_per_tenant: self.shared.config.slots_per_tenant,
            next_session_id,
            submit_commands,
            tenants,
            sessions,
        };
        crash(CrashPoint::SnapshotAssembled)?;
        let exported_slots = snapshot.tenants.iter().map(|t| t.slots.len() as u64).sum();
        self.shared
            .telemetry
            .count_checkpoint_slots(exported_slots, 0);
        self.shared.telemetry.record_checkpoint(
            self.shared
                .clock
                .now_nanos()
                .saturating_sub(checkpoint_start_nanos),
        );
        Ok(snapshot)
    }

    /// Zeroes the per-incarnation fields of a slot's captured stats so the
    /// snapshot value round-trips exactly through its serialization (the
    /// codec does not persist them): wall-clock latency and ECALL counts
    /// restart with the process, queues are not persisted, and sessions
    /// re-pin via the restored table.
    fn persisted_stats(stats: &crate::stats::SlotStats) -> crate::stats::SlotStats {
        crate::stats::SlotStats {
            drain_nanos: 0,
            ecalls: 0,
            active_sessions: 0,
            queue_depth: 0,
            last_drain_queue_depth: 0,
            ..stats.clone()
        }
    }

    /// Appends one slot's Established session rows to `sessions`. Called
    /// while the slot's owning worker is paused at an export barrier (or,
    /// on the delta fast path, bracketed by dirty-epoch re-reads), so every
    /// row captured here has its channel keys in the slot's captured state.
    fn capture_slot_sessions(
        &self,
        tenant_idx: usize,
        slot_id: usize,
        sessions: &mut Vec<SessionRecord>,
    ) {
        let table = self.shared.table.lock().expect("session table poisoned");
        sessions.extend(
            table
                .iter()
                .filter(|(_, entry)| {
                    entry.tenant_idx == tenant_idx
                        && entry.slot == slot_id
                        && entry.state == SessionState::Established
                })
                .map(|(id, entry)| SessionRecord {
                    session_id: *id,
                    tenant_idx: entry.tenant_idx,
                    slot: entry.slot,
                    opened_at_nanos: entry.opened_at_nanos,
                }),
        );
    }

    /// Runs one slot's two-phase export barrier: pauses the owning worker,
    /// captures the slot's Established rows while it is paused, then
    /// releases the worker to export the slot (skipping the seal when the
    /// enclave's state epoch still equals `known_state_epoch`) and returns
    /// its reply. Only this slot's shard pauses; every other shard keeps
    /// serving.
    /// Callers hold the slot's [`SlotClaim`] around this call: the claim is
    /// what keeps a concurrent migration from moving the slot between the
    /// location read below and the barrier command landing on its worker.
    fn export_slot_barrier(
        &self,
        tenant_idx: usize,
        slot_id: usize,
        header: &Arc<Vec<u8>>,
        known_state_epoch: Option<u64>,
        sessions: &mut Vec<SessionRecord>,
    ) -> Result<SlotExport> {
        let (shard, slot) = self.shared.tenants[tenant_idx].slots[slot_id].location();
        let (ready_tx, ready_rx) = channel();
        let (go_tx, go_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        self.send(
            shard,
            ShardCommand::ExportSlot {
                slot,
                header: Arc::clone(header),
                known_state_epoch,
                ready: ready_tx,
                go: go_rx,
                reply: reply_tx,
            },
        )?;
        Self::recv(&ready_rx)?;
        // The worker is paused: nothing mutates this slot's enclave between
        // this row capture and the export below, so the per-slot cut is
        // consistent in the direction that matters (every captured row has
        // its keys in the export; orphaned keys are pruned at restore).
        self.capture_slot_sessions(tenant_idx, slot_id, sessions);
        let _ = go_tx.send(true);
        Self::recv(&reply_rx)?
    }

    /// Captures the cheap shared state that closes out a streamed or delta
    /// capture: the session-id counter, the submit-command counter, and the
    /// per-tenant quota counters. Captured *after* the per-slot exports, so
    /// each value is a superset of what the exported slots saw — safe
    /// over-counts (ids never reissue below the counter; quota counters are
    /// cumulative).
    fn capture_shared_tail(&self) -> (u64, u64, Vec<crate::stats::TenantStats>) {
        let next_session_id = self
            .shared
            .table
            .lock()
            .expect("session table poisoned")
            .next_id();
        let counters = self
            .shared
            .tenants
            .iter()
            .map(|meta| meta.counters.snapshot())
            .collect();
        let submit_commands = self.shared.submit_commands.load(Ordering::SeqCst);
        (next_session_id, submit_commands, counters)
    }

    /// Captures a full checkpoint **slot at a time** instead of under a
    /// global quiesce: each pool slot is exported behind a per-slot barrier
    /// that pauses only its owning shard worker, while every other shard
    /// keeps admitting and draining traffic. The result is the same
    /// [`GatewaySnapshot`] type [`Gateway::checkpoint`] produces —
    /// byte-identical for an idle gateway — but housekeeping no longer
    /// stops the world: capture latency overlaps serving instead of adding
    /// to it.
    ///
    /// Consistency is per slot rather than global: a slot's Established
    /// rows are captured while its worker is paused at the export barrier,
    /// so every captured session has its keys in that slot's export (the
    /// invariant restore relies on). Sessions established on an
    /// already-captured slot after its barrier are simply ordered after
    /// this checkpoint, exactly like traffic behind the global barrier.
    /// The id/quota counters are captured last, which can only over-count —
    /// ids never reissue below the counter and the quota counters are
    /// cumulative.
    ///
    /// # Errors
    ///
    /// Same surface as [`Gateway::checkpoint`]:
    /// [`GatewayError::BarrierConflict`] when another checkpoint or a
    /// shutdown holds the quiesce claim (the claim is held for mutual
    /// exclusion even though no global pause happens),
    /// [`GatewayError::RuntimeUnavailable`] when a shard worker is gone,
    /// and enclave export failures as [`GatewayError::Glimmer`].
    pub fn checkpoint_streamed(&self) -> Result<GatewaySnapshot> {
        self.checkpoint_streamed_with_hooks(&NoCrash)
    }

    /// [`Gateway::checkpoint_streamed`] with injected [`CrashHooks`]. The
    /// [`CrashPoint::MidStreamExport`] hook fires after each slot's export
    /// barrier releases — no worker is paused there, so a harness may drive
    /// live traffic from inside the hook to exercise capture/serving
    /// overlap.
    pub fn checkpoint_streamed_with_hooks(
        &self,
        hooks: &dyn CrashHooks,
    ) -> Result<GatewaySnapshot> {
        let crash = |point: CrashPoint| -> Result<()> {
            if hooks.reached(point) {
                Err(GatewayError::CrashInjected(point))
            } else {
                Ok(())
            }
        };
        crash(CrashPoint::BeforeCheckpoint)?;
        let checkpoint_start_nanos = self.shared.clock.now_nanos();
        // The barrier claim is mutual exclusion only — no worker pauses
        // under it for longer than its own slot's export.
        let _barrier = BarrierGuard::acquire(&self.shared, BarrierOp::Checkpoint)?;
        let epoch = self.shared.checkpoint_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let created_at_nanos = self.shared.clock.now_nanos();
        let header = Arc::new(glimmer_wire::snapshot::header_bytes(
            GATEWAY_SNAPSHOT_KIND,
            epoch,
            created_at_nanos,
        ));

        let mut sessions: Vec<SessionRecord> = Vec::new();
        let mut per_tenant: Vec<Vec<SlotSnapshot>> =
            (0..self.shared.tenants.len()).map(|_| Vec::new()).collect();
        for tenant_idx in 0..self.shared.tenants.len() {
            for slot_id in 0..self.shared.tenants[tenant_idx].slots.len() {
                // Slot-level claim: a migration racing this capture loses on
                // exactly the contended slot (typed `BarrierConflict`) —
                // every other slot keeps migrating/serving freely. Held
                // across the crash hook below so the hook observes the
                // mid-slot state, which is what the rebalance regression
                // test races against.
                let gauges = Arc::clone(&self.shared.tenants[tenant_idx].slots[slot_id].gauges);
                let claim = SlotClaim::acquire(&gauges, BarrierOp::Checkpoint)?;
                let export =
                    self.export_slot_barrier(tenant_idx, slot_id, &header, None, &mut sessions)?;
                per_tenant[export.tenant_idx].push(SlotSnapshot {
                    slot_id: export.slot_id,
                    sealed_state: export.sealed_state.expect("a forced export always seals"),
                    dirty_epoch: export.dirty_epoch,
                    state_epoch: export.state_epoch,
                    stats: Self::persisted_stats(&export.stats),
                });
                crash(CrashPoint::MidStreamExport)?;
                drop(claim);
            }
        }
        sessions.sort_unstable_by_key(|record| record.session_id);
        let (next_session_id, submit_commands, counters) = self.capture_shared_tail();
        let tenants = self
            .shared
            .tenants
            .iter()
            .zip(per_tenant)
            .zip(counters)
            .map(|((meta, slots), tenant_counters)| TenantSnapshot {
                name: meta.name.to_string(),
                measurement: meta.measurement,
                counters: tenant_counters,
                slots,
            })
            .collect();
        let snapshot = GatewaySnapshot {
            epoch,
            created_at_nanos,
            slots_per_tenant: self.shared.config.slots_per_tenant,
            next_session_id,
            submit_commands,
            tenants,
            sessions,
        };
        crash(CrashPoint::SnapshotAssembled)?;
        let exported_slots = snapshot.tenants.iter().map(|t| t.slots.len() as u64).sum();
        self.shared
            .telemetry
            .count_checkpoint_slots(exported_slots, 0);
        self.shared.telemetry.record_checkpoint(
            self.shared
                .clock
                .now_nanos()
                .saturating_sub(checkpoint_start_nanos),
        );
        Ok(snapshot)
    }

    /// Captures an **incremental** checkpoint against `base`: only slots
    /// whose dirty-epoch advanced past the base frame re-run their
    /// `EXPORT_STATE` ECALL; clean slots are skipped entirely — no barrier,
    /// no seal, no ECALL — which is what lets housekeeping on a mostly-idle
    /// gateway run at hardware speed (the E18 claim: ECALL count and wall
    /// time scale with the *dirty* slot count, not the pool size).
    ///
    /// The capture streams slot-at-a-time like
    /// [`Gateway::checkpoint_streamed`]. A clean slot's rows are captured
    /// bracketed by two dirty-epoch reads; if the epoch moved between them
    /// the fast path is abandoned and the slot takes the export barrier
    /// like a dirty one (the worker bumps the epoch *before* mutating, so
    /// an unchanged epoch proves the captured rows match the base's sealed
    /// state).
    ///
    /// Fresh sealed exports are AAD-bound to the **chained** header
    /// (`delta header ‖ base header`), so a delta's blobs cannot be spliced
    /// onto any other base even if chain metadata is forged. Restore with
    /// [`Gateway::restore_chain`]; chain the next delta from
    /// [`GatewayDelta::chain_base`].
    ///
    /// # Errors
    ///
    /// Same surface as [`Gateway::checkpoint_streamed`].
    pub fn checkpoint_delta(&self, base: &ChainBase) -> Result<GatewayDelta> {
        self.checkpoint_delta_with_hooks(base, &NoCrash)
    }

    /// [`Gateway::checkpoint_delta`] with injected [`CrashHooks`]
    /// ([`CrashPoint::MidStreamExport`] after each barriered export,
    /// [`CrashPoint::DeltaAssembled`] once the delta is built).
    pub fn checkpoint_delta_with_hooks(
        &self,
        base: &ChainBase,
        hooks: &dyn CrashHooks,
    ) -> Result<GatewayDelta> {
        let crash = |point: CrashPoint| -> Result<()> {
            if hooks.reached(point) {
                Err(GatewayError::CrashInjected(point))
            } else {
                Ok(())
            }
        };
        crash(CrashPoint::BeforeCheckpoint)?;
        let checkpoint_start_nanos = self.shared.clock.now_nanos();
        let _barrier = BarrierGuard::acquire(&self.shared, BarrierOp::Checkpoint)?;
        let epoch = self.shared.checkpoint_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let created_at_nanos = self.shared.clock.now_nanos();
        // Every fresh seal in this delta binds to `header ‖ base_header`.
        let sealing_header = Arc::new(glimmer_wire::snapshot::chained_header_bytes(
            GATEWAY_DELTA_KIND,
            epoch,
            created_at_nanos,
            &base.header,
        ));

        let mut sessions: Vec<SessionRecord> = Vec::new();
        let mut exported_slots = 0u64;
        let mut skipped_slots = 0u64;
        let mut per_tenant: Vec<Vec<DeltaSlot>> =
            (0..self.shared.tenants.len()).map(|_| Vec::new()).collect();
        for (tenant_idx, tenant_slots) in per_tenant.iter_mut().enumerate() {
            for slot_id in 0..self.shared.tenants[tenant_idx].slots.len() {
                let info = &self.shared.tenants[tenant_idx].slots[slot_id];
                let base_slot = base.slot(tenant_idx, slot_id);
                if let Some((base_dirty, base_state)) = base_slot {
                    let first_read = info.gauges.dirty_epoch.load(Ordering::SeqCst);
                    if first_read == base_dirty {
                        // Clean fast path: no barrier, no ECALL. Capture the
                        // rows, then re-read the epoch — a concurrent
                        // mutation between the reads falls back to the
                        // barriered export below (the worker bumps the
                        // epoch before touching the enclave, so an
                        // unchanged epoch proves the rows match the base's
                        // sealed state).
                        let mark = sessions.len();
                        self.capture_slot_sessions(tenant_idx, slot_id, &mut sessions);
                        if info.gauges.dirty_epoch.load(Ordering::SeqCst) == first_read {
                            tenant_slots.push(DeltaSlot {
                                slot_id,
                                dirty_epoch: first_read,
                                // The base's export stays authoritative for
                                // this slot; carry its enclave epoch so the
                                // next delta in the chain keeps skipping it.
                                state_epoch: base_state,
                                sealed_state: None,
                                stats: crate::stats::SlotStats::default(),
                            });
                            skipped_slots += 1;
                            continue;
                        }
                        sessions.truncate(mark);
                    }
                }
                let claim = SlotClaim::acquire(&info.gauges, BarrierOp::Checkpoint)?;
                let export = self.export_slot_barrier(
                    tenant_idx,
                    slot_id,
                    &sealing_header,
                    base_slot.map(|(_, state)| state),
                    &mut sessions,
                )?;
                if export.sealed_state.is_some() {
                    exported_slots += 1;
                } else {
                    skipped_slots += 1;
                }
                tenant_slots.push(DeltaSlot {
                    slot_id: export.slot_id,
                    dirty_epoch: export.dirty_epoch,
                    state_epoch: export.state_epoch,
                    sealed_state: export.sealed_state,
                    stats: Self::persisted_stats(&export.stats),
                });
                crash(CrashPoint::MidStreamExport)?;
                drop(claim);
            }
        }
        sessions.sort_unstable_by_key(|record| record.session_id);
        let (next_session_id, submit_commands, counters) = self.capture_shared_tail();
        let tenants = self
            .shared
            .tenants
            .iter()
            .zip(per_tenant)
            .zip(counters)
            .map(|((meta, slots), tenant_counters)| DeltaTenant {
                name: meta.name.to_string(),
                measurement: meta.measurement,
                counters: tenant_counters,
                slots,
            })
            .collect();
        let delta = GatewayDelta {
            epoch,
            created_at_nanos,
            base_epoch: base.epoch,
            base_header: base.header.clone(),
            slots_per_tenant: self.shared.config.slots_per_tenant,
            next_session_id,
            submit_commands,
            tenants,
            sessions,
        };
        crash(CrashPoint::DeltaAssembled)?;
        self.shared
            .telemetry
            .count_checkpoint_slots(exported_slots, skipped_slots);
        self.shared.telemetry.record_delta_checkpoint(
            self.shared
                .clock
                .now_nanos()
                .saturating_sub(checkpoint_start_nanos),
        );
        Ok(delta)
    }

    /// Live-migrates one tenant pool slot to `target_shard` while the rest
    /// of the fleet keeps serving. The protocol: claim the slot (typed
    /// [`GatewayError::BarrierConflict`] if a capture holds it), pause its
    /// source worker, seal the enclave state at the handoff point (a
    /// crash-recovery artifact, AAD-bound to the migration header), move
    /// the whole live slot — enclave handle, queued work, gauges — to the
    /// target worker, and retarget the routing table in one atomic store.
    /// The source worker stays paused until the commit, so no command can
    /// reach the slot's tombstone before the routing table points at the
    /// new owner; strays that raced the in-flight window forward through
    /// the tombstone (reply channels travel with them), and a trailing
    /// FIFO fence on the source shard flushes them before this returns.
    ///
    /// Naming the shard the slot already lives on is a no-op that still
    /// reports success (`from_shard == to_shard`, nothing sealed or moved).
    ///
    /// # Errors
    ///
    /// [`GatewayError::UnknownTenant`] / [`GatewayError::UnknownSlot`] /
    /// [`GatewayError::UnknownShard`] for a bad address;
    /// [`GatewayError::BarrierConflict`] when the slot is mid-capture
    /// (streamed or delta checkpoint) or a fleet-wide checkpoint/shutdown
    /// holds the quiesce barrier; [`GatewayError::Glimmer`] when the
    /// handoff seal fails — in every error case the slot is still (or
    /// again) owned by its source shard and keeps serving.
    pub fn migrate_slot(
        &self,
        tenant: &str,
        slot_id: usize,
        target_shard: usize,
    ) -> Result<MigrationReport> {
        self.migrate_slot_with_hooks(tenant, slot_id, target_shard, &NoCrash)
    }

    /// [`Gateway::migrate_slot`] with injected [`CrashHooks`] — the
    /// migration arm of the crash-fault-injection matrix. Every injected
    /// crash fails closed back to the source shard: the slot ends the call
    /// owned by its original worker with its queue intact, so no
    /// endorsement is lost or duplicated.
    pub fn migrate_slot_with_hooks(
        &self,
        tenant: &str,
        slot_id: usize,
        target_shard: usize,
        hooks: &dyn CrashHooks,
    ) -> Result<MigrationReport> {
        let crash = |point: CrashPoint| -> Result<()> {
            if hooks.reached(point) {
                Err(GatewayError::CrashInjected(point))
            } else {
                Ok(())
            }
        };
        if target_shard >= self.senders.len() {
            return Err(GatewayError::UnknownShard {
                shard: target_shard,
                shards: self.senders.len(),
            });
        }
        let tenant_idx = self.shared.tenant_idx(tenant)?;
        let info = self.shared.tenants[tenant_idx]
            .slots
            .get(slot_id)
            .ok_or_else(|| GatewayError::UnknownSlot {
                tenant: tenant.to_string(),
                slot: slot_id,
            })?;
        let start_nanos = self.shared.clock.now_nanos();
        // Slot first, fleet second: the full checkpoint does the mirror
        // image (fleet barrier first, then a scan of every slot claim), so
        // with SeqCst on both sides at least one of two racing coordinators
        // observes the other and fails typed — never both proceeding into a
        // worker-pause deadlock.
        let _claim = SlotClaim::acquire(&info.gauges, BarrierOp::Rebalance)?;
        let fleet = self.shared.barrier.load(Ordering::SeqCst);
        if fleet != BARRIER_IDLE {
            return Err(GatewayError::BarrierConflict {
                in_progress: BarrierOp::decode(fleet)
                    .expect("a non-idle barrier always holds an encoded op"),
                requested: BarrierOp::Rebalance,
            });
        }
        // One migration at a time: two in opposite directions would each
        // pause the worker the other's import needs.
        let _coordinator = self
            .shared
            .migration
            .lock()
            .expect("migration coordinators never panic under this lock");
        let (from_shard, from_idx) = info.location();
        if from_shard == target_shard {
            return Ok(MigrationReport {
                tenant: tenant.to_string(),
                slot_id,
                from_shard,
                to_shard: target_shard,
                queued_moved: 0,
                sealed_bytes: 0,
                state_epoch: 0,
                duration_nanos: 0,
            });
        }
        // The handoff seal binds to the *current* checkpoint epoch — a
        // migration is not a checkpoint and consumes no epoch.
        let header = Arc::new(glimmer_wire::snapshot::header_bytes(
            GATEWAY_SNAPSHOT_KIND,
            self.shared.checkpoint_epoch.load(Ordering::SeqCst),
            self.shared.clock.now_nanos(),
        ));
        let (ready_tx, ready_rx) = channel();
        let (go_tx, go_rx) = channel();
        let (reply_tx, reply_rx) = channel();
        let (done_tx, done_rx) = channel();
        self.send(
            from_shard,
            ShardCommand::MigrateOut {
                slot: from_idx,
                header,
                ready: ready_tx,
                go: go_rx,
                reply: reply_tx,
                done: done_rx,
            },
        )?;
        Self::recv(&ready_rx)?;
        // The source worker is paused. `MidMigrationExport` models the
        // process dying before the slot was touched: release the worker
        // untouched and fail.
        if let Err(e) = crash(CrashPoint::MidMigrationExport) {
            let _ = go_tx.send(false);
            self.shared.telemetry.record_migration_aborted();
            return Err(e);
        }
        if go_tx.send(true).is_err() {
            return Err(GatewayError::RuntimeUnavailable);
        }
        let package = match Self::recv(&reply_rx)? {
            Ok(package) => package,
            Err(e) => {
                // The export failed inside the worker; the slot never left.
                self.shared.telemetry.record_migration_aborted();
                return Err(e);
            }
        };
        let queued_moved = info.gauges.queue_depth.load(Ordering::SeqCst);
        let sealed_bytes = package.sealed_state.len();
        let state_epoch = package.state_epoch;
        // The slot is in flight and its source worker is parked on `done`.
        // Both remaining crash points unwind identically — hand the slot
        // straight back to the worker that still logically owns it.
        // `SlotHandedOff` models dying with the slot in transit;
        // `MidMigrationImport` models dying at the import boundary (the
        // commit below is one atomic store, so no partially-imported state
        // exists to distinguish the two on recovery).
        if let Err(e) =
            crash(CrashPoint::SlotHandedOff).and_then(|()| crash(CrashPoint::MidMigrationImport))
        {
            let _ = done_tx.send(Some(package.worker));
            self.shared.telemetry.record_migration_aborted();
            return Err(e);
        }
        let (import_tx, import_rx) = channel();
        if let Err(send_err) = self.senders[target_shard].send(ShardCommand::MigrateIn {
            worker: package.worker,
            reply: import_tx,
        }) {
            // Target worker gone (runtime tearing down): fail closed by
            // reinstalling the slot on its source shard.
            if let ShardCommand::MigrateIn { worker, .. } = send_err.0 {
                let _ = done_tx.send(Some(worker));
            }
            self.shared.telemetry.record_migration_aborted();
            return Err(GatewayError::RuntimeUnavailable);
        }
        let new_idx = Self::recv(&import_rx)?;
        // Commit: one SeqCst store retargets every future routing read.
        // From here the migration is irrevocable.
        info.set_location(target_shard, new_idx);
        if done_tx.send(None).is_err() {
            return Err(GatewayError::RuntimeUnavailable);
        }
        // Flush strays: the queue is FIFO, so this fence's reply proves
        // every command the routing layer sent to the source shard before
        // the commit has been served — forwarded through the tombstone or
        // answered — before the migration call returns.
        let (fence_tx, fence_rx) = channel();
        self.send(from_shard, ShardCommand::Fence { reply: fence_tx })?;
        Self::recv(&fence_rx)?;
        let duration_nanos = self.shared.clock.now_nanos().saturating_sub(start_nanos);
        self.shared.telemetry.record_migration(duration_nanos);
        Ok(MigrationReport {
            tenant: tenant.to_string(),
            slot_id,
            from_shard,
            to_shard: target_shard,
            queued_moved,
            sealed_bytes,
            state_epoch,
            duration_nanos,
        })
    }

    /// Rebuilds a serving gateway from a base snapshot plus an ordered
    /// chain of [`GatewayDelta`]s — the restore counterpart of
    /// [`Gateway::checkpoint_delta`]. The chain is validated fail-closed
    /// *before* any enclave is touched (every delta must name its
    /// predecessor's exact epoch and header bytes — gaps, reorders, and
    /// cross-chain splices reject typed as
    /// [`GatewayError::SnapshotChainBroken`]), then folded: each slot
    /// restores from the **latest** frame that exported it, under that
    /// frame's sealing AAD, while the session table, counters, and id
    /// counters come wholesale from the last delta. An empty chain is
    /// exactly [`Gateway::restore`].
    ///
    /// # Errors
    ///
    /// [`GatewayError::SnapshotChainBroken`] for any chain-link mismatch,
    /// plus the whole [`Gateway::restore`] surface
    /// ([`GatewayError::SnapshotMismatch`],
    /// [`GatewayError::SealedBlobRejected`], …). Even a delta whose chain
    /// metadata was forged consistently fails closed: its sealed blobs are
    /// AAD-bound to the true base header inside the enclave, so the unseal
    /// itself refuses.
    pub fn restore_chain(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        chain: SnapshotChain<'_>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
    ) -> Result<Self> {
        Self::restore_chain_with_clock(
            config,
            tenants,
            chain,
            avs,
            rng,
            Arc::new(SystemClock::new()),
        )
    }

    /// [`Gateway::restore_chain`] with an injected [`Clock`].
    pub fn restore_chain_with_clock(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        chain: SnapshotChain<'_>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
    ) -> Result<Self> {
        Self::restore_chain_with_hooks(config, tenants, chain, avs, rng, clock, &NoCrash)
    }

    /// [`Gateway::restore_chain_with_clock`] with injected [`CrashHooks`].
    pub fn restore_chain_with_hooks(
        config: GatewayConfig,
        tenants: Vec<TenantConfig>,
        chain: SnapshotChain<'_>,
        avs: &mut AttestationService,
        rng: &mut Drbg,
        clock: Arc<dyn Clock>,
        hooks: &dyn CrashHooks,
    ) -> Result<Self> {
        let SnapshotChain { base, deltas } = chain;
        // Validate every chain link fail-closed before touching anything.
        let mut prev_epoch = base.epoch;
        let mut prev_header = base.header_bytes();
        for delta in deltas {
            delta.check_extends(prev_epoch, &prev_header)?;
            Self::check_delta_shape(base, delta)?;
            prev_epoch = delta.epoch;
            prev_header = delta.header_bytes();
        }
        let Some(last) = deltas.last() else {
            return Self::restore_impl(
                config,
                tenants,
                RestoreSource {
                    snapshot: base,
                    slot_aads: None,
                },
                avs,
                rng,
                clock,
                hooks,
            );
        };
        // Fold the chain into one effective snapshot: per slot, the latest
        // frame's export wins (with that frame's sealing AAD); the cheap
        // mutable state comes wholesale from the last delta.
        let mut eff_tenants = Vec::with_capacity(base.tenants.len());
        let mut slot_aads: Vec<Vec<Vec<u8>>> = Vec::with_capacity(base.tenants.len());
        for (tenant_idx, base_tenant) in base.tenants.iter().enumerate() {
            let mut slots = Vec::with_capacity(base_tenant.slots.len());
            let mut aads = Vec::with_capacity(base_tenant.slots.len());
            for (slot_idx, base_slot) in base_tenant.slots.iter().enumerate() {
                let mut sealed_state = base_slot.sealed_state.clone();
                let mut aad = base.header_bytes();
                let mut state_epoch = base_slot.state_epoch;
                let mut stats = base_slot.stats.clone();
                for delta in deltas {
                    let delta_slot = &delta.tenants[tenant_idx].slots[slot_idx];
                    if let Some(blob) = &delta_slot.sealed_state {
                        sealed_state = blob.clone();
                        aad = delta.sealing_header_bytes();
                        state_epoch = delta_slot.state_epoch;
                        stats = delta_slot.stats.clone();
                    }
                }
                slots.push(SlotSnapshot {
                    slot_id: base_slot.slot_id,
                    sealed_state,
                    dirty_epoch: last.tenants[tenant_idx].slots[slot_idx].dirty_epoch,
                    state_epoch,
                    stats,
                });
                aads.push(aad);
            }
            eff_tenants.push(TenantSnapshot {
                name: base_tenant.name.clone(),
                measurement: base_tenant.measurement,
                counters: last.tenants[tenant_idx].counters.clone(),
                slots,
            });
            slot_aads.push(aads);
        }
        let effective = GatewaySnapshot {
            epoch: last.epoch,
            created_at_nanos: last.created_at_nanos,
            slots_per_tenant: base.slots_per_tenant,
            next_session_id: last.next_session_id,
            submit_commands: last.submit_commands,
            tenants: eff_tenants,
            sessions: last.sessions.clone(),
        };
        Self::restore_impl(
            config,
            tenants,
            RestoreSource {
                snapshot: &effective,
                slot_aads: Some(&slot_aads),
            },
            avs,
            rng,
            clock,
            hooks,
        )
    }

    /// Rejects a delta whose tenant/slot shape differs from the chain's
    /// base — the fold below indexes them positionally, so shape agreement
    /// must be proven first.
    fn check_delta_shape(base: &GatewaySnapshot, delta: &GatewayDelta) -> Result<()> {
        let shape_ok = delta.slots_per_tenant == base.slots_per_tenant
            && delta.tenants.len() == base.tenants.len()
            && delta.tenants.iter().zip(&base.tenants).all(|(dt, bt)| {
                dt.name == bt.name
                    && dt.measurement == bt.measurement
                    && dt.slots.len() == bt.slots.len()
                    && dt
                        .slots
                        .iter()
                        .zip(&bt.slots)
                        .all(|(ds, bs)| ds.slot_id == bs.slot_id)
            });
        if shape_ok {
            Ok(())
        } else {
            Err(GatewayError::SnapshotChainBroken {
                reason: "delta pool shape does not match the chain's base",
            })
        }
    }

    /// A labelled snapshot of every counter the gateway keeps: tenant
    /// counters read from the shared atomics, per-slot drain counters
    /// collected from each shard worker and merged (rows come back in
    /// deterministic tenant/slot order).
    #[must_use]
    pub fn stats(&self) -> GatewayStats {
        let mut stats = GatewayStats {
            submit_commands: self.shared.submit_commands.load(Ordering::SeqCst),
            ..GatewayStats::default()
        };
        for meta in &self.shared.tenants {
            stats
                .tenants
                .push((meta.name.to_string(), meta.counters.snapshot()));
        }
        let mut pending = Vec::with_capacity(self.senders.len());
        for shard in 0..self.senders.len() {
            let (tx, rx) = channel();
            if self
                .send(shard, ShardCommand::CollectStats { reply: tx })
                .is_ok()
            {
                pending.push(rx);
            }
        }
        for rx in &pending {
            if let Ok(rows) = Self::recv(rx) {
                stats.slots.extend(rows);
            }
        }
        stats
            .slots
            .sort_by(|a, b| (&a.tenant, a.slot).cmp(&(&b.tenant, b.slot)));
        stats
    }

    /// A lock-free, point-in-time [`TelemetrySnapshot`] of every telemetry
    /// series: admission counters, per-shard gauges, latency histograms,
    /// sampled traces, and the rejection journal. Reads the per-shard
    /// registries without any worker round-trip, so it is safe to call from
    /// a scrape loop at any frequency; render it with
    /// [`TelemetrySnapshot::render_prometheus`] or
    /// [`TelemetrySnapshot::render_json`].
    #[must_use]
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.shared.telemetry.snapshot()
    }

    /// The shared [`Telemetry`] hub itself, for components that record into
    /// the same registries as the serving path (the async front-end's
    /// executor attaches itself through this).
    #[must_use]
    pub fn telemetry_handle(&self) -> Arc<Telemetry> {
        Arc::clone(&self.shared.telemetry)
    }

    /// Graceful shutdown: drains in-flight work to completion, stops every
    /// shard worker, and returns the final responses. (Plain `drop` also
    /// stops the workers, but abandons whatever was still queued.)
    ///
    /// Requests stuck behind a *persistently failing* enclave cannot ever
    /// produce replies — keeping the gateway alive would not deliver them
    /// either — so they are abandoned, counted into their tenant's `dropped`
    /// counter, and the drain error is returned only when nothing at all was
    /// drained. Everything drainable is drained and returned.
    ///
    /// # Errors
    ///
    /// [`GatewayError::BarrierConflict`] when a [`Gateway::checkpoint`]
    /// still holds the worker quiesce barrier — interleaving the two
    /// two-phase barriers would deadlock the workers, so shutdown refuses
    /// typed instead of hanging. A refused shutdown degrades to exactly
    /// the plain-`drop` behaviour: `self` is consumed, the workers stop
    /// once the in-flight checkpoint releases them, and queued work is
    /// abandoned (there is no gateway left to retry on — callers that need
    /// the drained replies must sequence shutdown *after* checkpoints).
    /// Safe single-owner code cannot actually reach this arm — a
    /// checkpoint borrows `&self` while `shutdown` needs ownership — it is
    /// the fail-typed backstop that keeps any future by-ref shutdown or
    /// exotic sharing from turning the race into a worker deadlock.
    /// Otherwise, a drain error surfaces only when nothing at all could be
    /// drained.
    pub fn shutdown(mut self) -> Result<Vec<GatewayResponse>> {
        // Claim the quiesce barrier permanently: no checkpoint may pause
        // workers that are about to stop, and a checkpoint already at its
        // barrier must finish before the shutdown drain begins.
        match BarrierGuard::acquire(&self.shared, BarrierOp::Shutdown) {
            Ok(guard) => guard.persist(),
            // Dropping `self` still stops the workers (Drop), so a refused
            // shutdown degrades to the plain-drop behaviour: workers exit,
            // queued work is abandoned, nothing hangs or panics.
            Err(e) => return Err(e),
        }
        let drained = self.drain_all();
        // Account (visibly, not silently) for anything a failing slot left
        // behind: `drain_all` only leaves a queue non-empty when its enclave
        // kept erroring.
        for meta in &self.shared.tenants {
            let abandoned = meta.queued.load(Ordering::SeqCst) as u64;
            if abandoned > 0 {
                meta.counters.dropped.fetch_add(abandoned, Ordering::SeqCst);
            }
        }
        self.stop_workers();
        drained
    }

    fn stop_workers(&mut self) {
        for sender in &self.senders {
            // Workers that already exited have dropped their receiver; that
            // is fine.
            let _ = sender.send(ShardCommand::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_workers();
    }
}
